"""Shared fixtures for the benchmark suite.

Each paper experiment is expensive enough that its full sweep runs once
per session (cached here); the individual benchmark tests then:

1. wall-clock one representative engine operation via pytest-benchmark,
2. assert the paper's qualitative claims on the cached sweep results.

The assertions live inside the benchmark tests on purpose, so they are
exercised under ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import ExperimentResult, format_table


class _ExperimentCache:
    def __init__(self) -> None:
        self._results: dict[str, ExperimentResult] = {}

    def get(self, name: str) -> ExperimentResult:
        if name not in self._results:
            result = EXPERIMENTS[name]()
            print()
            print(format_table(result))
            self._results[name] = result
        return self._results[name]


@pytest.fixture(scope="session")
def experiments() -> _ExperimentCache:
    return _ExperimentCache()
