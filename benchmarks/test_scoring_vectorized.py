"""Vectorized single-scan scoring: row path vs. block-wise path.

Real wall clock, like ``test_parallel_speedup`` — not the cost model.
The block-wise SELECT path exists to make scoring-UDF scans faster by
dispatching ``compute_batch`` numpy kernels over partition blocks, so
the claims here are:

1. the vectorized path returns **bit-identical** rows to the row path
   for every scoring route (asserted always, any machine), and it
   actually runs vectorized — every per-partition task span must report
   ``strategy: vectorized-scan`` (a silent fallback fails the smoke
   test, and therefore CI);
2. at n = 100k, d = 8 the ``linearregscore`` scan is >= 3x faster
   block-wise than row-wise (the acceptance criterion).

Both tests write ``BENCH_scoring.json`` at the repo root (the smoke run
at tiny scale, so CI always uploads an artifact; a full run overwrites
it with the real sweep).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scoring.json"


def _build_db(n: int, d: int, amps: int = 16, workers: int = 4) -> Database:
    db = Database(amps=amps, executor_workers=workers)
    rng = np.random.default_rng(7)
    db.create_table("x", dataset_schema(d))
    columns: dict[str, np.ndarray] = {"i": np.arange(1, n + 1)}
    for name in dimension_names(d):
        columns[name] = rng.normal(25.0, 8.0, n)
    db.load_columns("x", columns)
    register_scoring_udfs(db)
    return db


def _scoring_statements(d: int, rng: np.random.Generator) -> dict[str, str]:
    """One inline-literal statement per scoring route (single table,
    block-compilable — the shape ``db.execute`` runs vectorized)."""
    gen = ScoringSqlGenerator("x", list(dimension_names(d)))
    k = 3
    return {
        "linearregscore": gen.regression_inline_sql(
            0.5, rng.normal(0.0, 1.0, d).tolist()
        ),
        "fascore": gen.pca_inline_sql(
            rng.normal(25.0, 1.0, d).tolist(),
            rng.normal(0.0, 1.0, (2, d)).tolist(),
        ),
        "clusterscore": gen.clustering_inline_sql(
            rng.normal(25.0, 8.0, (k, d)).tolist()
        ),
        "classifyscore": gen.naive_bayes_inline_sql(
            rng.normal(25.0, 8.0, (2, d)).tolist(),
            np.abs(rng.normal(1.0, 0.2, (2, d))).tolist(),
            rng.normal(0.0, 1.0, 2).tolist(),
        ),
    }


def _assert_fully_vectorized(db: Database, sql: str) -> None:
    """Fail loudly if the statement silently fell back to the row path."""
    result = db.execute("EXPLAIN ANALYZE " + sql)
    tasks = result.plan.trace.find("task")
    assert tasks, "expected per-partition task spans"
    strategies = {task.attributes["strategy"] for task in tasks}
    assert strategies == {"vectorized-scan"}, (
        f"vectorized path silently fell back: task strategies {strategies}"
    )


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(db: Database, sql: str, repeats: int) -> tuple[float, float]:
    """(row_seconds, vector_seconds), best of *repeats*, warmed caches."""
    db.vectorized_select = False
    db.execute(sql)  # warm-up
    row_seconds = _best_of(repeats, lambda: db.execute(sql))
    db.vectorized_select = True
    db.execute(sql)  # warm-up (also populates the block cache)
    vector_seconds = _best_of(repeats, lambda: db.execute(sql))
    return row_seconds, vector_seconds


def _run_sweep(
    cases: list[tuple[int, int]], repeats: int
) -> list[dict[str, float | int | str]]:
    records: list[dict[str, float | int | str]] = []
    for n, d in cases:
        db = _build_db(n, d)
        statements = _scoring_statements(d, np.random.default_rng(11))
        for udf, sql in statements.items():
            db.vectorized_select = False
            row_result = db.execute(sql)
            db.vectorized_select = True
            vector_result = db.execute(sql)
            assert vector_result.rows == row_result.rows, (
                f"{udf} parity failed at n={n}, d={d}"
            )
            _assert_fully_vectorized(db, sql)
            row_seconds, vector_seconds = _measure(db, sql, repeats)
            records.append(
                {
                    "udf": udf,
                    "n": n,
                    "d": d,
                    "row_seconds": row_seconds,
                    "vector_seconds": vector_seconds,
                    "speedup": row_seconds / vector_seconds,
                    "strategy": "vectorized-scan",
                }
            )
        db.close()
    return records


def _write_json(records: list[dict[str, float | int | str]]) -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def test_scoring_vectorized_smoke(benchmark):
    """Tiny always-on check: parity + no silent fallback, wall-clocked."""
    n, d = 5_000, 4
    db = _build_db(n, d, amps=8, workers=2)
    sql = _scoring_statements(d, np.random.default_rng(11))["linearregscore"]

    db.vectorized_select = False
    row_result = db.execute(sql)
    db.vectorized_select = True
    vector_result = benchmark(db.execute, sql)

    assert vector_result.rows == row_result.rows
    assert len(vector_result) == n
    _assert_fully_vectorized(db, sql)
    records = _run_sweep([(n, d)], repeats=1)
    _write_json(records)
    db.close()


def test_scoring_vectorized_speedup_100k_d8():
    """The acceptance benchmark: >=3x for linearregscore at n=100k, d=8."""
    records = _run_sweep([(10_000, 8), (100_000, 8)], repeats=3)
    _write_json(records)

    for record in records:
        print(
            f"\n{record['udf']:>14} n={record['n']:>7} d={record['d']} "
            f"row={record['row_seconds'] * 1e3:8.1f} ms "
            f"vector={record['vector_seconds'] * 1e3:8.1f} ms "
            f"speedup={record['speedup']:.2f}x"
        )

    (acceptance,) = [
        r
        for r in records
        if r["udf"] == "linearregscore" and r["n"] == 100_000
    ]
    assert acceptance["speedup"] >= 3.0, (
        f"expected >=3x speedup for linearregscore at n=100k d=8, "
        f"got {acceptance['speedup']:.2f}x"
    )
