"""Serving throughput: micro-batched vs. naive per-request scoring.

Real wall clock.  Both modes run the same kernels and return
bit-identical values; what differs is dispatch.  The naive mode pays
every fixed cost — model binding, argument-block construction, one
kernel launch per UDF — once per request, on the requesting thread.
The micro-batched mode funnels concurrent requests through the
coalescing queue, so those fixed costs amortize over whole batches.

Claims:

1. answers are identical between the modes (asserted always);
2. at 64 concurrent clients the micro-batched mode sustains **>= 3x**
   the naive mode's scores/sec (the acceptance criterion).  At 1 client
   micro-batching is expected to *lose* — the flusher waits
   ``max_wait_ms`` for company that never comes; the sweep records that
   honestly.

Both tests write ``BENCH_serving.json`` at the repo root (the smoke run
at tiny scale so CI always uploads an artifact; the full sweep
overwrites it): one record per (mode, clients) with scores/sec and
p50/p99 client-observed latency.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.models.kmeans import KMeansModel
from repro.dbms.database import Database

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

D = 8
K = 8
MODEL = KMeansModel.fit_matrix(
    np.random.default_rng(3).normal(25.0, 8.0, size=(400, D)), K, seed=3
)
POINTS = np.random.default_rng(9).normal(25.0, 8.0, size=(256, D))


def _fresh_server(max_wait_ms: float = 2.0):
    """A new db+server per measurement: clean metrics, cold queue."""
    db = Database(amps=4)
    server = db.serve(max_wait_ms=max_wait_ms, max_batch_size=64)
    server.registry.register("m", MODEL)
    return db, server


def _percentile(values: "list[float]", q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _drive(
    server, clients: int, requests_each: int, coalesce: bool
) -> dict[str, float | int | str]:
    """Run the client fleet; returns the measurement record."""
    latencies: "list[list[float]]" = [[] for _ in range(clients)]
    errors: "list[BaseException]" = []
    gate = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        try:
            with server.session() as session:
                gate.wait(timeout=30.0)
                for shot in range(requests_each):
                    point = POINTS[(index * requests_each + shot) % len(POINTS)]
                    started = time.perf_counter()
                    result = session.score("m", point, coalesce=coalesce)
                    latencies[index].append(time.perf_counter() - started)
                    assert len(result.values) == 1
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    gate.wait(timeout=30.0)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [latency for per_client in latencies for latency in per_client]
    total = clients * requests_each
    snapshot = server.metrics.snapshot()
    return {
        "mode": "micro-batched" if coalesce else "naive",
        "clients": clients,
        "requests": total,
        "seconds": elapsed,
        "scores_per_second": total / elapsed,
        "p50_latency_ms": _percentile(flat, 50.0) * 1e3,
        "p99_latency_ms": _percentile(flat, 99.0) * 1e3,
        "coalesce_factor": snapshot["coalesce_factor"],
        "queue_depth_peak": snapshot["queue_depth_peak"],
    }


def _assert_modes_identical(server) -> None:
    with server.session() as session:
        for point in POINTS[:16]:
            assert (
                session.score("m", point).values
                == session.score("m", point, coalesce=False).values
            )


def _run_sweep(
    client_counts: "list[int]", requests_each: int
) -> "list[dict[str, float | int | str]]":
    records = []
    for clients in client_counts:
        for coalesce in (False, True):
            db, server = _fresh_server()
            try:
                records.append(
                    _drive(server, clients, requests_each, coalesce)
                )
            finally:
                db.close()
    return records


def _write_json(records: "list[dict[str, float | int | str]]") -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def _print_records(records) -> None:
    for record in records:
        print(
            f"\n{record['mode']:>13} clients={record['clients']:>3} "
            f"{record['scores_per_second']:10.0f} scores/s "
            f"p50={record['p50_latency_ms']:7.3f} ms "
            f"p99={record['p99_latency_ms']:7.3f} ms "
            f"coalesce={record['coalesce_factor']:.1f}"
        )


def test_serving_throughput_smoke(benchmark):
    """Tiny always-on check: parity + coalescing happens, wall-clocked."""
    db, server = _fresh_server()
    try:
        _assert_modes_identical(server)
        with server.session() as session:
            benchmark(session.score, "m", POINTS[0])
        records = _run_sweep([1, 4], requests_each=20)
        _write_json(records)
        coalesced = [
            r
            for r in records
            if r["mode"] == "micro-batched" and r["clients"] == 4
        ]
        assert coalesced[0]["coalesce_factor"] > 1.0, (
            "4 concurrent clients should coalesce"
        )
    finally:
        db.close()


def test_serving_throughput_64_clients():
    """The acceptance benchmark: micro-batched >= 3x naive at 64 clients."""
    db, server = _fresh_server()
    try:
        _assert_modes_identical(server)
    finally:
        db.close()

    records = _run_sweep([1, 8, 64], requests_each=100)
    _write_json(records)
    _print_records(records)

    by_mode = {
        (r["mode"], r["clients"]): r["scores_per_second"] for r in records
    }
    speedup = by_mode[("micro-batched", 64)] / by_mode[("naive", 64)]
    print(f"\nmicro-batched vs naive at 64 clients: {speedup:.2f}x")
    assert speedup >= 3.0, (
        f"expected micro-batched >= 3x naive scores/sec at 64 clients, "
        f"got {speedup:.2f}x"
    )
