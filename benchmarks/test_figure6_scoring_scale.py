"""Figure 6 — scoring UDF scalability as n grows (d=32, k=16).

Paper claims asserted: every scoring UDF scales linearly in n;
regression (one dot product) is the fastest by a wide margin; PCA and
clustering — which each call their UDF k times — sit close together at
the top.
"""

from repro.bench.calibration import PAPER_FIGURE6, within_factor
from repro.bench.experiments import _fitted_scorer
from repro.bench.harness import scaled_dataset


def test_figure6(benchmark, experiments):
    data = scaled_dataset(200_000.0, 32, with_y=True, physical_rows=256)
    scorer, _models = _fitted_scorer(data)
    benchmark(lambda: scorer.score_clustering(16, "udf"))

    result = experiments.get("figure6")
    by_n = {row[0]: row[1:] for row in result.rows}
    for n_thousand, (regression, pca, clustering) in by_n.items():
        assert regression < pca, f"regression must be fastest at n={n_thousand}k"
        assert regression < clustering
        # PCA and clustering close together (within 25%).
        assert within_factor(pca, clustering, 1.25)
    # Linearity: 16x rows within 40% of 16x time (the fixed statement
    # overhead bends the cheap regression curve at the low end).
    for index in range(3):
        ratio = by_n[1600][index] / by_n[100][index]
        assert within_factor(ratio, 16.0, 1.4), index
    # Anchor to the published plot.
    for n_thousand, paper in PAPER_FIGURE6.items():
        for measured, reference in zip(by_n[n_thousand], paper):
            assert within_factor(measured, reference, 2.0), (n_thousand, reference)
