"""Figure 5 — aggregate-UDF time complexity over n and d, all types.

Paper claims asserted: time is clearly linear in n for all three matrix
types; the spread between d values is marginal for the diagonal matrix,
small for triangular, larger for full.
"""

from repro.bench.calibration import within_factor
from repro.bench.harness import nlq_udf_seconds, scaled_dataset
from repro.core.summary import MatrixType


def test_figure5(benchmark, experiments):
    data = scaled_dataset(800_000.0, 32, physical_rows=256)
    benchmark(nlq_udf_seconds, data, MatrixType.FULL)

    result = experiments.get("figure5")
    by_key = {(row[0], row[1]): row[2:] for row in result.rows}
    # Linearity in n (100k → 1600k = 16x) per type and d, allowing the
    # small fixed merge/return cost to bend the low end.
    for d in (32, 64):
        for type_index in range(3):
            ratio = (
                by_key[(d, 1600)][type_index] / by_key[(d, 100)][type_index]
            )
            assert within_factor(ratio, 16.0, 1.6), (d, type_index)
    # The d=32 → d=64 spread ordering: diag spread < tri spread < full.
    spreads = [
        by_key[(64, 1600)][i] / by_key[(32, 1600)][i] for i in range(3)
    ]
    assert spreads[0] < spreads[1] < spreads[2]
    assert spreads[0] < 1.4, "diagonal spread should be marginal"
