"""Parallel partition-execution engine: wall-clock speedup + identity.

Unlike the figure/table benchmarks (which reproduce the paper's
*analytical* timings through the cost model), these measure the real
wall clock of the thread-pool engine.  Two invariants:

1. ``executor_workers > 1`` must return bit-identical aggregate results
   (nLQ packed payloads included) — asserted always, even single-core.
2. On a multi-core runner the vectorized nLQ scan must get ≥1.5× faster
   with 4 workers at n=500k, d=16 (the engine's reason to exist).
   The speedup assertion is gated on ``os.cpu_count() >= 4`` because a
   thread pool cannot beat serial on a single core.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.nlq_udf import register_nlq_udfs
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names

CORES = os.cpu_count() or 1


def _build_db(n: int, d: int, amps: int = 16) -> Database:
    db = Database(amps=amps)
    rng = np.random.default_rng(7)
    db.create_table("x", dataset_schema(d))
    columns: dict[str, np.ndarray] = {"i": np.arange(1, n + 1)}
    for name in dimension_names(d):
        columns[name] = rng.normal(25.0, 8.0, n)
    db.load_columns("x", columns)
    register_nlq_udfs(db, max_d=d)
    return db


def _nlq_sql(d: int) -> str:
    return f"SELECT nlq_tri({d}, {', '.join(dimension_names(d))}) FROM x"


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_smoke(benchmark):
    """Small always-on check: identity + metrics, wall-clocked."""
    db = _build_db(n=20_000, d=8)
    sql = _nlq_sql(8)

    db.executor_workers = 1
    serial = db.execute(sql)
    db.executor_workers = 4
    parallel = benchmark(db.execute, sql)

    assert parallel.scalar() == serial.scalar()  # bit-identical payload
    assert parallel.metrics.workers == 4
    assert parallel.metrics.partitions_processed == 16
    assert parallel.metrics.rows_processed == 20_000
    assert parallel.metrics.total_seconds > 0.0


@pytest.mark.skipif(CORES < 2, reason="speedup needs more than one core")
def test_parallel_speedup_500k_d16():
    """The acceptance benchmark: n=500k, d=16, 4 workers vs serial."""
    db = _build_db(n=500_000, d=16)
    sql = _nlq_sql(16)

    # Warm the per-partition block caches so both timed runs measure the
    # engine (pure GIL-releasing numpy reductions), not list->array
    # conversion.
    db.executor_workers = 1
    serial_result = db.execute(sql)
    serial_seconds = _best_of(3, lambda: db.execute(sql))

    db.executor_workers = 4
    parallel_result = db.execute(sql)
    parallel_seconds = _best_of(3, lambda: db.execute(sql))

    assert parallel_result.scalar() == serial_result.scalar()

    speedup = serial_seconds / parallel_seconds
    print(
        f"\nserial={serial_seconds * 1e3:.1f} ms "
        f"parallel={parallel_seconds * 1e3:.1f} ms "
        f"speedup={speedup:.2f}x on {CORES} cores"
    )
    if CORES >= 4:
        assert speedup >= 1.5, (
            f"expected >=1.5x speedup with 4 workers on {CORES} cores, "
            f"got {speedup:.2f}x"
        )
