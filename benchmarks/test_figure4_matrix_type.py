"""Figure 4 — matrix-type optimization: diagonal vs triangular vs full Q.

Paper claims asserted: diag ≤ triangular ≤ full everywhere; the
difference is marginal at low d and important at d=64; the diagonal
curve's growth in d is the flattest.
"""

from repro.bench.calibration import PAPER_FIGURE4, within_factor
from repro.bench.harness import nlq_udf_seconds, scaled_dataset
from repro.core.summary import MatrixType


def test_figure4(benchmark, experiments):
    data = scaled_dataset(400_000.0, 64, physical_rows=256)
    benchmark(nlq_udf_seconds, data, MatrixType.DIAGONAL)

    result = experiments.get("figure4")
    for _sweep, _n, d, diag, tri, full in result.rows:
        assert diag <= tri <= full, f"ordering must hold at d={d}"
    vary_d = {row[2]: row[3:] for row in result.rows if row[0] == "vary_d(n=1600k)"}
    # Marginal at d=8 (full within 10% of diag), important at d=64.
    assert vary_d[8][2] < 1.10 * vary_d[8][0]
    assert vary_d[64][2] > 1.5 * vary_d[64][0]
    # Diagonal growth in d is the flattest of the three.
    growth = [vary_d[64][i] / vary_d[8][i] for i in range(3)]
    assert growth[0] < growth[1] < growth[2]
    # Anchor the d∈{32,64} points to the published plot.
    for d, paper in PAPER_FIGURE4.items():
        for measured, reference in zip(vary_d[d], paper):
            assert within_factor(measured, reference, 2.0), (d, reference)
