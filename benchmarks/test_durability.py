"""Durability cost: WAL fsync modes on ingest, and recovery time.

Real wall clock.  The write-ahead log charges every committed batch a
serialization + append; what varies across ``fsync_mode`` is how often
the log pays a real ``fsync``:

* ``off``    — never during ingest (checkpoint/close only),
* ``batch``  — every ``wal_batch_records`` commit records,
* ``always`` — every commit record.

Claims:

1. ingest through a durable database in ``batch`` mode costs **<= 1.5x**
   the ``off``-mode wall clock on ``insert_many`` batches (the
   acceptance criterion — durability by default must not hollow out
   ingest throughput);
2. recovery replay scales with WAL length: reopening a directory whose
   log holds 8x the records takes measurably longer, and every reopened
   state is content-identical to what was committed.

Both tests write ``BENCH_durability.json`` at the repo root (the smoke
run at tiny scale so CI always uploads an artifact; the full sweep
overwrites it): one record per fsync mode with rows/second and fsync
counts, plus one record per recovery-replay length.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.dbms.database import Database
from repro.dbms.persistence import database_fingerprint
from repro.dbms.wal import open_durable

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_durability.json"

_DDL = "CREATE TABLE x (i INTEGER PRIMARY KEY, a FLOAT, b FLOAT)"


def _rows(n: int, start: int = 0):
    return [(i, i * 0.5, i * 0.25) for i in range(start, start + n)]


def _ingest(db, batches: int, batch_rows: int) -> float:
    started = time.perf_counter()
    for index in range(batches):
        db.insert_rows("x", _rows(batch_rows, start=index * batch_rows))
    return time.perf_counter() - started


def _measure_mode(
    mode: "str | None", batches: int, batch_rows: int, repeats: int = 3
) -> dict:
    """Best-of-N ingest wall clock for one fsync mode (None = a plain
    in-memory Database, the no-durability baseline)."""
    best, fsyncs, wal_bytes = float("inf"), 0, 0
    for _ in range(repeats):
        scratch = Path(tempfile.mkdtemp(prefix="bench-wal-"))
        try:
            if mode is None:
                db = Database(amps=4)
            else:
                db = open_durable(
                    scratch / "d", fsync_mode=mode, amps=4
                )
            try:
                db.execute(_DDL)
                elapsed = _ingest(db, batches, batch_rows)
                if mode is not None and elapsed < best:
                    fsyncs = db.durability.fsyncs
                    wal_bytes = db.durability.wal_bytes
                best = min(best, elapsed)
            finally:
                db.close()
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    total = batches * batch_rows
    return {
        "kind": "ingest",
        "fsync_mode": mode if mode is not None else "no-durability",
        "rows": total,
        "seconds": best,
        "rows_per_second": total / best,
        "fsyncs": fsyncs,
        "wal_bytes": wal_bytes,
    }


def _measure_recovery(records: int, batch_rows: int) -> dict:
    """Wall clock to reopen a directory whose WAL holds *records*
    commit records (no checkpoint compaction)."""
    scratch = Path(tempfile.mkdtemp(prefix="bench-recover-"))
    try:
        db = open_durable(scratch / "d", fsync_mode="off", amps=4)
        db.execute(_DDL)
        for index in range(records):
            db.insert_rows("x", _rows(batch_rows, start=index * batch_rows))
        expected = database_fingerprint(db)
        db.close()

        started = time.perf_counter()
        recovered = open_durable(scratch / "d", amps=4)
        elapsed = time.perf_counter() - started
        try:
            assert database_fingerprint(recovered) == expected
            replayed = recovered.durability.recovery_replayed_records
        finally:
            recovered.close()
        return {
            "kind": "recovery",
            "wal_records": records,
            "rows": records * batch_rows,
            "seconds": elapsed,
            "replayed_records": replayed,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _write_json(records: "list[dict]") -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def _print_records(records: "list[dict]") -> None:
    for record in records:
        if record["kind"] == "ingest":
            print(
                f"\n{record['fsync_mode']:>14} "
                f"{record['rows_per_second']:12,.0f} rows/s "
                f"fsyncs={record['fsyncs']:>4}"
            )
        else:
            print(
                f"\n  recovery {record['wal_records']:>5} records: "
                f"{record['seconds'] * 1e3:8.1f}ms"
            )


def test_durability_smoke(benchmark):
    """Tiny always-on check: every mode ingests and recovers exactly."""
    records = [
        _measure_mode(mode, batches=6, batch_rows=50, repeats=1)
        for mode in (None, "off", "batch", "always")
    ]
    records.append(_measure_recovery(records=8, batch_rows=25))

    scratch = Path(tempfile.mkdtemp(prefix="bench-wal-smoke-"))
    try:
        db = open_durable(scratch / "d", fsync_mode="batch", amps=4)
        db.execute(_DDL)

        def commit_one_batch():
            db.table("x").truncate()
            db.insert_rows("x", _rows(200))

        benchmark(commit_one_batch)
        db.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    _write_json(records)


def test_durability_overhead_and_recovery():
    """The acceptance benchmark: ``batch`` ingest <= 1.5x ``off``, and
    recovery replay growing with WAL length."""
    batches, batch_rows = 40, 250  # 10k rows per run
    records = [
        _measure_mode(mode, batches, batch_rows)
        for mode in (None, "off", "batch", "always")
    ]
    by_mode = {r["fsync_mode"]: r for r in records}
    ratio = by_mode["batch"]["seconds"] / by_mode["off"]["seconds"]
    records.append(
        {
            "kind": "ingest-ratio",
            "batch_over_off_x": ratio,
            "always_over_off_x": by_mode["always"]["seconds"]
            / by_mode["off"]["seconds"],
        }
    )
    for length in (25, 100, 400):
        records.append(_measure_recovery(records=length, batch_rows=25))

    _write_json(records)
    _print_records([r for r in records if "kind" in r and r["kind"] != "ingest-ratio"])

    # Acceptance: batched fsync keeps durable ingest within 1.5x of the
    # fsync-free WAL (both pay serialization; batch adds ~1 fsync per
    # 32 commit records).
    assert ratio <= 1.5, (
        f"batch fsync mode cost {ratio:.2f}x over off (budget 1.5x)"
    )
    # fsync accounting matches the modes' contracts.
    assert by_mode["off"]["fsyncs"] == 0
    assert by_mode["always"]["fsyncs"] == batches + 1  # + CREATE TABLE
    assert 0 < by_mode["batch"]["fsyncs"] < by_mode["always"]["fsyncs"]
    # Recovery replay scales with log length.
    recoveries = [r for r in records if r["kind"] == "recovery"]
    assert recoveries[0]["replayed_records"] == 25 + 1
    assert recoveries[-1]["replayed_records"] == 400 + 1
    assert recoveries[-1]["seconds"] > recoveries[0]["seconds"]
