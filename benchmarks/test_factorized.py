"""Factorized learning over joins: Σ|base| scans vs the materialized join.

Real wall clock.  Both modes run the *same* statement — a regression or
PCA build over ``fact JOIN dims`` — and return the same model (counts
exact, float sums to last-ulp; see ``docs/factorized_learning.md``).
What differs is the route: the factorized pass answers the aggregate
from per-base-table partials (rows scanned = Σ|base tables|), while the
reference path (``factorized_joins_enabled = False``) materializes the
key–FK join first and pays the nested-loop input.

Claims:

1. the factorized plan carries the ``factorized-join`` operator and its
   rows-scanned accounting equals Σ|base tables| (asserted always);
2. with fan-out >= 10 (each dimension row matched by >= 10 fact rows),
   the factorized build is **>= 3x** better on *both* rows scanned and
   wall clock for the regression and PCA builds (the acceptance
   criterion, asserted in the full benchmark).

Both tests write ``BENCH_factorized.json`` at the repo root (the smoke
run at tiny scale so CI always uploads an artifact; the full sweep
overwrites it): one record per (model, mode) with seconds, rows
scanned, and rows avoided, plus one speedup record per model.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.dbms.database import Database
from repro.dbms.schema import Column, TableSchema
from repro.dbms.types import SqlType
from repro.twm.miner import WarehouseMiner

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_factorized.json"

STAR_FROM = (
    "sales JOIN stores ON sales.sid = stores.sid "
    "JOIN products ON sales.pid = products.pid"
)
STAR_DIMS = [
    "sales.amount",
    "sales.qty",
    "stores.sx",
    "stores.sy",
    "products.px",
]


def _star_miner(n_fact: int, n_dim: int, seed: int = 0) -> WarehouseMiner:
    """A sales → (stores, products) star with fan-out n_fact / n_dim."""
    rng = np.random.default_rng(seed)
    db = Database(amps=4)
    db.create_table(
        "stores",
        TableSchema.build(
            [
                Column("sid", SqlType.INTEGER, nullable=False),
                ("sx", SqlType.FLOAT),
                ("sy", SqlType.FLOAT),
            ],
            primary_key="sid",
        ),
    )
    db.create_table(
        "products",
        TableSchema.build(
            [
                Column("pid", SqlType.INTEGER, nullable=False),
                ("px", SqlType.FLOAT),
            ],
            primary_key="pid",
        ),
    )
    db.create_table(
        "sales",
        TableSchema.build(
            [
                Column("oid", SqlType.INTEGER, nullable=False),
                Column("sid", SqlType.INTEGER),
                Column("pid", SqlType.INTEGER),
                ("amount", SqlType.FLOAT),
                ("qty", SqlType.FLOAT),
            ],
            primary_key="oid",
        ),
    )
    db.load_columns(
        "stores",
        {
            "sid": np.arange(1, n_dim + 1),
            "sx": rng.normal(0, 5, n_dim),
            "sy": rng.normal(10, 2, n_dim),
        },
    )
    db.load_columns(
        "products",
        {"pid": np.arange(1, n_dim + 1), "px": rng.normal(-3, 1, n_dim)},
    )
    db.load_columns(
        "sales",
        {
            "oid": np.arange(1, n_fact + 1),
            "sid": rng.integers(1, n_dim + 1, n_fact),
            "pid": rng.integers(1, n_dim + 1, n_fact),
            "amount": rng.normal(100, 20, n_fact),
            "qty": rng.normal(5, 1, n_fact),
        },
    )
    return WarehouseMiner(db)


def _star_of(miner: WarehouseMiner):
    return miner.star(
        "sales",
        ["stores", "products"],
        [("sid", "sid"), ("pid", "pid")],
    )


def _builds(miner: WarehouseMiner):
    """The two acceptance workloads, each exactly one aggregate scan."""
    star = _star_of(miner)
    return {
        "regression": lambda: miner.linear_regression(
            star, target="sales.amount"
        ),
        "pca": lambda: miner.pca(star, 2),
    }


def _measure(miner: WarehouseMiner, factorized: bool) -> "list[dict]":
    """Build both models on one route; record wall clock + scan rows."""
    db = miner.db
    db.factorized_joins_enabled = factorized
    records = []
    try:
        for model_name, build in _builds(miner).items():
            started = time.perf_counter()
            build()
            elapsed = time.perf_counter() - started
            metrics = db._executor.last_metrics
            records.append(
                {
                    "model": model_name,
                    "mode": "factorized" if factorized else "materialized",
                    "seconds": elapsed,
                    "rows_scanned": metrics.rows_scanned,
                    "factorized_joins": metrics.factorized_joins,
                    "rows_join_avoided": metrics.rows_join_avoided,
                }
            )
    finally:
        db.factorized_joins_enabled = True
    return records


def _speedups(records: "list[dict]") -> "list[dict]":
    by_key = {(r["model"], r["mode"]): r for r in records}
    out = []
    for model in ("regression", "pca"):
        fact = by_key[(model, "factorized")]
        ref = by_key[(model, "materialized")]
        out.append(
            {
                "model": model,
                "mode": "speedup",
                "wall_clock_x": ref["seconds"] / fact["seconds"],
                "rows_scanned_x": ref["rows_scanned"]
                / fact["rows_scanned"],
            }
        )
    return out


def _assert_plan_shape(db: Database) -> None:
    """The factorized plan's operator + accounting, asserted always."""
    sql = (
        "SELECT nlq_tri(5, sales.amount, sales.qty, stores.sx, "
        f"stores.sy, products.px) FROM {STAR_FROM}"
    )
    plan = db.explain_plan(sql)
    nodes = plan.find("factorized-join")
    assert len(nodes) == 1, "factorized-join operator missing from plan"
    base = sum(
        db.table(name).row_count for name in ("sales", "stores", "products")
    )
    note = next(n for n in nodes[0].notes if "factorized-join:" in n)
    assert f"scans {base} base-table rows" in note
    result = db.execute(sql)
    assert result.metrics.factorized_joins == 1
    assert result.metrics.rows_scanned == base


def _write_json(records: "list[dict]") -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def _print_records(records) -> None:
    for record in records:
        if record["mode"] == "speedup":
            print(
                f"\n{record['model']:>11} speedup: "
                f"{record['wall_clock_x']:6.2f}x wall clock, "
                f"{record['rows_scanned_x']:6.2f}x rows scanned"
            )
        else:
            print(
                f"\n{record['model']:>11} {record['mode']:>12} "
                f"{record['seconds']:8.3f}s "
                f"rows_scanned={record['rows_scanned']:>9}"
            )


def test_factorized_smoke(benchmark):
    """Tiny always-on check: plan shape + parity, wall-clocked."""
    miner = _star_miner(n_fact=400, n_dim=40, seed=7)
    try:
        db = miner.db
        _assert_plan_shape(db)
        star = _star_of(miner)
        factorized = miner.linear_regression(star, target="sales.amount")
        db.factorized_joins_enabled = False
        try:
            reference = miner.linear_regression(star, target="sales.amount")
        finally:
            db.factorized_joins_enabled = True
        np.testing.assert_allclose(
            factorized.coefficients, reference.coefficients, rtol=1e-9
        )
        benchmark(miner.pca, star, 2)
        records = _measure(miner, factorized=True) + _measure(
            miner, factorized=False
        )
        _write_json(records + _speedups(records))
    finally:
        miner.db.close()


def test_factorized_speedup_fanout_10():
    """The acceptance benchmark: >= 3x on rows scanned AND wall clock
    for the regression and PCA builds over a star with fan-out >= 10."""
    n_fact, n_dim = 12_000, 600  # fan-out 20 per dimension table
    miner = _star_miner(n_fact=n_fact, n_dim=n_dim, seed=7)
    try:
        _assert_plan_shape(miner.db)
        records = _measure(miner, factorized=True) + _measure(
            miner, factorized=False
        )
        speedups = _speedups(records)
        _write_json(records + speedups)
        _print_records(records + speedups)
        for record in speedups:
            assert record["rows_scanned_x"] >= 3.0, (
                f"{record['model']}: expected >= 3x fewer rows scanned, "
                f"got {record['rows_scanned_x']:.2f}x"
            )
            assert record["wall_clock_x"] >= 3.0, (
                f"{record['model']}: expected >= 3x wall-clock speedup, "
                f"got {record['wall_clock_x']:.2f}x"
            )
    finally:
        miner.db.close()
