"""Fused one-scan clustering iterations vs. the two-scan reference.

Real wall clock, like ``test_scoring_vectorized`` — not the cost model.
The fused ``kmeansiter`` aggregate UDF exists to halve the per-iteration
scan work (assignment + per-cluster (N, L, Q) in one pass instead of an
assignment SELECT followed by a GROUP BY nLQ scan), so the claims are:

1. fused and two-scan fits are **bit-identical** (asserted always, any
   machine, any scale);
2. at n = 100k, d = 8, k = 8 a fused iteration is >= 2x faster than a
   two-scan iteration (the acceptance criterion);
3. with the summary cache enabled, the second model build over the same
   columns reports ``rows_scanned == 0`` and returns the identical
   summary — repeat builds are pure O(d²) math.

Both tests write ``BENCH_clustering.json`` at the repo root (the smoke
run at tiny scale, so CI always uploads an artifact; a full run
overwrites it with the real sweep).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.models.kmeans import KMeansModel
from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_clustering.json"

#: forced iteration count — tolerance 0 keeps both paths iterating, so
#: per-iteration time is simply total / ITERATIONS for either path
ITERATIONS = 3


def _build_db(n: int, d: int, amps: int = 16, workers: int = 4) -> Database:
    db = Database(amps=amps, executor_workers=workers)
    rng = np.random.default_rng(7)
    db.create_table("x", dataset_schema(d))
    columns: dict[str, np.ndarray] = {"i": np.arange(1, n + 1)}
    centers = rng.normal(50.0, 20.0, size=(8, d))
    assigned = centers[rng.integers(0, 8, n)] + rng.normal(0.0, 4.0, (n, d))
    for index, name in enumerate(dimension_names(d)):
        columns[name] = assigned[:, index]
    db.load_columns("x", columns)
    return db


def _fit(db: Database, d: int, k: int, fused: bool) -> KMeansModel:
    method = KMeansModel.fit_dbms if fused else KMeansModel.fit_dbms_two_scan
    return method(
        db,
        "x",
        list(dimension_names(d)),
        k,
        max_iterations=ITERATIONS,
        tolerance=0.0,
        seed=0,
    )


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _iteration_record(
    n: int, d: int, k: int, repeats: int
) -> dict[str, float | int | str]:
    db = _build_db(n, d)
    try:
        fused = _fit(db, d, k, fused=True)
        two_scan = _fit(db, d, k, fused=False)
        assert np.array_equal(fused.centroids, two_scan.centroids), (
            f"fused/two-scan parity failed at n={n}, d={d}, k={k}"
        )
        assert np.array_equal(fused.radii, two_scan.radii)
        # Identical fits may converge exactly before ITERATIONS; both
        # paths always agree on the count, which is the divisor below.
        iterations = fused.iterations
        assert two_scan.iterations == iterations
        # The fits above warmed the per-partition block caches for both.
        fused_seconds = _best_of(repeats, lambda: _fit(db, d, k, fused=True))
        two_scan_seconds = _best_of(
            repeats, lambda: _fit(db, d, k, fused=False)
        )
    finally:
        db.close()
    return {
        "phase": "iteration",
        "n": n,
        "d": d,
        "k": k,
        "iterations": iterations,
        "fused_seconds_per_iter": fused_seconds / iterations,
        "two_scan_seconds_per_iter": two_scan_seconds / iterations,
        "speedup": two_scan_seconds / fused_seconds,
    }


def _cache_record(n: int, d: int) -> dict[str, float | int | str]:
    db = _build_db(n, d)
    try:
        register_nlq_udfs(db)
        db.summary_cache_enabled = True
        dims = list(dimension_names(d))
        start = time.perf_counter()
        cold = compute_nlq_udf(db, "x", dims)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = compute_nlq_udf(db, "x", dims)
        warm_seconds = time.perf_counter() - start
        metrics = db._executor.last_metrics
        assert metrics.rows_scanned == 0, (
            f"cache-hit build scanned {metrics.rows_scanned} rows"
        )
        assert metrics.summary_cache_hits == 1
        assert warm.n == cold.n
        assert np.array_equal(warm.L, cold.L)
        assert np.array_equal(warm.Q, cold.Q)
    finally:
        db.close()
    return {
        "phase": "cache",
        "n": n,
        "d": d,
        "cold_build_seconds": cold_seconds,
        "cache_hit_build_seconds": warm_seconds,
        "cache_hit_rows_scanned": 0,
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
    }


def _write_json(records: list[dict[str, float | int | str]]) -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def test_clustering_fused_smoke(benchmark):
    """Tiny always-on check: parity + cache-hit zero-scan, wall-clocked."""
    n, d, k = 2_000, 4, 4
    db = _build_db(n, d, amps=8, workers=2)
    try:
        reference = _fit(db, d, k, fused=False)
        fused = benchmark(_fit, db, d, k, True)
        assert np.array_equal(fused.centroids, reference.centroids)
        assert np.array_equal(fused.radii, reference.radii)
        assert np.array_equal(fused.weights, reference.weights)
    finally:
        db.close()
    _write_json([_iteration_record(n, d, k, repeats=1), _cache_record(n, d)])


def test_clustering_fused_speedup_100k_d8_k8():
    """The acceptance benchmark: >=2x per fused iteration at n=100k."""
    records = [
        _iteration_record(10_000, 8, 8, repeats=2),
        _iteration_record(100_000, 8, 8, repeats=2),
        _cache_record(100_000, 8),
    ]
    _write_json(records)

    for record in records:
        if record["phase"] == "iteration":
            print(
                f"\nkmeans n={record['n']:>7} d={record['d']} k={record['k']} "
                f"two-scan={record['two_scan_seconds_per_iter'] * 1e3:8.1f} ms/iter "
                f"fused={record['fused_seconds_per_iter'] * 1e3:8.1f} ms/iter "
                f"speedup={record['speedup']:.2f}x"
            )
        else:
            print(
                f"\nsummary-cache n={record['n']:>7} d={record['d']} "
                f"cold={record['cold_build_seconds'] * 1e3:8.1f} ms "
                f"hit={record['cache_hit_build_seconds'] * 1e3:8.1f} ms "
                f"(rows scanned: {record['cache_hit_rows_scanned']})"
            )

    (acceptance,) = [
        r for r in records if r["phase"] == "iteration" and r["n"] == 100_000
    ]
    assert acceptance["speedup"] >= 2.0, (
        f"expected >=2x per-iteration speedup at n=100k d=8 k=8, "
        f"got {acceptance['speedup']:.2f}x"
    )
