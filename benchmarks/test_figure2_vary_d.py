"""Figure 2 — SQL vs aggregate UDF as d grows.

Paper claims asserted: SQL time grows quadratically in d (the wide
1 + d + d² result plus per-term evaluation) while the UDF's growth is
almost linear; the crossover sits around d=32.
"""

from repro.bench.harness import nlq_udf_seconds, scaled_dataset


def test_figure2(benchmark, experiments):
    data = scaled_dataset(200_000.0, 48, physical_rows=256)
    benchmark(nlq_udf_seconds, data)

    result = experiments.get("figure2")
    by_key = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}
    for n_thousand in (100, 200, 800, 1600):
        sql_growth = by_key[(n_thousand, 64)][0] / by_key[(n_thousand, 8)][0]
        udf_growth = by_key[(n_thousand, 64)][1] / by_key[(n_thousand, 8)][1]
        # d grew 8x: quadratic SQL should grow far faster than 8x at
        # small n (fixed parse+spool ∝ d²) and the UDF well below 8x.
        assert sql_growth > 12.0, f"SQL growth too slow at n={n_thousand}k"
        assert udf_growth < 4.0, f"UDF growth too fast at n={n_thousand}k"
        # And convexity of SQL in d: the 32→64 step outgrows the 8→16 step.
        step_low = by_key[(n_thousand, 16)][0] / by_key[(n_thousand, 8)][0]
        step_high = by_key[(n_thousand, 64)][0] / by_key[(n_thousand, 32)][0]
        assert step_high > step_low
