"""Multi-model build on one shared scan vs. four serial builds.

Correlation, PCA, factor analysis and linear regression all consume
sufficient statistics, so their four summary statements consolidate to
ONE scan of X under the batch rewrite (``docs/plan_rewrites.md``).
The claims:

1. the consolidated plan really is one scan — asserted on plan
   *shape*, not inferred from timings, and gated against the serial
   baseline with ``plan_shape_gate``;
2. every model built from the batched summaries is **bit-identical**
   to the model built from its serially executed statement;
3. at n = 100k, d = 8 the batch costs >= 2x less simulated time than
   the four serial statements (the acceptance criterion — duplicate
   elimination collapses the three identical base-summary statements
   to one accumulator pass, and the scan is charged once).

Both tests write ``BENCH_multimodel.json`` at the repo root (the smoke
run at tiny scale, so CI always uploads an artifact; a full run
overwrites it with the real sweep).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bench.harness import (
    BenchDataset,
    batch_plan_shape,
    plan_shape,
    plan_shape_gate,
    scaled_dataset,
)
from repro.core.models.correlation import CorrelationModel
from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.models.pca import PCAModel
from repro.core.models.regression import AugmentedSummary, LinearRegressionModel
from repro.core.nlq_udf import nlq_call_sql
from repro.core.packing import unpack_summary

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_multimodel.json"

K = 2  # components kept by PCA / factor analysis


def _statements(data: BenchDataset) -> list[str]:
    """The four summary statements ``build_all_models`` batches: three
    identical base (n, L, Q) builds and regression's augmented
    Z = (1, X, y) summary."""
    dims = data.dimensions
    return [
        nlq_call_sql(data.table, dims),          # correlation
        nlq_call_sql(data.table, dims),          # pca — same summary
        nlq_call_sql(data.table, dims),          # factor analysis — same
        nlq_call_sql(data.table, ["1.0", *dims, "y"]),  # regression
    ]


def _models(results, dims: list[str]) -> dict[str, object]:
    base = unpack_summary(results[0].scalar())
    augmented = unpack_summary(results[3].scalar())
    return {
        "correlation": CorrelationModel.from_summary(base, dims),
        "pca": PCAModel.from_summary(base, K),
        "factor_analysis": FactorAnalysisModel.from_summary(base, K),
        "regression": LinearRegressionModel.from_summary(
            AugmentedSummary(augmented)
        ),
    }


def _assert_identical(batched: dict, serial: dict) -> None:
    assert np.array_equal(batched["correlation"].rho, serial["correlation"].rho)
    assert np.array_equal(batched["pca"].components, serial["pca"].components)
    assert np.array_equal(
        batched["pca"].eigenvalues, serial["pca"].eigenvalues
    )
    assert np.array_equal(
        batched["factor_analysis"].loadings,
        serial["factor_analysis"].loadings,
    )
    assert batched["regression"].intercept == serial["regression"].intercept
    assert np.array_equal(
        batched["regression"].coefficients, serial["regression"].coefficients
    )


def _record(n: int, d: int) -> dict[str, float | int | str]:
    data = scaled_dataset(n, d, with_y=True)
    db = data.db
    try:
        statements = _statements(data)

        # Claim 1: shape first — one scan, and no regression vs. the
        # single-statement baseline plan.
        batch_shape = batch_plan_shape(data, statements)
        assert batch_shape.single_scan, (
            f"expected one consolidated scan, got {batch_shape.scans}"
        )
        single = plan_shape(data, statements[0])
        gate = plan_shape_gate(single, batch_shape)
        assert gate is None, f"plan-shape gate failed: {gate}"

        serial_results = [db.execute(sql) for sql in statements]
        serial_seconds = sum(
            result.simulated_seconds for result in serial_results
        )
        db.reset_clock()
        batch_results = db.execute_batch(statements)
        batch_seconds = batch_results[0].simulated_seconds
        metrics = batch_results[0].metrics
        assert metrics.statements_batched == 4
        assert metrics.scans_saved == 3

        # Claim 2: bit-identical models either way.
        _assert_identical(
            _models(batch_results, data.dimensions),
            _models(serial_results, data.dimensions),
        )
    finally:
        db.close()
    return {
        "n": n,
        "d": d,
        "models": 4,
        "serial_simulated_seconds": serial_seconds,
        "batch_simulated_seconds": batch_seconds,
        "scans_saved": 3,
        "speedup": serial_seconds / batch_seconds,
    }


def _write_json(records: list[dict[str, float | int | str]]) -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def test_multimodel_shared_scan_smoke(benchmark):
    """Tiny always-on check: one scan, identical models, wall-clocked."""
    record = _record(2_000, 4)
    _write_json([record])
    assert record["speedup"] >= 1.9

    data = scaled_dataset(2_000, 4, with_y=True)
    try:
        statements = _statements(data)
        benchmark(data.db.execute_batch, statements)
    finally:
        data.db.close()


def test_multimodel_shared_scan_speedup_100k_d8():
    """The acceptance benchmark: >=2x simulated at n=100k, d=8."""
    records = [
        _record(10_000, 4),
        _record(100_000, 8),
        _record(1_000_000, 8),
    ]
    _write_json(records)

    for record in records:
        print(
            f"\nmultimodel n={record['n']:>9} d={record['d']} "
            f"serial={record['serial_simulated_seconds']:8.2f}s "
            f"batch={record['batch_simulated_seconds']:8.2f}s "
            f"speedup={record['speedup']:.2f}x"
        )

    (acceptance,) = [r for r in records if r["n"] == 100_000]
    assert acceptance["speedup"] >= 2.0, (
        f"expected >=2x at n=100k d=8, got {acceptance['speedup']:.2f}x"
    )
