"""Supervision must be free when it is off.

The fault-injection harness and the retry/timeout machinery ride the
same partition task path every query takes.  Their contract is that the
default configuration — :data:`~repro.dbms.faults.NULL_FAULTS`, zero
retries, no timeout — costs one attribute check per task: identical
results, zero new counters, and wall clock within noise of a build
without supervision knobs (asserted here as a loose ratio between the
default engine and a fully armed-but-never-tripping one).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.nlq_udf import register_nlq_udfs
from repro.dbms.database import Database
from repro.dbms.faults import NULL_FAULTS, FaultPlan, FaultSpec
from repro.dbms.schema import dataset_schema, dimension_names


def _build_db(n: int, d: int, **kwargs) -> Database:
    db = Database(amps=16, executor_workers=4, **kwargs)
    rng = np.random.default_rng(7)
    db.create_table("x", dataset_schema(d))
    columns: dict[str, np.ndarray] = {"i": np.arange(1, n + 1)}
    for name in dimension_names(d):
        columns[name] = rng.normal(25.0, 8.0, n)
    db.load_columns("x", columns)
    register_nlq_udfs(db, max_d=d)
    return db


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_null_faults_hot_path(benchmark):
    """Default config: no supervision wrapper, no counters, same rows."""
    db = _build_db(n=100_000, d=8)
    sql = f"SELECT nlq_tri(8, {', '.join(dimension_names(8))}) FROM x"

    assert db.faults is NULL_FAULTS
    assert not db._executor.engine.supervised

    result = benchmark(db.execute, sql)

    metrics = result.metrics
    assert metrics.task_retries == 0
    assert metrics.task_timeouts == 0
    assert metrics.fallbacks == 0
    assert not metrics.fallback_reason
    db.close()


def test_armed_but_silent_supervision_within_noise():
    """A plan that never trips must not change results, and the
    supervised path must stay within a loose wall-clock factor of the
    bare one (it adds a wrapper call + one ``fire()`` per task)."""
    n, d = 200_000, 8
    sql = f"SELECT nlq_tri({d}, {', '.join(dimension_names(d))}) FROM x"

    bare = _build_db(n, d)
    # Armed at every site, but filtered to a partition index that does
    # not exist — fire() runs for real and never trips.
    silent = FaultPlan(
        [FaultSpec(site, partition=99) for site in sorted(
            {"partition.scan", "block.materialize", "engine.task"}
        )]
    )
    armed = _build_db(n, d, faults=silent, task_retries=2)

    baseline_rows = bare.execute(sql).rows
    armed_rows = armed.execute(sql).rows
    assert armed_rows == baseline_rows  # bit-identical under supervision
    assert silent.trips() == 0
    assert armed._executor.last_metrics.task_retries == 0
    assert armed._executor.last_metrics.fallbacks == 0

    bare_seconds = _best_of(5, lambda: bare.execute(sql))
    armed_seconds = _best_of(5, lambda: armed.execute(sql))
    ratio = armed_seconds / bare_seconds
    print(
        f"\nbare={bare_seconds * 1e3:.1f} ms "
        f"armed={armed_seconds * 1e3:.1f} ms ratio={ratio:.2f}x"
    )
    # Loose bound: per-task supervision is O(workers) python calls per
    # statement; anything past 1.5x would mean a hot-path regression.
    assert ratio < 1.5
    bare.close()
    armed.close()
