"""Table 2 — (n, L, Q) computation times and the ODBC export cost.

Paper claims asserted: export time is up to two orders of magnitude
above the UDF; the UDF beats SQL from d=16 up and the gap widens with d;
measured values track the paper's.
"""

from repro.bench.calibration import PAPER_TABLE2, within_factor
from repro.bench.harness import cpp_and_odbc_seconds, scaled_dataset


def test_table2(benchmark, experiments):
    data = scaled_dataset(100_000.0, 16, physical_rows=256)
    benchmark(cpp_and_odbc_seconds, data)

    result = experiments.get("table2")
    for n_thousand, d, cpp, sql, udf, odbc, *paper in result.rows:
        paper_cpp, paper_sql, paper_udf, paper_odbc = paper
        # The export dwarfs the in-DBMS computation (the paper's reason
        # not to analyze data sets outside the database).
        assert odbc > 10 * udf, f"ODBC should dwarf the UDF at d={d}"
        assert odbc > sql, f"ODBC should exceed SQL at d={d}"
        # The UDF beats SQL from d=32 on (the paper's Figure 1 still has
        # SQL ahead at d=16 for large n); at d=64 by a wide margin.
        if d >= 32:
            assert udf < sql
        if d == 64:
            assert sql > 5 * udf, "gap should be wide at d=64"
        # Magnitudes.
        assert within_factor(odbc, paper_odbc, 1.25)
        assert within_factor(cpp, paper_cpp, 1.5)
        assert within_factor(udf, paper_udf, 1.6)
        # SQL magnitudes anchor from d=32 up; below that the model
        # under-charges SQL's fixed floor (documented calibration
        # residual — see repro.bench.calibration).
        if d >= 32:
            assert within_factor(sql, paper_sql, 1.6)
