"""Table 5 — GROUP BY aggregate UDF: string vs list, k groups.

Paper claims asserted: the list variant is faster than the string
variant at every k; time grows slowly while the per-group state fits the
64 KB heap segment and jumps ~4x once k=32 overflows it.
"""

from repro.bench.calibration import PAPER_TABLE5, within_factor
from repro.bench.harness import nlq_udf_seconds, scaled_dataset
from repro.core.summary import MatrixType


def test_table5(benchmark, experiments):
    data = scaled_dataset(800_000.0, 32, physical_rows=256)
    benchmark(
        nlq_udf_seconds,
        data,
        MatrixType.DIAGONAL,
        "list",
        group_by="(i MOD 4) + 1",
    )

    result = experiments.get("table5")
    by_key = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}
    for (n_thousand, k), (string_s, list_s) in by_key.items():
        paper_string, paper_list = PAPER_TABLE5[(n_thousand, k)]
        assert list_s < string_s, f"list must beat string at k={k}"
        assert within_factor(list_s, paper_list, 1.6)
        assert within_factor(string_s, paper_string, 1.6)
    for n_thousand in (800, 1600):
        # Slow growth below the segment: k=8 within 15% of k=1.
        assert by_key[(n_thousand, 8)][1] < 1.15 * by_key[(n_thousand, 1)][1]
        # The spill jump: k=32 at least 3x the k=16 list time.
        assert by_key[(n_thousand, 32)][1] > 3.0 * by_key[(n_thousand, 16)][1]
