"""Figure 3 — UDF parameter passing style: packed string vs scalar list.

Paper claims asserted: the two styles are close at d ≤ 16 and the list
version is clearly better at d ≥ 32 — the float→text→float overhead
exceeds even the quadratic update arithmetic.
"""

from repro.bench.harness import nlq_udf_seconds, scaled_dataset


def test_figure3(benchmark, experiments):
    data = scaled_dataset(400_000.0, 8, physical_rows=256)
    benchmark(nlq_udf_seconds, data, passing="string")

    result = experiments.get("figure3")
    vary_n = [row for row in result.rows if row[0] == "vary_n(d=8)"]
    vary_d = [row for row in result.rows if row[0] == "vary_d(n=1600k)"]

    # d=8: marginal difference (under 35%) at every n.
    for _sweep, _n, _d, string_s, list_s in vary_n:
        assert list_s <= string_s
        assert string_s < 1.35 * list_s
    # The gap widens with d: at d=64 the string version is ≥ 1.7x.
    gaps = {row[2]: row[3] / row[4] for row in vary_d}
    assert gaps[8] < gaps[16] < gaps[32] < gaps[64]
    assert gaps[64] > 1.7
    # The list version's growth in d is mild (paper: "almost constant
    # with an almost zero slope" relative to string growth).
    list_growth = vary_d[-1][4] / vary_d[0][4]
    string_growth = vary_d[-1][3] / vary_d[0][3]
    assert list_growth < string_growth
