"""Table 3 — building models from (n, L, Q) takes seconds and does not
depend on n.

Paper claims asserted: every technique stays under a few seconds up to
d=64; PCA has the fastest growth (O(d³) SVD); time is a function of d
only.  The benchmark wall-clocks a real model build from a summary.
"""

import numpy as np

from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.summary import AugmentedSummary, SummaryStatistics
from repro.external.workstation import model_build_seconds
from repro.workloads.generator import MixtureSpec, SyntheticDataGenerator


def _summary(d: int) -> SummaryStatistics:
    sample = SyntheticDataGenerator(MixtureSpec(d=d, k=4)).generate(512)
    return SummaryStatistics.from_matrix(sample.X)


def test_table3(benchmark, experiments):
    stats = _summary(32)

    def build_models() -> None:
        PCAModel.from_summary(stats, k=8)
        rng = np.random.default_rng(0)
        sample = SyntheticDataGenerator(MixtureSpec(d=8, k=4)).generate(256)
        y = sample.X @ rng.normal(size=8) + rng.normal(size=256)
        LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(sample.X, y)
        )

    benchmark(build_models)

    result = experiments.get("table3")
    for d, corr, regr, pca, clu, *paper in result.rows:
        assert max(corr, regr, pca, clu) <= 5.0, (
            f"model builds from summaries must stay within seconds (d={d})"
        )
    # PCA grows fastest with d; every technique grows (weakly) with d.
    pca_col = result.column("pca")
    assert pca_col == sorted(pca_col)
    assert pca_col[-1] > 2 * pca_col[0]
    assert pca_col[-1] >= result.column("regression")[-1]
    # Independence from n is structural: the inputs are (n, L, Q) only —
    # the same function of d gives the same time for any n.
    assert model_build_seconds("pca", 64) == model_build_seconds("pca", 64)
