"""Beyond-the-GIL execution: process pool vs thread pool, plus spill.

Two real-wall-clock experiments for the partition engine's
``executor_kind="process"`` mode:

1. **Row-path speedup** — the GIL-bound workload the process pool
   exists for: a grouped aggregate whose WHERE clause forces the
   per-row Python fold.  Threads cannot overlap pure-Python partition
   folds (the GIL serializes them); worker processes can.  Thread and
   process answers are asserted bit-identical always; the >= 2x wall
   clock target at n=1M / 4 workers is asserted only when the runner
   actually has >= 4 cores — a single-core container records its honest
   ~1x and flags ``target_met`` accordingly.
2. **Out-of-core scan** — a table whose float blocks exceed the
   configured block-cache byte budget: the LRU spills cold blocks to
   disk, the scan completes bit-identically to the unbudgeted run, the
   resident cached bytes stay under the budget, and the spill counters
   land in ``QueryMetrics``.

Both tests write ``BENCH_beyond_gil.json`` at the repo root (the smoke
run at small scale so CI always uploads an artifact; the full sweep —
``BEYOND_GIL_FULL=1`` — overwrites it at n=1M).  Peak RSS is read from
``/proc/self/status`` ``VmHWM`` (no psutil dependency).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_beyond_gil.json"
CORES = os.cpu_count() or 1
FULL = os.environ.get("BEYOND_GIL_FULL", "") not in ("", "0")

D = 4
WORKERS = 4

#: the WHERE clause keeps every row but forces the row-partitioned
#: fold — a pure-Python loop that holds the GIL on the thread path
ROW_PATH_SQL = (
    "SELECT i MOD 8, sum(x1), sum(x2), count(*) FROM x "
    "WHERE i >= 1 GROUP BY i MOD 8 ORDER BY 1"
)


def _build_db(n: int, kind: str, **kwargs) -> Database:
    rng = np.random.default_rng(13)
    db = Database(
        amps=8, executor_workers=WORKERS, executor_kind=kind, **kwargs
    )
    db.create_table("x", dataset_schema(D))
    columns: "dict[str, np.ndarray]" = {"i": np.arange(1, n + 1)}
    for name in dimension_names(D):
        columns[name] = rng.normal(25.0, 8.0, n)
    db.load_columns("x", columns)
    return db


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _vm_hwm_bytes() -> "int | None":
    """Peak resident set of this process, from /proc (Linux only)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    return None


def _measure_speedup(n: int, repeats: int) -> "tuple[list[dict], tuple]":
    """Time the row-path aggregate on both executors, bit-checked."""
    records = []
    answers = {}
    for kind in ("thread", "process"):
        with _build_db(n, kind) as db:
            # Warm run: publishes columnar blocks and spawns the pool,
            # so the timed runs measure execution, not cold start.
            spawn_started = time.perf_counter()
            answers[kind] = db.execute(ROW_PATH_SQL).rows
            warm_seconds = time.perf_counter() - spawn_started
            if kind == "process":
                assert db._executor.engine.last_process_fallback is None
            seconds = _best_of(repeats, lambda: db.execute(ROW_PATH_SQL))
            records.append(
                {
                    "section": "row_path_speedup",
                    "mode": kind,
                    "n": n,
                    "workers": WORKERS,
                    "seconds": seconds,
                    "warm_run_seconds": warm_seconds,
                }
            )
    assert answers["process"] == answers["thread"]  # bit-identical
    thread_s = records[0]["seconds"]
    process_s = records[1]["seconds"]
    speedup = thread_s / process_s
    records.append(
        {
            "section": "row_path_speedup",
            "mode": "speedup",
            "n": n,
            "workers": WORKERS,
            "speedup_x": speedup,
            "cpu_count": CORES,
            "target_x": 2.0,
            # Honest accounting: a process pool cannot beat threads
            # without cores to run on.  The target applies (and is
            # asserted) only on a >= 4-core runner at full scale.
            "target_met": bool(speedup >= 2.0),
            "full_scale": bool(n >= 1_000_000),
        }
    )
    return records, (thread_s, process_s, speedup)


def _measure_out_of_core(n: int, budget: int) -> "list[dict]":
    """Scan a table larger than the cache budget; spill, verify, spill."""
    sql = "SELECT sum(x1 * x1 + x2), sum(x3), count(*) FROM x"
    with _build_db(n, "thread") as db:
        expected = db.execute(sql).rows
        block_bytes = sum(
            p.row_count * D * 8
            for p in db.table("x").partitions
        )
    hwm_before = _vm_hwm_bytes()
    with _build_db(n, "thread", block_cache_bytes=budget) as db:
        result = db.execute(sql)
        again = db.execute(sql)
        config = db.block_cache_config
        resident = config.current_bytes
        metrics = result.metrics
        assert result.rows == expected  # bit-identical under spill
        assert again.rows == expected  # spill reloads are exact too
        assert metrics.blocks_spilled > 0
        assert metrics.bytes_spilled > 0
        assert metrics.cache_evictions > 0
        # The cache never holds more RAM-resident float-block bytes
        # than the budget once the statement finishes.
        assert resident <= budget
    hwm_after = _vm_hwm_bytes()
    return [
        {
            "section": "out_of_core",
            "n": n,
            "budget_bytes": budget,
            "table_float_block_bytes": block_bytes,
            "blocks_spilled": metrics.blocks_spilled,
            "bytes_spilled": metrics.bytes_spilled,
            "cache_evictions": metrics.cache_evictions,
            "bit_identical": True,
            "resident_cache_bytes": resident,
            "rss_hwm_delta_bytes": (
                hwm_after - hwm_before
                if hwm_before is not None and hwm_after is not None
                else None
            ),
        }
    ]


def _write_json(records: "list[dict]") -> None:
    BENCH_JSON.write_text(json.dumps(records, indent=2) + "\n")


def _print_records(records: "list[dict]") -> None:
    for record in records:
        if record.get("mode") == "speedup":
            print(
                f"\nrow path n={record['n']}: "
                f"{record['speedup_x']:.2f}x process-over-thread "
                f"on {record['cpu_count']} cores "
                f"(target {record['target_x']}x, "
                f"met={record['target_met']})"
            )
        elif record["section"] == "out_of_core":
            print(
                f"out-of-core n={record['n']}: "
                f"budget={record['budget_bytes']}B "
                f"spilled {record['blocks_spilled']} blocks "
                f"({record['bytes_spilled']}B), "
                f"resident={record['resident_cache_bytes']}B"
            )


def test_beyond_gil_smoke(benchmark):
    """Small always-on run: bit-identity both modes, spill counters,
    artifact written — every CI job gets a complete JSON."""
    n = 24_000
    records, (_, process_s, _) = _measure_speedup(n, repeats=1)
    records += _measure_out_of_core(n=24_000, budget=64 * 1024)
    _write_json(records)
    _print_records(records)
    with _build_db(n, "process") as db:
        db.execute(ROW_PATH_SQL)  # warm pool + blocks
        benchmark(db.execute, ROW_PATH_SQL)


def test_beyond_gil_speedup_full():
    """The acceptance benchmark: n=1M, 4 workers, row-path aggregate.

    Runs at full scale only when ``BEYOND_GIL_FULL=1`` (it scans a
    million rows through a pure-Python fold several times); the >= 2x
    assertion additionally needs >= 4 real cores.  Either way the
    measured numbers overwrite the artifact — never fabricated.
    """
    if not FULL:
        import pytest

        pytest.skip("set BEYOND_GIL_FULL=1 for the n=1M sweep")
    n = 1_000_000
    records, (thread_s, process_s, speedup) = _measure_speedup(
        n, repeats=2
    )
    records += _measure_out_of_core(n=200_000, budget=256 * 1024)
    _write_json(records)
    _print_records(records)
    if CORES >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x process-over-thread speedup with "
            f"{WORKERS} workers on {CORES} cores, got {speedup:.2f}x "
            f"(thread {thread_s:.2f}s, process {process_s:.2f}s)"
        )
