"""Table 4 — scoring a data set: SQL expressions vs scalar UDFs.

Paper claims asserted: the UDF matches SQL for linear regression and
PCA-style scoring, and clearly beats SQL for clustering, where SQL needs
a pivoted derived table and a second pass.
"""

from repro.bench.calibration import PAPER_TABLE4, within_factor
from repro.bench.experiments import _fitted_scorer
from repro.bench.harness import scaled_dataset


def test_table4(benchmark, experiments):
    data = scaled_dataset(100_000.0, 32, with_y=True, physical_rows=256)
    scorer, _models = _fitted_scorer(data)
    benchmark(lambda: scorer.score_regression("udf"))

    result = experiments.get("table4")
    by_key = {(row[1], row[0]): (row[2], row[3]) for row in result.rows}
    for (technique, n_thousand), (sql, udf) in by_key.items():
        paper_sql, paper_udf = PAPER_TABLE4[(technique, n_thousand)]
        if technique == "regression":
            # "the UDF is as efficient as SQL to produce a linear
            # regression score"
            assert within_factor(udf, sql, 1.3)
            assert within_factor(udf, paper_udf, 1.6)
        if technique == "clustering":
            # "the UDF is faster than SQL because SQL requires two scans
            # on a pivoted version of X"
            assert sql > 2.0 * udf
            assert within_factor(sql, paper_sql, 1.5)
            assert within_factor(udf, paper_udf, 1.5)
        if technique == "pca":
            # UDF never slower than the expression route.
            assert udf <= sql * 1.1
    # Linear scaling: 8x the rows ≈ 8x the time, per technique.
    for technique in ("regression", "pca", "clustering"):
        ratio = by_key[(technique, 800)][1] / by_key[(technique, 100)][1]
        assert within_factor(ratio, 8.0, 1.4), technique
