"""Ablation benches: the design choices behind the paper's numbers.

Each ablation turns off one optimization the paper (or this
reproduction) relies on and asserts the direction and rough size of the
effect:

* the single "long" SQL statement vs. one statement per Q entry
  (Section 3.4's first, naive approach);
* 20-way AMP parallelism vs. a single worker (why the server beats the
  workstation);
* one synchronized scan carrying all block UDF calls vs. separate
  statements each rescanning X (Table 6's submission strategy);
* join elimination on a scoring query after feature selection (§3.6).
"""

from repro.bench.harness import scaled_dataset
from repro.core.blockwise import blockwise_sql, dimension_blocks
from repro.core.sqlgen import NlqSqlGenerator
from repro.dbms.cost import CostParameters
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.workloads.generator import MixtureSpec, load_dataset


def test_ablation_long_query_vs_per_entry(benchmark):
    """One 1+d+d²-term statement vs d(d+1)/2 + d + 1 separate scans."""
    data = scaled_dataset(100_000.0, 8, physical_rows=128)
    generator = NlqSqlGenerator("x", data.dimensions)

    benchmark(generator.compute, data.db)

    db = data.db
    db.reset_clock()
    generator.compute(db)
    long_query = db.simulated_time
    db.reset_clock()
    generator.compute_per_entry(db)
    per_entry = db.simulated_time
    # Dozens of extra scans and statements: at least 5x slower.
    assert per_entry > 5 * long_query


def test_ablation_parallelism(benchmark):
    """The 20-AMP server vs a single worker on the same UDF scan."""

    def run(amps: int) -> float:
        db = Database(amps=amps, cost_parameters=CostParameters(amps=amps))
        load_dataset(
            db, "x", 128, MixtureSpec(d=16, k=4), row_scale=100_000.0 / 128
        )
        from repro.core.nlq_udf import nlq_call_sql, register_nlq_udfs

        register_nlq_udfs(db)
        db.reset_clock()
        return db.execute(
            nlq_call_sql("x", dimension_names(16))
        ).simulated_seconds

    benchmark(run, 20)
    serial = run(1)
    parallel = run(20)
    # Per-row work divides by 20; fixed merge/return does not.
    assert 8 < serial / parallel < 22


def test_ablation_synchronized_scan(benchmark):
    """All block calls in one statement (one scan) vs one statement per
    block pair (⌈d/64⌉² scans) — the Table 6 submission strategy."""
    data = scaled_dataset(100_000.0, 128, physical_rows=64, mixture_k=4)
    db = data.db
    combined_sql = blockwise_sql("x", data.dimensions)

    benchmark(lambda: db.execute(combined_sql))

    db.reset_clock()
    db.execute(combined_sql)
    synchronized = db.simulated_time

    blocks = dimension_blocks(len(data.dimensions))
    db.reset_clock()
    for range_a in blocks:
        for range_b in blocks:
            names_a = [data.dimensions[i] for i in range_a]
            names_b = [data.dimensions[i] for i in range_b]
            args = ", ".join(
                [str(len(names_a)), str(len(names_b)), *names_a, *names_b]
            )
            db.execute(f"SELECT nlq_block({args}) FROM x")
    separate = db.simulated_time
    # 4 scans instead of 1, plus per-statement overhead.  The per-row
    # UDF work dominates at d=128, so the saving is real but moderate
    # (~13% here); it grows with the number of blocks.
    assert separate > 1.10 * synchronized


def test_ablation_join_elimination(benchmark):
    """Scoring after feature selection: the dead model-table join costs
    real scan/join time until the optimizer removes it."""
    db = Database(amps=20)
    db.create_table("x", dataset_schema(8), row_scale=100_000.0 / 256)
    import numpy as np

    rng = np.random.default_rng(0)
    columns = {"i": np.arange(1, 257)}
    for name in dimension_names(8):
        columns[name] = rng.normal(size=256)
    db.load_columns("x", columns)
    db.execute("CREATE TABLE c (j INTEGER PRIMARY KEY, x1 FLOAT)")
    db.execute("INSERT INTO c VALUES (1, 0.0)")
    sql = "SELECT t.i, t.x1 FROM x t JOIN c c1 ON c1.j = 1"

    benchmark(lambda: db.execute_optimized(sql))

    db.reset_clock()
    db.execute(sql)
    unoptimized = db.simulated_time
    db.reset_clock()
    db.execute_optimized(sql)
    optimized = db.simulated_time
    assert optimized < unoptimized
    # Identical rows either way.
    assert sorted(db.execute(sql).rows) == sorted(
        db.execute_optimized(sql).rows
    )
