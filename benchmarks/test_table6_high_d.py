"""Table 6 — very high d via block-partitioned UDF calls.

Paper claims asserted: the number of calls is ⌈d/64⌉²; the single
synchronized-scan statement's total time is proportional to the number
of calls; measured times track the paper within 2x.
"""

from repro.bench.calibration import PAPER_TABLE6, within_factor
from repro.bench.harness import scaled_dataset
from repro.core.blockwise import blockwise_sql, compute_nlq_blockwise


def test_table6(benchmark, experiments):
    data = scaled_dataset(100_000.0, 128, physical_rows=64, mixture_k=4)
    benchmark(
        lambda: data.db.execute(blockwise_sql(data.table, data.dimensions))
    )
    # The assembled summary must be exact (checked against the storage).
    stats = compute_nlq_blockwise(data.db, data.table, data.dimensions)
    import numpy as np

    X = data.db.table(data.table).numeric_matrix(data.dimensions)
    assert np.allclose(stats.Q, X.T @ X)

    result = experiments.get("table6")
    per_call = []
    for d, calls, total, paper_calls, paper_total in result.rows:
        assert calls == paper_calls == (max(d, 64) // 64) ** 2
        assert within_factor(total, paper_total, 2.0)
        per_call.append(total / calls)
    # Proportionality: per-call time stays flat across the sweep.
    assert max(per_call) < 1.3 * min(per_call)
