"""Table 1 — total time to build models at d=32: C++ vs SQL vs UDF.

Paper claims asserted: the UDF is fastest at every n; C++ (excluding its
export time!) is slowest at scale; all three scale linearly in n; and
the measured simulated times track the paper's numbers.
"""

from repro.bench.calibration import PAPER_TABLE1, within_factor
from repro.bench.harness import nlq_udf_seconds, scaled_dataset


def test_table1(benchmark, experiments):
    data = scaled_dataset(100_000.0, 32)
    benchmark(nlq_udf_seconds, data)

    result = experiments.get("table1")
    rows = {row[0]: row[1:4] for row in result.rows}  # n -> (cpp, sql, udf)
    for n_thousand, (cpp, sql, udf) in rows.items():
        paper_cpp, paper_sql, paper_udf = PAPER_TABLE1[n_thousand]
        # Winners: UDF < SQL < C++ at every n from 200k up (the paper's
        # headline ordering; at 100k SQL's fixed cost still dominates).
        assert udf < sql, f"UDF should beat SQL at n={n_thousand}k"
        if n_thousand >= 200:
            assert sql < cpp, f"SQL should beat C++ at n={n_thousand}k"
        # Magnitudes within 2x of the paper.
        assert within_factor(cpp, paper_cpp, 2.0)
        assert within_factor(sql, paper_sql, 2.0)
        assert within_factor(udf, paper_udf, 2.0)
    # Linear scaling in n for C++ and the UDF: 16x rows ≈ 16x time.
    assert within_factor(rows[1600][0] / rows[100][0], 16.0, 1.4)
    assert within_factor(rows[1600][2] / rows[100][2], 16.0, 2.0)
