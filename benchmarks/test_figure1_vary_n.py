"""Figure 1 — SQL vs aggregate UDF as n grows (triangular matrix).

Paper claims asserted: both curves are linear in n; SQL stays below the
UDF at d ∈ {8, 16} for large n; at d=32 they are comparable; at d=64 the
UDF is much faster and the gap holds as n grows.
"""

from repro.bench.calibration import PAPER_FIGURES_1_2, within_factor
from repro.bench.harness import nlq_sql_seconds, scaled_dataset


def test_figure1(benchmark, experiments):
    data = scaled_dataset(100_000.0, 16, physical_rows=256)
    benchmark(nlq_sql_seconds, data)

    result = experiments.get("figure1")
    by_key = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}

    # Low d, large n: SQL wins.
    for d in (8, 16):
        assert by_key[(d, 1600)][0] < by_key[(d, 1600)][1]
    # d=32: comparable (within 40%).
    sql32, udf32 = by_key[(32, 1600)]
    assert within_factor(sql32, udf32, 1.6)
    # d=64: the UDF is much faster everywhere.
    for n_thousand in (100, 200, 400, 800, 1600):
        sql64, udf64 = by_key[(64, n_thousand)]
        assert sql64 > 2.5 * udf64
    # Linearity in n for the UDF: 16x rows within 2x of 16x time (the
    # small fixed merge/return cost bends the low end, as in the paper).
    for d in (8, 16, 32, 64):
        ratio = by_key[(d, 1600)][1] / by_key[(d, 100)][1]
        assert within_factor(ratio, 16.0, 2.0), d
    # Anchor against the published plot values.
    for (d, n_thousand), (paper_sql, paper_udf) in PAPER_FIGURES_1_2.items():
        sql_s, udf_s = by_key[(d, n_thousand)]
        assert within_factor(udf_s, paper_udf, 2.0), (d, n_thousand)
        if d >= 16:
            assert within_factor(sql_s, paper_sql, 2.0), (d, n_thousand)
