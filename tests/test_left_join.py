"""LEFT OUTER JOIN semantics (the paper's star-join construction)."""

import pytest

from repro.dbms.database import Database
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement


@pytest.fixture
def star(db: Database) -> Database:
    db.execute("CREATE TABLE ref (i INTEGER PRIMARY KEY)")
    db.execute("INSERT INTO ref VALUES (1), (2), (3)")
    db.execute("CREATE TABLE detail (did INTEGER PRIMARY KEY, i INTEGER, v FLOAT)")
    db.execute("INSERT INTO detail VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 3, 2.0)")
    return db


class TestParsing:
    def test_left_join_parsed(self):
        select = parse_statement("SELECT 1 FROM a LEFT JOIN b ON b.i = a.i")
        assert select.joins[0].outer is True

    def test_left_outer_join_parsed(self):
        select = parse_statement("SELECT 1 FROM a LEFT OUTER JOIN b ON b.i = a.i")
        assert select.joins[0].outer is True

    def test_inner_join_not_outer(self):
        select = parse_statement("SELECT 1 FROM a JOIN b ON b.i = a.i")
        assert select.joins[0].outer is False

    def test_render_round_trip(self):
        sql = "SELECT r.i FROM ref r LEFT JOIN d ON d.i = r.i"
        first = parse_statement(sql)
        assert parse_statement(ast.render(first)) == first


class TestSemantics:
    def test_unmatched_rows_null_padded(self, star):
        result = star.execute(
            "SELECT r.i, d.v FROM ref r LEFT JOIN detail d ON d.i = r.i "
            "ORDER BY r.i, d.v"
        )
        assert result.rows == [(1, 5.0), (1, 7.0), (2, None), (3, 2.0)]

    def test_inner_join_drops_unmatched(self, star):
        result = star.execute(
            "SELECT r.i FROM ref r JOIN detail d ON d.i = r.i GROUP BY r.i"
        )
        assert sorted(result.column("i")) == [1, 3]

    def test_aggregate_over_left_join(self, star):
        """The paper's metric pattern: every reference point appears,
        missing details aggregate to NULL → coalesce to 0."""
        result = star.execute(
            "SELECT r.i, coalesce(sum(d.v), 0.0) AS total FROM ref r "
            "LEFT JOIN detail d ON d.i = r.i GROUP BY r.i ORDER BY r.i"
        )
        assert result.rows == [(1, 12.0), (2, 0.0), (3, 2.0)]

    def test_count_ignores_padding_nulls(self, star):
        result = star.execute(
            "SELECT r.i, count(d.v) FROM ref r LEFT JOIN detail d "
            "ON d.i = r.i GROUP BY r.i ORDER BY r.i"
        )
        assert result.rows == [(1, 2), (2, 0), (3, 1)]

    def test_left_join_derived_table(self, star):
        result = star.execute(
            "SELECT r.i, s.total FROM ref r LEFT JOIN "
            "(SELECT i AS k, sum(v) AS total FROM detail GROUP BY i) s "
            "ON s.k = r.i ORDER BY r.i"
        )
        assert result.rows == [(1, 12.0), (2, None), (3, 2.0)]

    def test_chained_left_joins(self, star):
        star.execute("CREATE TABLE extra (i INTEGER PRIMARY KEY, w FLOAT)")
        star.execute("INSERT INTO extra VALUES (2, 9.0)")
        result = star.execute(
            "SELECT r.i, d.v, e.w FROM ref r "
            "LEFT JOIN detail d ON d.i = r.i "
            "LEFT JOIN extra e ON e.i = r.i ORDER BY r.i, d.v"
        )
        assert (2, None, 9.0) in result.rows
        assert (1, 5.0, None) in result.rows


class TestOptimizerInteraction:
    def test_unused_left_join_on_pk_eliminated(self, star):
        from repro.dbms.sql.optimizer import QueryOptimizer

        star.execute("CREATE TABLE props (i INTEGER PRIMARY KEY, p FLOAT)")
        report = QueryOptimizer(star.catalog).optimize(
            parse_statement(
                "SELECT r.i FROM ref r LEFT JOIN props p ON p.i = r.i"
            )
        )
        assert report.eliminated_joins == ["p"]

    def test_used_left_join_kept(self, star):
        from repro.dbms.sql.optimizer import QueryOptimizer

        report = QueryOptimizer(star.catalog).optimize(
            parse_statement(
                "SELECT r.i, d.v FROM ref r LEFT JOIN detail d ON d.i = r.i"
            )
        )
        assert report.eliminated_joins == []

    def test_left_join_on_non_pk_kept(self, star):
        # detail.i is NOT the primary key: multiple matches can
        # duplicate rows, so elimination is unsafe even when unused.
        from repro.dbms.sql.optimizer import QueryOptimizer

        report = QueryOptimizer(star.catalog).optimize(
            parse_statement(
                "SELECT r.i FROM ref r LEFT JOIN detail d ON d.i = r.i"
            )
        )
        assert report.eliminated_joins == []

    def test_eliminated_left_join_same_results(self, star):
        star.execute("CREATE TABLE props (i INTEGER PRIMARY KEY, p FLOAT)")
        sql = "SELECT r.i FROM ref r LEFT JOIN props p ON p.i = r.i ORDER BY r.i"
        assert star.execute(sql).rows == star.execute_optimized(sql).rows
