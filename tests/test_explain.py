"""EXPLAIN [ANALYZE]: parsing, plan trees, span tracing, reconciliation.

The contract under test (docs/observability.md):

* plain ``EXPLAIN`` is purely analytical — renders the optimized plan
  with cost estimates, executes nothing, charges nothing;
* ``EXPLAIN ANALYZE`` executes the optimized statement under span
  tracing and the per-operator span sums reconcile with the
  ``QueryMetrics`` stage totals *exactly* (same floats, same summation
  order), at any worker count;
* when EXPLAIN is not requested, the null tracer allocates no span
  objects on the hot path.
"""

from __future__ import annotations

import pytest

from repro.dbms.database import Database
from repro.dbms.metrics import QueryMetrics, StageTimer
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.dbms.sql.plan import Plan, PlanNode
from repro.dbms.trace import NULL_TRACER, NullTracer, Span, Tracer
from repro.errors import PlanningError, SqlSyntaxError


NLQ_SQL = "SELECT nlq_tri(4, t.x1, t.x2, t.x3, t.x4) FROM x t"


# ------------------------------------------------------------------ parsing
class TestParsing:
    def test_explain_select(self):
        statement = parse_statement("EXPLAIN SELECT 1")
        assert isinstance(statement, ast.Explain)
        assert not statement.analyze
        assert isinstance(statement.statement, ast.Select)

    def test_explain_analyze_select(self):
        statement = parse_statement("EXPLAIN ANALYZE SELECT 1")
        assert isinstance(statement, ast.Explain)
        assert statement.analyze

    def test_nested_explain_rejected(self):
        with pytest.raises(SqlSyntaxError, match="cannot nest EXPLAIN"):
            parse_statement("EXPLAIN EXPLAIN SELECT 1")

    def test_explain_non_select_parses_but_does_not_execute(self, db):
        statement = parse_statement("EXPLAIN DROP TABLE x")
        assert isinstance(statement.statement, ast.DropTable)
        with pytest.raises(PlanningError):
            db.execute("EXPLAIN DROP TABLE nothing")


# ------------------------------------------------------------ plain EXPLAIN
class TestExplainPlain:
    def test_returns_plan_rows_and_structured_plan(self, loaded_db):
        db, _, _ = loaded_db
        result = db.execute("EXPLAIN " + NLQ_SQL)
        assert result.columns == ["plan"]
        assert result.rows[0][0] == "EXPLAIN"
        assert isinstance(result.plan, Plan)
        assert not result.plan.analyze
        assert result.plan.trace is None

    def test_charges_nothing_and_executes_nothing(self, loaded_db):
        db, _, _ = loaded_db
        before = db.simulated_time
        result = db.execute("EXPLAIN " + NLQ_SQL)
        assert db.simulated_time == before
        assert result.metrics.rows_processed == 0

    def test_plan_tree_shape(self, loaded_db):
        db, _, _ = loaded_db
        plan = db.explain_plan(NLQ_SQL)
        assert [node.operator for node in plan.nodes()] == [
            "project",
            "aggregate",
            "scan",
        ]
        assert plan.estimated_seconds > 0
        assert all(
            isinstance(node, PlanNode) and node.estimated_seconds >= 0
            for node in plan.nodes()
        )

    def test_partition_fanout_note(self, loaded_db):
        db, _, _ = loaded_db
        (aggregate,) = db.explain_plan(NLQ_SQL).find("aggregate")
        assert any("fan-out" in note for note in aggregate.notes)
        assert any("single-scan" in note for note in aggregate.notes)

    def test_estimate_sums_over_operators(self, loaded_db):
        db, _, _ = loaded_db
        plan = db.explain_plan(NLQ_SQL)
        assert plan.estimated_seconds == sum(
            node.estimated_seconds for node in plan.nodes()
        )

    def test_optimizer_decisions_in_notes(self, loaded_db):
        db, _, _ = loaded_db
        db.execute(
            "CREATE TABLE beta (j INTEGER PRIMARY KEY, b FLOAT);"
            "INSERT INTO beta VALUES (0, 1.5)"
        )
        plan = db.explain_plan(
            "SELECT t.i FROM x t CROSS JOIN beta b"
        )
        assert any("join eliminated: b" in note for note in plan.root.notes)
        # The eliminated join is gone from the operator tree itself.
        assert len(plan.scans) == 1

    def test_explain_text_api_unchanged(self, loaded_db):
        db, _, _ = loaded_db
        text = db.explain("SELECT sum(t.x1) FROM x t WHERE t.x2 > 0")
        assert "EXPLAIN" in text
        assert "aggregate: [sum]" in text
        assert "filter:" in text
        assert "estimated simulated seconds" in text


# --------------------------------------------------------- EXPLAIN ANALYZE
def assert_reconciles(result) -> None:
    """Span sums must equal stage totals exactly — not approximately."""
    metrics = result.metrics
    trace = result.plan.trace
    assert trace is not None
    assert trace.total_seconds("scan") == metrics.scan_seconds
    assert trace.total_seconds("accumulate") == metrics.accumulate_seconds
    assert trace.total_seconds("merge") == metrics.merge_seconds
    assert trace.total_seconds("finalize") == metrics.finalize_seconds


class TestExplainAnalyze:
    def test_executes_and_charges(self, loaded_db):
        db, _, _ = loaded_db
        before = db.simulated_time
        result = db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        assert db.simulated_time > before
        assert result.metrics.rows_processed == 200
        assert result.rows[0][0] == "EXPLAIN ANALYZE"
        assert any("(actual" in row[0] for row in result.rows)

    def test_reconciles_vectorized_aggregate(self, loaded_db):
        db, _, _ = loaded_db
        assert_reconciles(db.execute("EXPLAIN ANALYZE " + NLQ_SQL))

    def test_reconciles_row_partitioned_aggregate(self, loaded_db):
        # A WHERE clause disables the vector path -> partitioned row path.
        db, _, _ = loaded_db
        result = db.execute(
            "EXPLAIN ANALYZE SELECT sum(t.x1) FROM x t WHERE t.x2 > 0"
        )
        assert_reconciles(result)
        (aggregate,) = result.plan.find("aggregate")
        assert aggregate.span.attributes["strategy"] == "row-partitioned"

    def test_reconciles_group_by(self, loaded_db):
        db, _, _ = loaded_db
        assert_reconciles(
            db.execute(
                "EXPLAIN ANALYZE SELECT i MOD 4, sum(x1) FROM x "
                "GROUP BY i MOD 4"
            )
        )

    def test_reconciles_serial_aggregate_over_join(self, loaded_db):
        # This PK self-join is factorizable; force the materializing
        # route — the serial join path is what this test pins down
        # (the factorized route has its own reconciliation test in
        # tests/test_factorized.py).
        db, _, _ = loaded_db
        db.factorized_joins_enabled = False
        try:
            result = db.execute(
                "EXPLAIN ANALYZE SELECT sum(a.x1 * b.x2) FROM x a "
                "JOIN x b ON a.i = b.i"
            )
        finally:
            db.factorized_joins_enabled = True
        assert_reconciles(result)
        (aggregate,) = result.plan.find("aggregate")
        assert aggregate.span.attributes["strategy"] == "row-serial"

    def test_reconciles_projection(self, loaded_db):
        db, _, _ = loaded_db
        assert_reconciles(
            db.execute("EXPLAIN ANALYZE SELECT t.i, t.x1 FROM x t")
        )

    def test_reconciles_with_parallel_workers(self, loaded_db):
        db, _, _ = loaded_db
        db.executor_workers = 3
        try:
            result = db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        finally:
            db.executor_workers = 1
        assert result.metrics.workers == 3
        assert_reconciles(result)

    def test_task_spans_carry_partition_details(self, loaded_db):
        db, _, _ = loaded_db
        result = db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        tasks = result.plan.trace.find("task")
        assert len(tasks) == result.metrics.partitions_processed
        assert [task.attributes["partition"] for task in tasks] == sorted(
            task.attributes["partition"] for task in tasks
        )
        assert sum(task.attributes["rows"] for task in tasks) == 200
        for task in tasks:
            assert {child.name for child in task.children} == {
                "scan",
                "accumulate",
            }

    def test_block_cache_visible_across_runs(self, loaded_db):
        db, _, _ = loaded_db
        first = db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        second = db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        assert all(
            not task.attributes["cached_block"]
            for task in first.plan.trace.find("task")
        )
        assert all(
            task.attributes["cached_block"]
            for task in second.plan.trace.find("task")
        )

    def test_analyze_matches_plain_execution_results(self, loaded_db):
        db, _, _ = loaded_db
        direct = db.execute(NLQ_SQL).scalar()
        db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        again = db.execute(NLQ_SQL).scalar()
        assert direct == again

    def test_db_explain_analyze_text(self, loaded_db):
        db, _, _ = loaded_db
        text = db.explain(NLQ_SQL, analyze=True)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "actual wall-clock seconds" in text


# ------------------------------------------------------- null-tracer hot path
class TestNullTracerOverhead:
    def test_executor_defaults_to_null_tracer(self, loaded_db):
        db, _, _ = loaded_db
        assert db._executor.tracer is NULL_TRACER
        db.execute(NLQ_SQL)
        assert db._executor.tracer is NULL_TRACER

    def test_null_tracer_restored_after_analyze(self, loaded_db):
        db, _, _ = loaded_db
        db.execute("EXPLAIN ANALYZE " + NLQ_SQL)
        assert db._executor.tracer is NULL_TRACER

    def test_null_span_context_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("scan") is tracer.span("merge")
        assert tracer.span("x") is NULL_TRACER.span("y")
        with tracer.span("anything") as span:
            assert span is None

    def test_no_span_objects_allocated_without_explain(
        self, loaded_db, monkeypatch
    ):
        db, _, _ = loaded_db
        allocations = 0
        original = Span.__init__

        def counting_init(self, *args, **kwargs):
            nonlocal allocations
            allocations += 1
            original(self, *args, **kwargs)

        monkeypatch.setattr(Span, "__init__", counting_init)
        db.execute(NLQ_SQL)
        db.execute("SELECT t.i, t.x1 FROM x t WHERE t.x2 > 0")
        db.execute("SELECT i MOD 4, sum(x1) FROM x GROUP BY i MOD 4")
        assert allocations == 0


# -------------------------------------------------------------- span objects
class TestSpan:
    def test_walk_and_find(self):
        root = Span("a", children=[Span("b", children=[Span("c")]), Span("c")])
        assert [span.name for span in root.walk()] == ["a", "b", "c", "c"]
        assert len(root.find("c")) == 2

    def test_total_seconds_sums_in_tree_order(self):
        root = Span(
            "root",
            children=[Span("scan", seconds=0.1), Span("scan", seconds=0.2)],
        )
        assert root.total_seconds("scan") == 0.1 + 0.2

    def test_render(self):
        root = Span("scan", seconds=0.00125, attributes={"rows": 7})
        (line,) = root.render()
        assert line == "scan: 1.250 ms rows=7"

    def test_tracer_nests_spans(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                inner.attributes["rows"] = 1
        (outer,) = tracer.root.children
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.seconds > 0

    def test_tracer_attach_preserves_order(self):
        tracer = Tracer()
        spans = [Span("task"), Span("task")]
        with tracer.span("aggregate"):
            tracer.attach(spans)
        (aggregate,) = tracer.root.children
        assert aggregate.children == spans


# ------------------------------------------------------------- QueryMetrics
class TestQueryMetrics:
    def test_to_dict_from_dict_round_trip(self):
        metrics = QueryMetrics(
            workers=3,
            total_seconds=0.5,
            scan_seconds=0.1,
            accumulate_seconds=0.2,
            merge_seconds=0.05,
            finalize_seconds=0.01,
            rows_processed=100,
            partitions_processed=4,
            parallel_tasks=4,
            groups=2,
        )
        assert QueryMetrics.from_dict(metrics.to_dict()) == metrics

    def test_as_dict_alias(self):
        metrics = QueryMetrics(workers=2)
        assert metrics.as_dict() == metrics.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown QueryMetrics fields"):
            QueryMetrics.from_dict({"workers": 1, "bogus": 2})

    def test_from_dict_defaults_missing_keys(self):
        metrics = QueryMetrics.from_dict({"workers": 5})
        assert metrics.workers == 5
        assert metrics.total_seconds == 0.0

    def test_repr_is_readable(self):
        text = repr(QueryMetrics(workers=2, rows_processed=10))
        assert text.startswith("QueryMetrics(workers=2")
        assert "rows=10" in text
        assert "scan=" in text and "merge=" in text

    def test_stage_timer_syncs_identical_float_to_span(self):
        metrics = QueryMetrics()
        span = Span("merge")
        with StageTimer(metrics, "merge", span):
            pass
        assert span.seconds == metrics.merge_seconds
        assert span.seconds > 0
