"""Correlation analysis from the summary matrices."""

import numpy as np
import pytest

from repro.core.models.correlation import CorrelationModel
from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@pytest.fixture
def model_and_x():
    rng = np.random.default_rng(3)
    n = 300
    base = rng.normal(size=n)
    X = np.column_stack(
        [
            base,
            base * 2 + rng.normal(scale=0.1, size=n),   # strongly correlated
            -base + rng.normal(scale=0.5, size=n),      # negatively correlated
            rng.normal(size=n),                          # independent
        ]
    )
    stats = SummaryStatistics.from_matrix(X)
    names = ["a", "b", "c", "noise"]
    return CorrelationModel.from_summary(stats, names), X


class TestBuild:
    def test_matches_numpy(self, model_and_x):
        model, X = model_and_x
        assert np.allclose(model.rho, np.corrcoef(X.T))

    def test_diagonal_is_one(self, model_and_x):
        model, _X = model_and_x
        assert np.allclose(np.diag(model.rho), 1.0)

    def test_symmetric(self, model_and_x):
        model, _X = model_and_x
        assert np.allclose(model.rho, model.rho.T)

    def test_name_count_checked(self):
        stats = SummaryStatistics.from_matrix(
            np.random.default_rng(0).normal(size=(10, 3))
        )
        with pytest.raises(ModelError, match="names"):
            CorrelationModel.from_summary(stats, ["a", "b"])


class TestQueries:
    def test_coefficient_by_name_and_index(self, model_and_x):
        model, _X = model_and_x
        assert model.coefficient("a", "b") == model.coefficient(0, 1)
        assert model.coefficient("a", "b") > 0.99
        assert model.coefficient("a", "c") < -0.8

    def test_unknown_name(self, model_and_x):
        model, _X = model_and_x
        with pytest.raises(ModelError, match="unknown dimension"):
            model.coefficient("a", "zz")

    def test_index_out_of_range(self, model_and_x):
        model, _X = model_and_x
        with pytest.raises(ModelError):
            model.coefficient(0, 9)

    def test_nameless_model_rejects_names(self):
        stats = SummaryStatistics.from_matrix(
            np.random.default_rng(0).normal(size=(10, 2))
        )
        model = CorrelationModel.from_summary(stats)
        with pytest.raises(ModelError, match="without dimension names"):
            model.coefficient("a", "b")

    def test_strongest_pairs(self, model_and_x):
        model, _X = model_and_x
        pairs = model.strongest_pairs(top=2)
        assert pairs[0][:2] == (1, 0)  # a-b is the strongest pair
        assert abs(pairs[0][2]) >= abs(pairs[1][2])

    def test_t_statistic_significance(self, model_and_x):
        model, _X = model_and_x
        assert abs(model.t_statistic("a", "b")) > 10
        assert abs(model.t_statistic("a", "noise")) < 3

    def test_significant_pairs_excludes_noise(self, model_and_x):
        model, _X = model_and_x
        significant = {(a, b) for a, b, _ in model.significant_pairs(threshold=4.0)}
        assert (1, 0) in significant
        assert (3, 0) not in significant

    def test_t_statistic_needs_samples(self):
        stats = SummaryStatistics.from_matrix(np.asarray([[1.0, 2.0], [2.0, 1.0]]))
        model = CorrelationModel.from_summary(stats)
        with pytest.raises(ModelError, match="n > 2"):
            model.t_statistic(0, 1)

    def test_perfect_correlation_infinite_t(self):
        x = np.arange(10.0)
        stats = SummaryStatistics.from_matrix(np.column_stack([x, 2 * x]))
        model = CorrelationModel.from_summary(stats)
        assert model.t_statistic(0, 1) == np.inf
