"""Regression tests for three mining-path bugs.

1. K-means seeding materialized the whole table client-side with
   ``numeric_matrix`` — a single NULL row became NaN and poisoned every
   centroid.  Seeding now draws a bounded, NULL-filtered reservoir
   sample through the partition engine (:mod:`repro.dbms.sampling`),
   deterministic for a fixed seed at any worker count.
2. ``DROP TABLE`` left the table's entries in the
   :class:`~repro.core.summary_cache.SummaryCache`; recreating the
   table then served stale summaries.  The catalog now notifies the
   cache on every drop.
3. ``naive_bayes``/``lda`` crashed with a bare ``TypeError`` on
   ``int(key)`` when the label column held NULLs (grouped under
   None/NaN) or non-integral floats.  NULL-label groups are skipped and
   non-integral labels raise a clear :class:`ModelError`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.models.kmeans import KMeansModel
from repro.core.nlq_udf import nlq_call_sql, register_nlq_udfs
from repro.dbms.database import Database
from repro.dbms.sampling import reservoir_sample
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import ModelError
from repro.twm.miner import WarehouseMiner

D = 2
DIMS = dimension_names(D)


def _clustering_db(
    workers: int | None = None, null_rows: int = 0, register: bool = True
) -> Database:
    """x(i, x1, x2) with 60 seeded rows, the last *null_rows* of which
    have a NULL in x1."""
    kwargs = {} if workers is None else {"executor_workers": workers}
    db = Database(amps=4, **kwargs)
    rng = np.random.default_rng(11)
    n = 60
    X = rng.normal(10.0, 3.0, size=(n, D))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(DIMS):
        columns[name] = X[:, index]
    if null_rows:
        x1 = columns["x1"].astype(object)
        x1[-null_rows:] = None
        columns["x1"] = x1
    db.create_table("x", dataset_schema(D))
    db.load_columns("x", columns)
    if register:
        register_nlq_udfs(db)
    return db


# ------------------------------------------------------- k-means seeding
def test_kmeans_survives_null_rows():
    """A NULL row must not poison the seeds: pre-fix, numeric_matrix
    turned it into a NaN row and every centroid went NaN."""
    with _clustering_db(null_rows=3) as db:
        model = KMeansModel.fit_dbms(db, "x", DIMS, k=3, seed=5)
    assert np.isfinite(model.centroids).all()
    assert np.isfinite(model.radii).all()
    assert model.weights.sum() == pytest.approx(1.0)


def test_miner_kmeans_survives_null_rows():
    with _clustering_db(null_rows=2, register=False) as db:
        miner = WarehouseMiner(db)  # the miner registers the UDFs itself
        model = miner.kmeans("x", k=2, seed=1)
    assert np.isfinite(model.centroids).all()


def test_seeding_deterministic_across_worker_counts():
    fits = []
    for workers in (1, 2, 4):
        with _clustering_db(workers=workers, null_rows=2) as db:
            fits.append(KMeansModel.fit_dbms(db, "x", DIMS, k=3, seed=7))
    for model in fits[1:]:
        assert np.array_equal(model.centroids, fits[0].centroids)
        assert np.array_equal(model.radii, fits[0].radii)
        assert np.array_equal(model.weights, fits[0].weights)


def test_reservoir_sample_filters_nulls_and_bounds():
    with _clustering_db(null_rows=5) as db:
        sample = reservoir_sample(db, "x", DIMS, cap=16, seed=3)
        again = reservoir_sample(db, "x", DIMS, cap=16, seed=3)
        other_seed = reservoir_sample(db, "x", DIMS, cap=16, seed=4)
        full = reservoir_sample(db, "x", DIMS, cap=10_000, seed=0)
    assert sample.shape[1] == D
    assert sample.shape[0] <= 16
    assert np.isfinite(sample).all()
    assert np.array_equal(sample, again)  # pure function of (data, seed)
    assert not np.array_equal(sample, other_seed)
    # A cap beyond the table returns exactly the complete rows.
    assert full.shape[0] == 60 - 5
    assert np.isfinite(full).all()


def test_reservoir_sample_rejects_bad_cap():
    with _clustering_db() as db:
        with pytest.raises(ValueError, match="cap"):
            reservoir_sample(db, "x", DIMS, cap=0)


def test_kmeans_needs_k_complete_rows():
    """All-NULL data leaves no complete rows; the error names that."""
    with _clustering_db(null_rows=60) as db:
        with pytest.raises(ModelError, match="complete rows"):
            KMeansModel.fit_dbms(db, "x", DIMS, k=2, seed=0)


# -------------------------------------------------- DROP TABLE eviction
def test_drop_table_evicts_summary_cache(loaded_db):
    db, _, _ = loaded_db
    db.summary_cache_enabled = True
    sql = nlq_call_sql("x", dimension_names(4))
    db.execute(sql)
    cache = db.summary_cache
    assert len(cache) == 1
    db.execute("DROP TABLE x")
    assert len(cache) == 0


def test_drop_table_api_evicts_summary_cache(loaded_db):
    db, _, _ = loaded_db
    db.summary_cache_enabled = True
    db.execute(nlq_call_sql("x", dimension_names(4)))
    assert len(db.summary_cache) == 1
    db.drop_table("x")
    assert len(db.summary_cache) == 0


def test_recreated_table_is_not_served_stale_summaries():
    """The actual corruption the bug caused: drop x, recreate it with
    different data, and the cached summary of the *old* x answered."""
    from repro.core.packing import unpack_summary

    def load(db: Database, scale: float) -> None:
        rng = np.random.default_rng(2)
        n = 40
        columns = {"i": np.arange(1, n + 1)}
        for index, name in enumerate(DIMS):
            columns[name] = rng.normal(scale, 1.0, n)
        db.create_table("x", dataset_schema(D))
        db.load_columns("x", columns)

    with Database(amps=4) as db:
        load(db, scale=5.0)
        register_nlq_udfs(db)
        db.summary_cache_enabled = True
        sql = nlq_call_sql("x", DIMS)
        first = unpack_summary(db.execute(sql).scalar())
        db.execute("DROP TABLE x")
        load(db, scale=50.0)
        second = unpack_summary(db.execute(sql).scalar())
    assert not np.allclose(first.L, second.L)
    assert second.mean() == pytest.approx(np.full(D, 50.0), abs=1.0)


# ------------------------------------------------- NULL / float labels
def _labelled_db(labels) -> Database:
    db = Database(amps=4)
    db.execute(
        "CREATE TABLE t (i INTEGER PRIMARY KEY, a FLOAT, b FLOAT, "
        "label FLOAT)"
    )
    rng = np.random.default_rng(9)
    for i, label in enumerate(labels, start=1):
        a, b = (float(v) for v in rng.normal(0.0, 1.0, 2))
        lit = "NULL" if label is None else repr(float(label))
        db.execute(f"INSERT INTO t VALUES ({i}, {a!r}, {b!r}, {lit})")
    return db


_LABELS_WITH_NULLS = [0, 0, 0, 1, 1, 1, None, None]


@pytest.mark.parametrize("method", ["naive_bayes", "lda"])
def test_null_labels_are_skipped(method):
    """Unlabelled rows must be ignored, not crash the GROUP BY fold.
    Pre-fix this died with ``int(None)``/``int(nan)`` TypeErrors."""
    with _labelled_db(_LABELS_WITH_NULLS) as db:
        miner = WarehouseMiner(db)
        model = getattr(miner, method)("t")
    assert model.classes == [0, 1]


@pytest.mark.parametrize("method", ["naive_bayes", "lda"])
def test_non_integral_label_raises_model_error(method):
    with _labelled_db([0, 0, 1, 1, 2.5, 2.5]) as db:
        miner = WarehouseMiner(db)
        with pytest.raises(ModelError, match="non-integral value 2.5"):
            getattr(miner, method)("t")


@pytest.mark.parametrize("method", ["naive_bayes", "lda"])
def test_all_null_labels_raise_model_error(method):
    """Skipping every group leaves nothing to model — a clear error,
    not an empty classifier."""
    with _labelled_db([None] * 6) as db:
        miner = WarehouseMiner(db)
        with pytest.raises(ModelError):
            getattr(miner, method)("t")


def test_integral_float_labels_accepted():
    """1.0 and 2.0 are legitimate integer classes stored as FLOAT."""
    with _labelled_db([1.0, 1.0, 1.0, 2.0, 2.0, 2.0]) as db:
        miner = WarehouseMiner(db)
        model = miner.naive_bayes("t")
    assert model.classes == [1, 2]
    assert all(isinstance(c, int) for c in model.classes)


def test_nan_distance_poisoning_is_fixed_end_to_end():
    """The original symptom: with NULLs present, every centroid ended
    NaN because one NaN distance made every assignment NaN."""
    with _clustering_db(null_rows=4) as db:
        model = KMeansModel.fit_dbms_two_scan(db, "x", DIMS, k=2, seed=0)
    assert not any(math.isnan(v) for v in model.centroids.ravel())
