"""Executor parity: serial, thread-pool and process-pool answers match.

The process-pool engine ships ``(table, partition, plan fragment)``
descriptors to worker processes that re-execute the same per-partition
fold over mmap'd columnar blocks.  Because every partial is produced by
the same deterministic code over the same stored values, and partials
merge strictly in partition order, the three executors must agree **bit
for bit** — not approximately — on every workload class the paper's
pipeline exercises: row-path and vectorized aggregation, vectorized
scoring projections, fused clustering iterations, and factorized
fact-table folds.

A chaos regime pinned to ``executor_kind="process"`` then replays the
fault-injection contract on the process path: typed errors with
partition attribution, bounded retries healing flaky tasks, fatal
timeouts tearing the pool down, and full reusability afterwards.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.models.kmeans import KMeansModel
from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.faults import FaultPlan, FaultSpec
from repro.dbms.schema import (
    Column,
    TableSchema,
    dataset_schema,
    dimension_names,
)
from repro.dbms.types import SqlType
from repro.errors import PartitionExecutionError, ReproError

D = 2
N_ROWS = 96

_SETTINGS = dict(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_GEN = ScoringSqlGenerator("x", ["x1", "x2"])

AGG_ROW = (
    "SELECT i MOD 3, sum(x1), sum(y), count(*) FROM x "
    "WHERE i >= 1 GROUP BY i MOD 3 ORDER BY 1"
)
AGG_VECTOR = "SELECT sum(x1), sum(x2), count(*) FROM x"
SCORING = _GEN.regression_inline_sql(2.0, [1.0, -2.0])


def _columns(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(50.0, 10.0, size=(N_ROWS, D))
    y = 2.0 + X @ np.asarray([1.0, -2.0]) + rng.normal(0, 0.1, N_ROWS)
    columns = {"i": np.arange(1, N_ROWS + 1), "y": y}
    for index, name in enumerate(dimension_names(D)):
        columns[name] = X[:, index]
    return columns


def _db(columns, kind, workers=4):
    """serial = one worker (inline execution); thread/process = pools."""
    db = Database(
        amps=4,
        executor_workers=1 if kind == "serial" else workers,
        executor_kind="thread" if kind == "serial" else kind,
    )
    db.create_table("x", dataset_schema(D, with_y=True))
    db.load_columns("x", columns)
    register_nlq_udfs(db)
    register_scoring_udfs(db)
    return db


def _each_kind(columns, workers, run, expect_process_path=None):
    """Run *run* under serial/thread/process and return the results.

    When *expect_process_path* is set, the process run must have taken
    the descriptor path for it (no pickle-probe fallback).
    """
    out = {}
    for kind in ("serial", "thread", "process"):
        with _db(columns, kind, workers) as db:
            out[kind] = run(db)
            if kind == "process":
                assert db._executor.engine.uses_processes
                if expect_process_path:
                    assert db._executor.engine.last_process_fallback is None
    return out


# ----------------------------------------------------------- bit parity
class TestExecutorParity:
    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 4]))
    @settings(**_SETTINGS)
    def test_row_path_aggregate(self, seed, workers):
        results = _each_kind(
            _columns(seed),
            workers,
            lambda db: db.execute(AGG_ROW).rows,
            expect_process_path=True,
        )
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]

    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 4]))
    @settings(**_SETTINGS)
    def test_vectorized_aggregate(self, seed, workers):
        results = _each_kind(
            _columns(seed),
            workers,
            lambda db: db.execute(AGG_VECTOR).rows,
            expect_process_path=True,
        )
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]

    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 4]))
    @settings(**_SETTINGS)
    def test_vectorized_scoring(self, seed, workers):
        results = _each_kind(
            _columns(seed),
            workers,
            lambda db: db.execute(SCORING).rows,
            expect_process_path=True,
        )
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]

    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 4]))
    @settings(**_SETTINGS)
    def test_fused_clustering(self, seed, workers):
        def fit(db):
            model = KMeansModel.fit_dbms(
                db, "x", dimension_names(D), 3, seed=0
            )
            return model.centroids, model.radii, model.weights

        results = _each_kind(_columns(seed), workers, fit)
        for kind in ("thread", "process"):
            for got, want in zip(results[kind], results["serial"]):
                assert np.array_equal(got, want)

    @given(
        seed=st.integers(0, 2**16),
        workers=st.sampled_from([2, 4]),
        null_fk_every=st.sampled_from([0, 7]),
    )
    @settings(**_SETTINGS)
    def test_factorized_star_fold(self, seed, workers, null_fk_every):
        def build(kind):
            rng = np.random.default_rng(seed)
            n_fact, n_dim = 120, 8
            db = Database(
                amps=4,
                executor_workers=1 if kind == "serial" else workers,
                executor_kind="thread" if kind == "serial" else kind,
            )
            db.create_table(
                "stores",
                TableSchema.build(
                    [
                        Column("sid", SqlType.INTEGER, nullable=False),
                        ("sx", SqlType.FLOAT),
                        ("sy", SqlType.FLOAT),
                    ],
                    primary_key="sid",
                ),
            )
            db.create_table(
                "sales",
                TableSchema.build(
                    [
                        Column("oid", SqlType.INTEGER, nullable=False),
                        Column("sid", SqlType.INTEGER),
                        ("amount", SqlType.FLOAT),
                    ],
                    primary_key="oid",
                ),
            )
            db.load_columns(
                "stores",
                {
                    "sid": np.arange(1, n_dim + 1),
                    "sx": rng.normal(0, 5, n_dim),
                    "sy": rng.normal(10, 2, n_dim),
                },
            )
            sid = rng.integers(1, n_dim + 1, n_fact).astype(object)
            for i in range(n_fact):
                if null_fk_every and i % null_fk_every == 0:
                    sid[i] = None
            db.table("sales").insert_many(
                [
                    (i + 1, sid[i], float(rng.normal(100, 20)))
                    for i in range(n_fact)
                ]
            )
            register_nlq_udfs(db)
            return db

        results = {}
        for kind in ("serial", "thread", "process"):
            with build(kind) as db:
                stats = compute_nlq_udf(
                    db,
                    "sales JOIN stores ON sales.sid = stores.sid",
                    ["sales.amount", "stores.sx", "stores.sy"],
                )
                assert db.last_factorize_decision.factorized
                results[kind] = (stats.n, stats.L, stats.Q)
        for kind in ("thread", "process"):
            assert results[kind][0] == results["serial"][0]
            assert np.array_equal(results[kind][1], results["serial"][1])
            assert np.array_equal(results[kind][2], results["serial"][2])


# -------------------------------------------------- process-mode chaos
_CHAOS_SITES = [
    "partition.scan",
    "block.materialize",
    "udf.compute_batch",
    "engine.task",
]


def _chaos_specs():
    return st.lists(
        st.builds(
            FaultSpec,
            site=st.sampled_from(_CHAOS_SITES),
            kind=st.sampled_from(["error", "delay", "flaky"]),
            delay_seconds=st.sampled_from([0.0, 0.01, 0.25]),
            times=st.sampled_from([None, 1, 2]),
            partition=st.sampled_from([None, 0, 1, 3]),
        ),
        min_size=1,
        max_size=2,
    )


class TestProcessChaos:
    @given(
        specs=_chaos_specs(),
        retries=st.sampled_from([0, 2]),
        timeout=st.sampled_from([None, 0.1]),
    )
    # Pinned regimes: fatal task error, flaky healed by retries,
    # degradation (block path dies), and delay-past-timeout (which
    # tears the worker pool down and must leave no orphans).
    @example(
        specs=[FaultSpec("engine.task", partition=1)],
        retries=0,
        timeout=None,
    )
    @example(
        specs=[FaultSpec("engine.task", kind="flaky", times=1)],
        retries=2,
        timeout=None,
    )
    @example(
        specs=[FaultSpec("block.materialize")], retries=0, timeout=None
    )
    @example(
        specs=[FaultSpec("engine.task", kind="delay", delay_seconds=0.25)],
        retries=0,
        timeout=0.1,
    )
    @settings(**_SETTINGS)
    def test_process_query_chaos(self, specs, retries, timeout):
        columns = _columns(77)
        with _db(columns, "thread") as db:
            vectorized = db.execute(AGG_VECTOR).rows
            db.vectorized_select = False
            db.faults = FaultPlan().fail("block.materialize")
            row = db.execute(AGG_VECTOR).rows
        db = _db(columns, "process")
        try:
            db.faults = FaultPlan(specs, seed=7)
            db.task_retries = retries
            db.task_timeout_seconds = timeout
            try:
                result = db.execute(AGG_VECTOR)
            except ReproError as error:
                if isinstance(error, PartitionExecutionError):
                    assert error.partitions
                    assert error.first_error is not None
            else:
                assert result.rows == vectorized or result.rows == row
            engine = db._executor.engine
            deadline = time.perf_counter() + 10.0
            while engine.active_tasks and time.perf_counter() < deadline:
                time.sleep(0.005)
            assert engine.active_tasks == 0
            # Reusable after any outcome — and still on processes.
            db.faults = None
            db.task_timeout_seconds = None
            assert db.execute(AGG_VECTOR).rows == vectorized
            assert engine.uses_processes
        finally:
            db.close()
