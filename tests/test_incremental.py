"""Incremental maintenance of (n, L, Q)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalSummary
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import ModelError


def make_db(d=3, amps=3):
    db = Database(amps=amps)
    db.create_table("x", dataset_schema(d))
    return db


def insert_batch(db, start, count, d=3, seed=None):
    rng = np.random.default_rng(seed if seed is not None else start)
    rows = [
        (start + offset, *rng.normal(size=d).tolist())
        for offset in range(count)
    ]
    db.insert_rows("x", rows)
    return np.asarray([row[1:] for row in rows])


class TestRefresh:
    def test_initial_refresh_covers_existing_rows(self):
        db = make_db()
        data = insert_batch(db, 1, 50)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        stats = summary.refresh()
        assert stats.n == 50
        assert np.allclose(np.sort(stats.L), np.sort(data.sum(axis=0)))

    def test_incremental_equals_full_recompute(self):
        db = make_db()
        summary = IncrementalSummary(db, "x", dimension_names(3))
        all_rows = []
        for batch in range(5):
            block = insert_batch(db, 1 + batch * 20, 20)
            all_rows.append(block)
            summary.refresh()
        whole = SummaryStatistics.from_matrix(np.vstack(all_rows))
        assert summary.stats.allclose(whole)

    def test_noop_refresh(self):
        db = make_db()
        insert_batch(db, 1, 10)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        first = summary.refresh()
        second = summary.refresh()
        assert first.allclose(second, rtol=0)
        assert summary.refresh_count == 2

    def test_pending_and_fresh(self):
        db = make_db()
        summary = IncrementalSummary(db, "x", dimension_names(3))
        assert summary.is_fresh()
        insert_batch(db, 1, 7)
        assert summary.pending_rows() == 7
        summary.refresh()
        assert summary.is_fresh()

    def test_null_rows_skipped_like_the_udf(self):
        db = make_db()
        db.insert_rows("x", [(1, 1.0, 2.0, 3.0), (2, None, 1.0, 1.0)])
        summary = IncrementalSummary(db, "x", dimension_names(3))
        stats = summary.refresh()
        assert stats.n == 1

    def test_diagonal_mode(self):
        db = make_db()
        data = insert_batch(db, 1, 30)
        summary = IncrementalSummary(
            db, "x", dimension_names(3), MatrixType.DIAGONAL
        )
        stats = summary.refresh()
        assert np.allclose(
            np.sort(np.diag(stats.Q)), np.sort((data * data).sum(axis=0))
        )
        assert stats.Q[0, 1] == 0.0

    def test_matches_udf_route(self):
        from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs

        db = make_db()
        insert_batch(db, 1, 40)
        register_nlq_udfs(db)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        incremental = summary.refresh()
        via_udf = compute_nlq_udf(db, "x", dimension_names(3))
        assert incremental.allclose(via_udf)

    @given(st.lists(st.integers(1, 25), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_property_any_batch_split_converges(self, batch_sizes):
        db = make_db()
        summary = IncrementalSummary(db, "x", dimension_names(3))
        blocks = []
        next_id = 1
        for size in batch_sizes:
            blocks.append(insert_batch(db, next_id, size, seed=next_id))
            next_id += size
            summary.refresh()
        whole = SummaryStatistics.from_matrix(np.vstack(blocks))
        assert summary.stats.allclose(whole, rtol=1e-9)


class TestCostAccounting:
    def test_refresh_charges_only_new_rows(self):
        db = make_db()
        insert_batch(db, 1, 100)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        db.reset_clock()
        summary.refresh()
        full_cost = db.simulated_time
        insert_batch(db, 101, 10)
        db.reset_clock()
        summary.refresh()
        delta_cost = db.simulated_time
        assert delta_cost < 0.2 * full_cost

    def test_noop_refresh_is_free(self):
        db = make_db()
        insert_batch(db, 1, 10)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        summary.refresh()
        db.reset_clock()
        summary.refresh()
        assert db.simulated_time == 0.0


class TestInvalidation:
    def test_shrunk_table_detected(self):
        db = make_db()
        insert_batch(db, 1, 10)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        summary.refresh()
        db.execute("DELETE FROM x WHERE i <= 5")
        with pytest.raises(ModelError, match="shrank|rebuilt"):
            summary.refresh()

    def test_reset(self):
        db = make_db()
        insert_batch(db, 1, 10)
        summary = IncrementalSummary(db, "x", dimension_names(3))
        summary.refresh()
        summary.reset()
        assert summary.stats.n == 0
        assert summary.pending_rows() == 10
        stats = summary.refresh()
        assert stats.n == 10
