"""Linear regression from the augmented summary Q′."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models.regression import LinearRegressionModel, stepwise_select
from repro.core.summary import AugmentedSummary, SummaryStatistics, MatrixType
from repro.errors import ModelError


@pytest.fixture
def xy():
    rng = np.random.default_rng(17)
    n, d = 250, 4
    X = rng.normal(10, 4, size=(n, d))
    beta = np.asarray([1.5, -2.0, 0.0, 3.25])
    y = 7.0 + X @ beta + rng.normal(scale=0.2, size=n)
    return X, y, beta


class TestFit:
    def test_matches_lstsq(self, xy):
        X, y, _beta = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        design = np.column_stack([np.ones(len(y)), X])
        reference, *_ = np.linalg.lstsq(design, y, rcond=None)
        assert model.intercept == pytest.approx(reference[0], rel=1e-6)
        assert np.allclose(model.coefficients, reference[1:], rtol=1e-6)

    def test_recovers_true_coefficients(self, xy):
        X, y, beta = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert np.allclose(model.coefficients, beta, atol=0.05)
        assert model.intercept == pytest.approx(7.0, abs=0.5)

    def test_beta_vector_layout(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert model.beta[0] == model.intercept
        assert np.array_equal(model.beta[1:], model.coefficients)
        assert model.d == 4

    def test_singular_design_rejected(self):
        rng = np.random.default_rng(0)
        x1 = rng.normal(size=50)
        X = np.column_stack([x1, 2 * x1])  # collinear
        y = x1 + rng.normal(size=50)
        with pytest.raises(ModelError, match="singular|collinear"):
            LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))

    def test_too_few_rows_rejected(self):
        X = np.random.default_rng(0).normal(size=(3, 4))
        y = np.zeros(3)
        with pytest.raises(ModelError, match="n > d"):
            LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))


class TestPrediction:
    def test_predict_matches_equation(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        manual = model.intercept + X @ model.coefficients
        assert np.allclose(model.predict(X), manual)

    def test_predict_single_point(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert model.predict(X[0]).shape == (1,)

    def test_dimension_check(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        with pytest.raises(ModelError, match="dimensions"):
            model.predict(np.zeros((3, 2)))


class TestStatistics:
    def test_sse_routes_agree(self, xy):
        """The paper's second-scan SSE equals the closed form from Q′."""
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert model.sse_from_summary() == pytest.approx(
            model.sse_by_scan(X, y), rel=1e-6
        )

    def test_r_squared_high_for_good_fit(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert 0.999 < model.r_squared() <= 1.0

    def test_r_squared_near_zero_for_noise(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 2))
        y = rng.normal(size=300)
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        assert model.r_squared() < 0.05

    def test_var_beta_matches_paper_formula(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        design = np.column_stack([np.ones(len(y)), X])
        sse = model.sse_by_scan(X, y)
        reference = np.linalg.inv(design.T @ design) * (
            sse / (len(y) - X.shape[1] - 1)
        )
        assert np.allclose(model.coefficient_covariance(), reference, rtol=1e-6)

    def test_standard_errors_and_t(self, xy):
        X, y, _ = xy
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        errors = model.standard_errors()
        assert errors.shape == (5,)
        assert np.all(errors > 0)
        t = model.t_statistics()
        # The zero coefficient (x3) must have a small |t|.
        assert abs(t[3]) < 3
        assert abs(t[1]) > 20

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_normal_equations_residual_orthogonality(self, seed):
        """β̂ from the summary satisfies Xᵀ(y − ŷ) ≈ 0 — the defining
        property of least squares."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        model = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
        residuals = y - model.predict(X)
        design = np.column_stack([np.ones(60), X])
        assert np.allclose(design.T @ residuals, 0.0, atol=1e-6)


class TestStepwise:
    def test_selects_informative_dimensions(self):
        rng = np.random.default_rng(8)
        n = 400
        informative = rng.normal(size=(n, 2))
        noise = rng.normal(size=(n, 3))
        X = np.column_stack([noise[:, :1], informative, noise[:, 1:]])
        y = 4 * informative[:, 0] - 3 * informative[:, 1] + rng.normal(
            scale=0.1, size=n
        )
        model, selected = stepwise_select(
            AugmentedSummary.from_xy(X, y), min_improvement=1e-3
        )
        assert selected == [1, 2]
        assert model.r_squared() > 0.99

    def test_max_dimensions_respected(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(200, 5))
        y = X @ np.ones(5) + rng.normal(size=200)
        _model, selected = stepwise_select(
            AugmentedSummary.from_xy(X, y), max_dimensions=2
        )
        assert len(selected) == 2

    def test_uses_no_extra_scans(self):
        """Step-wise selection works on the summary alone — it never
        touches X (enforced by handing it only the summary object)."""
        rng = np.random.default_rng(10)
        X = rng.normal(size=(100, 3))
        y = X[:, 0] + rng.normal(scale=0.1, size=100)
        augmented = AugmentedSummary.from_xy(X, y)
        model, selected = stepwise_select(augmented)
        assert 0 in selected
        assert model.r_squared() > 0.9
