"""Chaos suite: generated fault schedules over the parallel query path.

Hypothesis generates small :class:`FaultPlan` schedules — crashes,
delays, flaky-then-succeed faults, optionally combined with bounded
retries and per-task timeouts — and every workload asserts the same
contract:

* the run **terminates** (no hang, no leaked running task: the engine's
  ``active_tasks`` drains to zero), and
* it either returns a **bit-identical reference answer** or raises a
  **typed** :class:`~repro.errors.ReproError` with partition
  attribution — never an untyped error, never silently wrong rows, and
  (for DML) never a partially mutated table.

Two reference answers are legal: the vectorized fault-free result and
the row-path fault-free result.  They differ only in float summation
order (block-wise ``np.sum`` associates differently than a per-row
fold); a degraded statement reproduces the row path bit-for-bit.

``CHAOS_SEED`` (env) varies the dataset and the fault plan's
probability draws — CI runs three fixed seeds.  ``CHAOS_WORKERS``
(default 4) sets the engine's thread count.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.core.models.kmeans import KMeansModel
from repro.core.nlq_udf import register_nlq_udfs
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.faults import FaultPlan, FaultSpec
from repro.dbms.persistence import database_fingerprint
from repro.dbms.schema import dataset_schema, dimension_names
from repro.dbms.wal import open_durable
from repro.errors import (
    PartitionExecutionError,
    RecoveryError,
    ReproError,
    SimulatedCrash,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
CHAOS_WORKERS = int(os.environ.get("CHAOS_WORKERS", "4"))

N_ROWS, D = 80, 2
_GEN = ScoringSqlGenerator("x", ["x1", "x2"])

#: the workloads the acceptance criteria name: nLQ aggregation, GROUP BY
#: sub-models, and vectorized scoring
QUERIES = {
    "nlq_aggregation": f"SELECT nlq_tri({D}, x1, x2) FROM x",
    "groupby_submodels": (
        "SELECT i MOD 4, sum(x1), sum(y), count(*) FROM x "
        "GROUP BY i MOD 4 ORDER BY 1"
    ),
    "vectorized_scoring": _GEN.regression_inline_sql(2.0, [1.0, -2.0]),
}

_QUERY_SITES = [
    "partition.scan",
    "block.materialize",
    "udf.compute_batch",
    "engine.task",
]


def _fault_specs(sites):
    return st.lists(
        st.builds(
            FaultSpec,
            site=st.sampled_from(sites),
            kind=st.sampled_from(["error", "delay", "flaky"]),
            delay_seconds=st.sampled_from([0.0, 0.01, 0.25]),
            times=st.sampled_from([None, 1, 2]),
            skip_first=st.integers(min_value=0, max_value=2),
            partition=st.sampled_from([None, 0, 1, 2, 3]),
            probability=st.sampled_from([0.25, 0.6, 1.0]),
        ),
        min_size=0,
        max_size=3,
    )


_CHAOS_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    derandomize=True,  # per-seed variation comes from CHAOS_SEED
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(1000 + CHAOS_SEED)
    X = rng.normal(50.0, 10.0, size=(N_ROWS, D))
    y = 2.0 + X @ np.asarray([1.0, -2.0]) + rng.normal(0, 0.1, N_ROWS)
    columns = {"i": np.arange(1, N_ROWS + 1), "y": y}
    for index, name in enumerate(dimension_names(D)):
        columns[name] = X[:, index]
    return columns


def _fresh_db(columns, vectorized: bool = True) -> Database:
    db = Database(amps=4, executor_workers=CHAOS_WORKERS)
    db.create_table("x", dataset_schema(D, with_y=True))
    db.load_columns("x", columns)
    register_nlq_udfs(db)
    register_scoring_udfs(db)
    db.vectorized_select = vectorized
    return db


@pytest.fixture(scope="module")
def baselines(dataset):
    """Fault-free reference rows per query: (vectorized, row-path)."""
    out = {}
    for name, sql in QUERIES.items():
        with _fresh_db(dataset) as db:
            vectorized = db.execute(sql).rows
        with _fresh_db(dataset, vectorized=False) as db:
            # Permanently failing the block path degrades aggregation to
            # the row path too, so this run is row-path end to end.
            db.faults = FaultPlan().fail("block.materialize")
            row = db.execute(sql).rows
        out[name] = (vectorized, row)
    return out


def _assert_drained(db: Database) -> None:
    """No running task may outlive the statement (abandoned timed-out
    tasks are allowed to finish on the orphaned pool, but must do so)."""
    engine = db._executor.engine
    deadline = time.perf_counter() + 10.0
    while engine.active_tasks and time.perf_counter() < deadline:
        time.sleep(0.005)
    assert engine.active_tasks == 0


@pytest.mark.parametrize("query_name", sorted(QUERIES))
@given(
    specs=_fault_specs(_QUERY_SITES),
    retries=st.sampled_from([0, 1, 2]),
    timeout=st.sampled_from([None, 0.1]),
)
# Pinned schedules: generated examples skew tame, so each interesting
# regime is guaranteed at least once — degradation (block path dies),
# fatal task error, flaky healed by retries, flaky exhausting the retry
# budget, batched-UDF kernel failure, and delay-past-timeout.
@example(specs=[FaultSpec("block.materialize")], retries=0, timeout=None)
@example(specs=[FaultSpec("engine.task", partition=1)], retries=0, timeout=None)
@example(
    specs=[FaultSpec("engine.task", kind="flaky", times=1)],
    retries=2,
    timeout=None,
)
@example(
    specs=[FaultSpec("engine.task", kind="flaky", times=3, partition=2)],
    retries=1,
    timeout=None,
)
@example(specs=[FaultSpec("udf.compute_batch")], retries=0, timeout=None)
@example(
    specs=[FaultSpec("engine.task", kind="delay", delay_seconds=0.25)],
    retries=0,
    timeout=0.1,
)
@example(
    specs=[
        FaultSpec("block.materialize", kind="flaky", times=2),
        FaultSpec("partition.scan", partition=3),
    ],
    retries=0,
    timeout=None,
)
@settings(**_CHAOS_SETTINGS)
def test_query_chaos(query_name, baselines, dataset, specs, retries, timeout):
    sql = QUERIES[query_name]
    db = _fresh_db(dataset)
    try:
        db.faults = FaultPlan(specs, seed=CHAOS_SEED)
        db.task_retries = retries
        db.task_timeout_seconds = timeout
        rows_before = db.table("x").row_count
        try:
            result = db.execute(sql)
        except ReproError as error:
            # A failed statement must be typed — and a parallel failure
            # must attribute at least one partition.
            if isinstance(error, PartitionExecutionError):
                assert error.partitions
                assert error.first_error is not None
        else:
            vectorized, row = baselines[query_name]
            assert result.rows == vectorized or result.rows == row
        _assert_drained(db)
        # A SELECT never mutates the table, faulted or not.
        assert db.table("x").row_count == rows_before
        # The engine must be reusable after any outcome: a fault-free
        # statement on the same database returns the reference answer.
        db.faults = None
        db.task_timeout_seconds = None
        vectorized, row = baselines[query_name]
        assert db.execute(sql).rows == vectorized
    finally:
        db.close()


_FUSED_SITES = [
    "udf.fused_iter",
    "block.materialize",
    "engine.task",
]

_FUSED_K = 3


def _fit_fused(db: Database) -> KMeansModel:
    return KMeansModel.fit_dbms(
        db, "x", dimension_names(D), _FUSED_K, seed=CHAOS_SEED
    )


@pytest.fixture(scope="module")
def fused_baselines(dataset):
    """Fault-free fused K-means fits: (vectorized, row-path)."""
    with _fresh_db(dataset) as db:
        vectorized = _fit_fused(db)
    with _fresh_db(dataset) as db:
        # A permanent error at the fused site degrades every iteration's
        # statement to the row path, so this fit is row-path end to end.
        db.faults = FaultPlan().fail("udf.fused_iter")
        row = _fit_fused(db)
    return vectorized, row


def _models_identical(model: KMeansModel, reference: KMeansModel) -> bool:
    return (
        np.array_equal(model.centroids, reference.centroids)
        and np.array_equal(model.radii, reference.radii)
        and np.array_equal(model.weights, reference.weights)
    )


@given(
    specs=_fault_specs(_FUSED_SITES),
    retries=st.sampled_from([0, 1, 2]),
    timeout=st.sampled_from([None, 0.1]),
)
# Pinned regimes for the fused iteration UDF: a permanent error at the
# fused site (every statement degrades to the row path), a one-shot
# error (one degraded iteration inside an otherwise vectorized fit), a
# delay at the fused site, a fatal engine error, and delay-past-timeout.
@example(specs=[FaultSpec("udf.fused_iter")], retries=0, timeout=None)
@example(specs=[FaultSpec("udf.fused_iter", times=1)], retries=0, timeout=None)
@example(
    specs=[FaultSpec("udf.fused_iter", kind="delay", delay_seconds=0.01)],
    retries=0,
    timeout=None,
)
@example(
    specs=[FaultSpec("engine.task", partition=2, times=1)],
    retries=0,
    timeout=None,
)
@example(
    specs=[
        FaultSpec("udf.fused_iter", kind="delay", delay_seconds=0.25),
    ],
    retries=0,
    timeout=0.1,
)
@settings(**_CHAOS_SETTINGS)
def test_fused_kmeans_chaos(fused_baselines, dataset, specs, retries, timeout):
    """A fused K-means fit under faults: bit-identical or typed error.

    Every armed run must terminate with either a model identical to a
    fault-free fit (vectorized or row-path — a degraded iteration
    replays the row-path arithmetic exactly) or a typed
    :class:`ReproError`; the table is never mutated and the engine is
    reusable afterwards.
    """
    db = _fresh_db(dataset)
    try:
        db.faults = FaultPlan(specs, seed=CHAOS_SEED)
        db.task_retries = retries
        db.task_timeout_seconds = timeout
        rows_before = db.table("x").row_count
        try:
            model = _fit_fused(db)
        except ReproError as error:
            if isinstance(error, PartitionExecutionError):
                assert error.partitions
                assert error.first_error is not None
        else:
            assert any(
                _models_identical(model, reference)
                for reference in fused_baselines
            )
        _assert_drained(db)
        # Fitting reads the table; faulted or not, it must never mutate.
        assert db.table("x").row_count == rows_before
        db.faults = None
        db.task_timeout_seconds = None
        clean = _fit_fused(db)
        assert _models_identical(clean, fused_baselines[0])
    finally:
        db.close()


@given(specs=_fault_specs(["insert.flush"]))
@example(specs=[FaultSpec("insert.flush")])
@example(specs=[FaultSpec("insert.flush", partition=2)])
@example(specs=[FaultSpec("insert.flush", kind="flaky", partition=0)])
@example(specs=[FaultSpec("insert.flush", kind="delay", delay_seconds=0.01)])
@settings(**_CHAOS_SETTINGS)
def test_insert_many_chaos(specs):
    db = Database(amps=4, executor_workers=CHAOS_WORKERS)
    try:
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, x FLOAT)")
        db.faults = FaultPlan(specs, seed=CHAOS_SEED)
        table = db.table("t")
        rows = [(i, float(i)) for i in range(60)]
        try:
            inserted = table.insert_many(rows)
        except ReproError:
            # Flush failure is all-or-nothing: no partial batch, no
            # partition left ahead of the others.
            assert table.row_count == 0
            assert all(p.row_count == 0 for p in table.partitions)
        else:
            assert inserted == 60
            assert table.row_count == 60
        # Disarm and retry: a rolled-back batch must have released its
        # primary keys, so the identical rows insert cleanly.
        db.faults = None
        if table.row_count == 0:
            assert table.insert_many(rows) == 60
        assert sorted(r[0] for r in table.rows()) == list(range(60))
    finally:
        db.close()


# --------------------------------------------------- shared-scan batches
#: a consolidated batch: the nLQ summary, GROUP BY sub-models, and a
#: filtered aggregate all ride ONE scan of x (the WHERE statement runs
#: as a late filter inside it)
_BATCH = [
    f"SELECT nlq_tri({D}, x1, x2) FROM x",
    (
        "SELECT i MOD 4, sum(x1), sum(y), count(*) FROM x "
        "GROUP BY i MOD 4 ORDER BY 1"
    ),
    "SELECT sum(x1) FROM x WHERE x2 > 50.0",
]

_BATCH_SITES = [
    "partition.scan",
    "block.materialize",
    "engine.task",
]


@pytest.fixture(scope="module")
def batch_baselines(dataset):
    """Fault-free per-statement reference rows: (vectorized, row-path).

    A batch whose vector attempt fails degrades EVERY statement to the
    shared-scan row path, which replays the serial row-path arithmetic
    bit for bit — so each statement's faulted result must equal one of
    these two serial baselines.
    """
    with _fresh_db(dataset) as db:
        vectorized = [db.execute(sql).rows for sql in _BATCH]
    with _fresh_db(dataset, vectorized=False) as db:
        db.faults = FaultPlan().fail("block.materialize")
        row = [db.execute(sql).rows for sql in _BATCH]
    return vectorized, row


@given(
    specs=_fault_specs(_BATCH_SITES),
    retries=st.sampled_from([0, 1, 2]),
    timeout=st.sampled_from([None, 0.1]),
)
# Pinned regimes: batch-level degradation (the block path dies and all
# statements fall back to the shared-scan row path together), a fatal
# task error with partition attribution, flaky healed by retries, a
# partition-scan fault inside the fused fan-out, and delay-past-timeout.
@example(specs=[FaultSpec("block.materialize")], retries=0, timeout=None)
@example(specs=[FaultSpec("engine.task", partition=1)], retries=0, timeout=None)
@example(
    specs=[FaultSpec("engine.task", kind="flaky", times=1)],
    retries=2,
    timeout=None,
)
@example(specs=[FaultSpec("partition.scan", partition=3)], retries=0, timeout=None)
@example(
    specs=[
        FaultSpec("block.materialize", kind="flaky", times=2),
        FaultSpec("partition.scan", partition=2),
    ],
    retries=1,
    timeout=None,
)
@example(
    specs=[FaultSpec("engine.task", kind="delay", delay_seconds=0.25)],
    retries=0,
    timeout=0.1,
)
@settings(**_CHAOS_SETTINGS)
def test_batch_chaos(batch_baselines, dataset, specs, retries, timeout):
    """A consolidated batch under faults: every statement bit-identical
    to a serial baseline, or one typed error for the whole batch.

    The fan-in merge must never mix a faulted partial into a result: a
    statement either gets all partitions' accumulators (merged in
    partition order) or the batch raises.  The table is never mutated
    and the engine stays reusable.
    """
    db = _fresh_db(dataset)
    try:
        db.faults = FaultPlan(specs, seed=CHAOS_SEED)
        db.task_retries = retries
        db.task_timeout_seconds = timeout
        rows_before = db.table("x").row_count
        try:
            results = db.execute_batch(list(_BATCH))
        except ReproError as error:
            if isinstance(error, PartitionExecutionError):
                assert error.partitions
                assert error.first_error is not None
        else:
            vectorized, row = batch_baselines
            for result, vec_ref, row_ref in zip(results, vectorized, row):
                assert result.rows == vec_ref or result.rows == row_ref
        _assert_drained(db)
        # A batch of SELECTs never mutates the table, faulted or not.
        assert db.table("x").row_count == rows_before
        # Disarm and re-run: the engine must be reusable, the rewrite
        # must still consolidate, and the clean batch must reproduce
        # the vectorized serial baseline exactly.
        db.faults = None
        db.task_timeout_seconds = None
        clean = db.execute_batch(list(_BATCH))
        assert db._executor.last_batch_decision.consolidated
        assert [result.rows for result in clean] == batch_baselines[0]
    finally:
        db.close()


# ------------------------------------------------ factorized star joins
#: the factorized regime: a summary aggregate and one fused k-means
#: iteration, each answered from per-base-table partials over a
#: sales → stores star (the join is never materialized)
_STAR_SUMMARY_SQL = (
    "SELECT nlq_tri(2, sales.amount, stores.sx) "
    "FROM sales JOIN stores ON sales.sid = stores.sid"
)
_STAR_FUSED_SQL = (
    "SELECT kmeansiter(2, sales.amount, stores.sx) "
    "FROM sales JOIN stores ON sales.sid = stores.sid"
)

_STAR_SITES = [
    "partition.scan",
    "udf.fused_iter",
    "engine.task",
]

_STAR_FACT_N, _STAR_DIM_N = 90, 12


@pytest.fixture(scope="module")
def star_dataset():
    rng = np.random.default_rng(2000 + CHAOS_SEED)
    return {
        "stores": {
            "sid": np.arange(1, _STAR_DIM_N + 1),
            "sx": rng.normal(0.0, 5.0, _STAR_DIM_N),
        },
        "sales": {
            "oid": np.arange(1, _STAR_FACT_N + 1),
            "sid": rng.integers(1, _STAR_DIM_N + 1, _STAR_FACT_N),
            "amount": rng.normal(100.0, 20.0, _STAR_FACT_N),
        },
    }


def _fresh_star_db(star_columns) -> Database:
    from repro.core.fused import register_fused_udfs
    from repro.dbms.schema import Column, TableSchema
    from repro.dbms.types import SqlType

    db = Database(amps=4, executor_workers=CHAOS_WORKERS)
    db.create_table(
        "stores",
        TableSchema.build(
            [
                Column("sid", SqlType.INTEGER, nullable=False),
                ("sx", SqlType.FLOAT),
            ],
            primary_key="sid",
        ),
    )
    db.create_table(
        "sales",
        TableSchema.build(
            [
                Column("oid", SqlType.INTEGER, nullable=False),
                Column("sid", SqlType.INTEGER),
                ("amount", SqlType.FLOAT),
            ],
            primary_key="oid",
        ),
    )
    db.load_columns("stores", star_columns["stores"])
    db.load_columns("sales", star_columns["sales"])
    register_nlq_udfs(db)
    udf = register_fused_udfs(db)["kmeansiter"]
    udf.set_centroids(np.array([[80.0, -4.0], [120.0, 4.0]]))
    return db


def _run_star(db: Database) -> "tuple":
    """Both factorized workloads; re-arm the fused model each time (a
    fused scan consumes the installed centroids)."""
    summary = db.execute(_STAR_SUMMARY_SQL).scalar()
    db.catalog.aggregate_udf("kmeansiter").set_centroids(
        np.array([[80.0, -4.0], [120.0, 4.0]])
    )
    fused = db.execute(_STAR_FUSED_SQL).scalar()
    return summary, fused


@pytest.fixture(scope="module")
def star_baselines(star_dataset):
    """Fault-free factorized payloads (both workloads factorize)."""
    with _fresh_star_db(star_dataset) as db:
        payloads = _run_star(db)
        assert db.last_factorize_decision.factorized
    return payloads


@given(
    specs=_fault_specs(_STAR_SITES),
    retries=st.sampled_from([0, 1, 2]),
    timeout=st.sampled_from([None, 0.1]),
)
# Pinned regimes: a fatal partition-scan error inside the factorized
# fan-out, the same healed by retries, a fused-site kernel failure, a
# dimension-side partition fault, and delay-past-timeout.
@example(specs=[FaultSpec("partition.scan", partition=1)], retries=0, timeout=None)
@example(
    specs=[FaultSpec("partition.scan", kind="flaky", times=1)],
    retries=2,
    timeout=None,
)
@example(specs=[FaultSpec("udf.fused_iter")], retries=0, timeout=None)
@example(
    specs=[FaultSpec("partition.scan", partition=0, times=1)],
    retries=0,
    timeout=None,
)
@example(
    specs=[FaultSpec("engine.task", kind="delay", delay_seconds=0.25)],
    retries=0,
    timeout=0.1,
)
@settings(**_CHAOS_SETTINGS)
def test_factorized_star_chaos(star_baselines, star_dataset, specs, retries, timeout):
    """Factorized star aggregates under faults: bit-identical or typed.

    The factorized route merges per-partition partials in partition
    order, so a healed (retried/flaky) run must reproduce the fault-free
    payload bit for bit; an unhealed fault must raise a typed
    :class:`ReproError` with partition attribution — never degrade to a
    silently different answer and never mutate any base table.
    """
    db = _fresh_star_db(star_dataset)
    try:
        db.faults = FaultPlan(specs, seed=CHAOS_SEED)
        db.task_retries = retries
        db.task_timeout_seconds = timeout
        before = (db.table("sales").row_count, db.table("stores").row_count)
        try:
            payloads = _run_star(db)
        except ReproError as error:
            if isinstance(error, PartitionExecutionError):
                assert error.partitions
                assert error.first_error is not None
        else:
            assert payloads == star_baselines
        _assert_drained(db)
        # Reads only: neither the fact nor the dimension table mutates.
        after = (db.table("sales").row_count, db.table("stores").row_count)
        assert after == before
        # Disarm and re-run: the engine is reusable and the factorized
        # route reproduces the fault-free payloads exactly.
        db.faults = None
        db.task_timeout_seconds = None
        assert _run_star(db) == star_baselines
        assert db.last_factorize_decision.factorized
    finally:
        db.close()


# ------------------------------------------------- crash-recovery regime
#: the durability fault sites a SimulatedCrash can die at
_DURABLE_SITES = ["wal.append", "wal.fsync", "checkpoint.write"]


def _crash_plan(site, at_record, torn_bytes):
    return FaultPlan(
        [
            FaultSpec(
                site=site,
                kind="error",
                error=SimulatedCrash(torn_bytes=torn_bytes),
                times=1,
                skip_first=at_record,
            )
        ],
        seed=CHAOS_SEED,
    )


def _durable_workload_steps(rng):
    """A deterministic sequence of committed mutations: DDL, row
    inserts, SQL DML (UPDATE/DELETE), a bulk load, and a view."""
    xs = rng.normal(size=8).round(6)
    return [
        lambda db: db.execute(
            "CREATE TABLE d (i INTEGER PRIMARY KEY, x FLOAT, s VARCHAR)"
        ),
        lambda db: db.insert_rows(
            "d", [(i, float(xs[i]), f"r{i}") for i in range(3)]
        ),
        lambda db: db.execute(
            "INSERT INTO d VALUES (3, 0.25, NULL), (4, -1.5, '')"
        ),
        lambda db: db.execute("UPDATE d SET x = x + 1 WHERE i < 3"),
        lambda db: db.execute("CREATE TABLE b (i INTEGER, x FLOAT)"),
        lambda db: db.load_columns(
            "b", {"i": np.arange(12), "x": xs[:4].tolist() * 3}
        ),
        lambda db: db.execute("DELETE FROM d WHERE i = 1"),
        lambda db: db.execute("CREATE VIEW dv AS SELECT i, x FROM d"),
        lambda db: db.insert_rows("d", [(9, 9.0, "nine")]),
    ]


@given(
    site=st.sampled_from(_DURABLE_SITES),
    at_record=st.integers(min_value=0, max_value=8),
    torn_bytes=st.sampled_from([0, 1, 9, 40]),
    fsync_mode=st.sampled_from(["always", "batch", "off"]),
    wal_batch=st.sampled_from([1, 2, 8]),
    checkpoint_every=st.sampled_from([None, 3]),
)
@example(
    site="wal.append", at_record=0, torn_bytes=0,
    fsync_mode="always", wal_batch=1, checkpoint_every=None,
)
@example(
    site="wal.append", at_record=4, torn_bytes=9,
    fsync_mode="always", wal_batch=1, checkpoint_every=None,
)
@example(
    site="wal.append", at_record=5, torn_bytes=40,
    fsync_mode="batch", wal_batch=2, checkpoint_every=3,
)
@example(
    site="wal.fsync", at_record=2, torn_bytes=0,
    fsync_mode="batch", wal_batch=1, checkpoint_every=None,
)
@example(
    site="checkpoint.write", at_record=0, torn_bytes=0,
    fsync_mode="always", wal_batch=1, checkpoint_every=3,
)
@example(
    site="checkpoint.write", at_record=1, torn_bytes=7,
    fsync_mode="off", wal_batch=8, checkpoint_every=3,
)
@settings(**_CHAOS_SETTINGS)
def test_crash_recovery_chaos(
    tmp_path_factory, site, at_record, torn_bytes,
    fsync_mode, wal_batch, checkpoint_every,
):
    """The committed-prefix invariant under seeded crash schedules.

    A durable session runs a deterministic write workload with a
    :class:`SimulatedCrash` armed at a chosen durability fault site and
    record ordinal, across fsync modes, batch thresholds, and automatic
    checkpoints.  Whenever and however the session dies, reopening the
    directory must recover a state content-identical
    (:func:`database_fingerprint`) to *some committed prefix* of the
    write history — never a torn row, never a half-applied UPDATE — and
    a session that never crashed must recover its *final* state.
    """
    root = tmp_path_factory.mktemp("crashchaos") / "d"
    rng = np.random.default_rng(2000 + CHAOS_SEED)
    db = open_durable(
        root,
        fsync_mode=fsync_mode,
        wal_batch_records=wal_batch,
        checkpoint_every_records=checkpoint_every,
        amps=4,
        executor_workers=CHAOS_WORKERS,
    )
    prefixes = [database_fingerprint(db)]
    db.faults = _crash_plan(site, at_record, torn_bytes)
    crashed = False
    try:
        for step in _durable_workload_steps(rng):
            step(db)
            prefixes.append(database_fingerprint(db))
    except SimulatedCrash:
        crashed = True
        assert db.crashed
        # The dying statement's mutations were applied (and possibly
        # durably logged — an auto-checkpoint crash fires *after* its
        # triggering record was committed) before the session died, so
        # the memory state at death is the newest legal prefix.
        prefixes.append(database_fingerprint(db))
        # The poisoned session rejects further work with a typed error.
        with pytest.raises(RecoveryError):
            db.execute("SELECT 1")
    finally:
        db.close()

    recovered = open_durable(root, executor_workers=CHAOS_WORKERS)
    try:
        fingerprint = database_fingerprint(recovered)
        assert recovered.durability.recoveries == 1
        if crashed:
            assert fingerprint in prefixes
            if fsync_mode == "always" and site == "wal.append":
                # Zero loss window: every commit was fsynced, and only
                # the dying statement's record (prefixes[-1], applied in
                # memory but never logged) is lost.
                assert fingerprint == prefixes[-2]
        else:
            # No crash fired (e.g. a site this schedule never visits):
            # a cleanly closed directory recovers its final state.
            assert fingerprint == prefixes[-1]
        # The recovered session is fully live: it accepts new commits
        # and they survive another reopen.
        recovered.insert_rows("d", [(77, 7.7, "post")]) if (
            recovered.catalog.has_table("d")
        ) else recovered.execute("CREATE TABLE d2 (i INTEGER)")
        final = database_fingerprint(recovered)
    finally:
        recovered.close()
    third = open_durable(root)
    try:
        assert database_fingerprint(third) == final
    finally:
        third.close()


def test_real_kill9_mid_insert_many(tmp_path):
    """A real process death (``os._exit(9)``, no cleanup, no atexit)
    in the middle of a durable write workload.

    The child applies single-row commits and is killed from a mutation
    listener wedged *before* the WAL listener — rows are in memory but
    the current record never reaches the log, the torn worst case.  The
    parent then recovers the directory and asserts the committed-prefix
    invariant on real on-disk state: the surviving rows are exactly
    ``0..m-1`` for some ``m <= kill_at``, bit-correct, PK intact.
    """
    import subprocess
    import sys

    root = tmp_path / "killed"
    kill_at = 5
    child = f"""
import os
from repro.dbms import open_durable

db = open_durable({str(root)!r}, fsync_mode="always")
db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, x FLOAT)")

count = 0
def killer(op, name, payload):
    global count
    if op == "insert":
        count += 1
        if count == {kill_at}:
            os._exit(9)  # no flush, no close, no atexit

# Ahead of the WAL listener: the fatal insert reaches memory but not
# the log -- the torn window a real crash hits.
db.catalog.mutation_listeners.insert(0, killer)
for i in range(20):
    db.insert_rows("t", [(i, i * 0.5)])
raise SystemExit("unreachable: the killer should have fired")
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    result = subprocess.run(
        [sys.executable, "-c", child],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 9, result.stderr

    recovered = open_durable(root)
    try:
        assert recovered.durability.recoveries == 1
        rows = sorted(recovered.table("t").rows())
        m = len(rows)
        # fsync="always" lost at most the record the kill interrupted.
        assert kill_at - 1 <= m <= kill_at
        assert rows == [(i, i * 0.5) for i in range(m)]
        # The primary key survived recovery: a duplicate still rejects.
        from repro.errors import ConstraintViolation

        if m:
            with pytest.raises(ConstraintViolation):
                recovered.insert_rows("t", [(0, 0.0)])
    finally:
        recovered.close()
