"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nlq_udf import register_nlq_udfs
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names


@pytest.fixture
def db() -> Database:
    """A small-parallelism database (4 AMPs keeps partitions non-trivial
    without hiding per-partition bugs behind a single chunk)."""
    return Database(amps=4)


@pytest.fixture
def loaded_db(db: Database) -> tuple[Database, np.ndarray, np.ndarray]:
    """A database with table ``x(i, x1..x4, y)`` holding 200 seeded rows.

    Returns (db, X matrix, y vector); the nLQ and scoring UDFs are
    registered.
    """
    rng = np.random.default_rng(7)
    n, d = 200, 4
    X = rng.normal(50.0, 10.0, size=(n, d))
    y = 2.0 + X @ np.asarray([1.0, -2.0, 0.5, 3.0]) + rng.normal(0, 0.1, n)
    db.create_table("x", dataset_schema(d, with_y=True))
    columns = {"i": np.arange(1, n + 1), "y": y}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    register_nlq_udfs(db)
    register_scoring_udfs(db)
    return db, X, y
