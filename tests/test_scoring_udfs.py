"""The four scalar scoring UDFs in isolation."""

import pytest

from repro.core.scoring.udfs import (
    ClusterScoreUdf,
    FaScoreUdf,
    KMeansDistanceUdf,
    LinearRegScoreUdf,
    register_scoring_udfs,
)
from repro.dbms.database import Database
from repro.errors import UdfArgumentError


class TestLinearRegScore:
    def test_dot_product(self):
        udf = LinearRegScoreUdf()
        # x = (1, 2); beta0 = 10, beta = (3, 4) → 10 + 3 + 8 = 21
        assert udf(1.0, 2.0, 10.0, 3.0, 4.0) == 21.0

    def test_one_dimension(self):
        assert LinearRegScoreUdf()(2.0, 1.0, 3.0) == 7.0

    def test_null_in_yields_null(self):
        assert LinearRegScoreUdf()(None, 2.0, 0.0, 1.0, 1.0) is None

    def test_even_arity_rejected(self):
        with pytest.raises(UdfArgumentError, match="odd"):
            LinearRegScoreUdf()(1.0, 2.0, 3.0, 4.0)

    def test_non_numeric_rejected(self):
        with pytest.raises(UdfArgumentError, match="numeric"):
            LinearRegScoreUdf()("x", 1.0, 2.0)

    def test_cost_profile(self):
        profile = LinearRegScoreUdf().cost_per_row(65)
        assert profile.list_params == 65
        assert profile.arith_ops == 32


class TestFaScore:
    def test_component_projection(self):
        udf = FaScoreUdf()
        # (x - mu) . lambda = (1-0)*2 + (3-1)*(-1) = 0
        assert udf(1.0, 3.0, 0.0, 1.0, 2.0, -1.0) == 0.0

    def test_arity_multiple_of_three(self):
        with pytest.raises(UdfArgumentError, match="multiple of 3"):
            FaScoreUdf()(1.0, 2.0, 3.0, 4.0)

    def test_null(self):
        assert FaScoreUdf()(None, 0.0, 0.0) is None


class TestKMeansDistance:
    def test_squared_euclidean(self):
        assert KMeansDistanceUdf()(0.0, 0.0, 3.0, 4.0) == 25.0

    def test_zero_distance(self):
        assert KMeansDistanceUdf()(1.0, 2.0, 1.0, 2.0) == 0.0

    def test_even_arity_required(self):
        with pytest.raises(UdfArgumentError, match="even"):
            KMeansDistanceUdf()(1.0, 2.0, 3.0)

    def test_null(self):
        assert KMeansDistanceUdf()(None, 1.0) is None


class TestClusterScore:
    def test_argmin_one_based(self):
        assert ClusterScoreUdf()(5.0, 1.0, 3.0) == 2

    def test_ties_prefer_lowest_subscript(self):
        assert ClusterScoreUdf()(2.0, 2.0) == 1

    def test_single_distance(self):
        assert ClusterScoreUdf()(9.0) == 1

    def test_empty_rejected(self):
        with pytest.raises(UdfArgumentError):
            ClusterScoreUdf()()

    def test_nan_rejected(self):
        with pytest.raises(UdfArgumentError, match="NaN"):
            ClusterScoreUdf()(1.0, float("nan"))

    def test_null(self):
        assert ClusterScoreUdf()(1.0, None) is None


class TestRegistration:
    def test_all_registered(self):
        db = Database(amps=2)
        udfs = register_scoring_udfs(db)
        assert set(udfs) == {
            "linearregscore", "fascore", "kmeansdistance", "clusterscore",
            "classifyscore", "nbscore",
        }

    def test_composed_call_in_sql(self):
        """clusterscore over kmeansdistance in one SELECT — argument
        evaluation happens before the outer call, so the 'no nested
        UDF calls' rule is not violated."""
        db = Database(amps=2)
        register_scoring_udfs(db)
        db.execute("CREATE TABLE p (i INTEGER PRIMARY KEY, a FLOAT, b FLOAT)")
        db.execute("INSERT INTO p VALUES (1, 0.0, 0.0), (2, 10.0, 10.0)")
        result = db.execute(
            "SELECT i, clusterscore("
            "kmeansdistance(a, b, 0.0, 0.0), "
            "kmeansdistance(a, b, 10.0, 10.0)) AS j FROM p ORDER BY i"
        )
        assert result.rows == [(1, 1), (2, 2)]
