"""The external route: ODBC export simulator + the C++-style flat-file tool."""

import numpy as np
import pytest

from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import ExportError
from repro.external.cpp_tool import CppAnalysisTool
from repro.external.workstation import (
    WorkstationCostModel,
    model_build_seconds,
)
from repro.odbc.export import OdbcExporter
from repro.errors import ModelError


@pytest.fixture
def export_db(tmp_path):
    rng = np.random.default_rng(61)
    n, d = 80, 3
    X = rng.normal(1.0, 2.0, size=(n, d))
    db = Database(amps=3)
    db.create_table("x", dataset_schema(d), row_scale=50.0)
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    return db, X, tmp_path


class TestOdbcExport:
    def test_writes_csv_with_header(self, export_db):
        db, X, tmp_path = export_db
        report = OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        lines = (tmp_path / "x.csv").read_text().strip().splitlines()
        assert lines[0] == "i,x1,x2,x3"
        assert len(lines) == 1 + X.shape[0]
        assert report.physical_rows == X.shape[0]

    def test_column_subset(self, export_db):
        db, _X, tmp_path = export_db
        report = OdbcExporter().export_table(
            db, "x", tmp_path / "sub.csv", columns=["x1", "x3"]
        )
        header = (tmp_path / "sub.csv").read_text().splitlines()[0]
        assert header == "x1,x3"
        assert report.columns == 2

    def test_nominal_rows_costed(self, export_db):
        db, X, tmp_path = export_db
        report = OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        assert report.nominal_rows == X.shape[0] * 50.0
        per_value = OdbcExporter().params.per_value
        assert report.simulated_seconds > report.nominal_rows * 3 * per_value

    def test_export_seconds_linear(self):
        exporter = OdbcExporter()
        small = exporter.export_seconds(1000, 8)
        large = exporter.export_seconds(10000, 8)
        fixed = exporter.params.per_export
        assert large - fixed == pytest.approx(10 * (small - fixed))

    def test_null_serialized_empty(self, export_db):
        db, _X, tmp_path = export_db
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, NULL)")
        OdbcExporter().export_table(db, "t", tmp_path / "t.csv")
        assert (tmp_path / "t.csv").read_text().splitlines()[1] == "1,"

    def test_bad_path_raises(self, export_db):
        db, _X, tmp_path = export_db
        target = tmp_path / "x.csv"
        target.write_text("occupied")
        with pytest.raises(ExportError):
            OdbcExporter().export_table(db, "x", target / "nested.csv")


class TestCppTool:
    def test_scan_matches_db_summary(self, export_db):
        db, X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        report = CppAnalysisTool().compute_nlq(tmp_path / "x.csv")
        reference = SummaryStatistics.from_matrix(X)
        assert report.stats.allclose(reference, rtol=1e-9)
        assert report.physical_rows == X.shape[0]

    def test_chunked_scan_equals_single_chunk(self, export_db):
        db, _X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        chunked = CppAnalysisTool(chunk_rows=7).compute_nlq(tmp_path / "x.csv")
        whole = CppAnalysisTool(chunk_rows=10_000).compute_nlq(tmp_path / "x.csv")
        assert chunked.stats.allclose(whole.stats, rtol=1e-12)

    def test_column_selection(self, export_db):
        db, X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        report = CppAnalysisTool().compute_nlq(
            tmp_path / "x.csv", columns=["x2"]
        )
        assert report.stats.d == 1
        assert report.stats.L[0] == pytest.approx(X[:, 1].sum())

    def test_id_column_skipped_by_default(self, export_db):
        db, _X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        report = CppAnalysisTool().compute_nlq(tmp_path / "x.csv")
        assert report.stats.d == 3

    def test_diagonal_mode(self, export_db):
        db, X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        report = CppAnalysisTool().compute_nlq(
            tmp_path / "x.csv", matrix_type=MatrixType.DIAGONAL
        )
        assert report.stats.Q[0, 1] == 0.0

    def test_missing_column(self, export_db):
        db, _X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        with pytest.raises(ExportError, match="lacks columns"):
            CppAnalysisTool().compute_nlq(tmp_path / "x.csv", columns=["zz"])

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,notanumber\n")
        with pytest.raises(ExportError, match="malformed"):
            CppAnalysisTool().compute_nlq(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ExportError, match="empty"):
            CppAnalysisTool().compute_nlq(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExportError):
            CppAnalysisTool().compute_nlq(tmp_path / "nope.csv")

    def test_row_scale_in_timing(self, export_db):
        db, _X, tmp_path = export_db
        OdbcExporter().export_table(db, "x", tmp_path / "x.csv")
        tool = CppAnalysisTool()
        plain = tool.compute_nlq(tmp_path / "x.csv", row_scale=1.0)
        scaled = tool.compute_nlq(tmp_path / "x.csv", row_scale=100.0)
        startup = tool.workstation.params.startup
        assert scaled.simulated_seconds - startup == pytest.approx(
            100 * (plain.simulated_seconds - startup)
        )


class TestWorkstationModel:
    def test_scan_seconds_grow_with_type(self):
        model = WorkstationCostModel()
        diag = model.nlq_scan_seconds(10_000, 16, MatrixType.DIAGONAL)
        tri = model.nlq_scan_seconds(10_000, 16, MatrixType.TRIANGULAR)
        full = model.nlq_scan_seconds(10_000, 16, MatrixType.FULL)
        assert diag < tri < full

    def test_single_threaded_slower_than_server_scan(self):
        """The headline comparison: the workstation has no 20-way
        parallelism, so at equal n it loses to the in-DBMS UDF."""
        from repro.dbms.cost import CostModel

        n, d = 500_000, 32
        workstation = WorkstationCostModel().nlq_scan_seconds(n, d)
        server = CostModel()
        server.charge_scan(n, d + 1)
        server.charge_udf_rows(
            n, list_params=d + 1, arith_ops=3 * d + d * (d + 1) // 2
        )
        assert workstation > 3 * server.clock.elapsed

    def test_model_build_techniques(self):
        for technique in (
            "correlation", "regression", "pca", "clustering", "factor_analysis",
        ):
            assert model_build_seconds(technique, 32) > 0

    def test_model_build_unknown_technique(self):
        with pytest.raises(ModelError, match="unknown technique"):
            model_build_seconds("svm", 32)

    def test_pca_cubic_growth(self):
        small = model_build_seconds("pca", 16)
        large = model_build_seconds("pca", 64)
        assert large > small
