"""SQL type system: names, coercion, NULL handling."""

import math

import pytest

from repro.dbms.types import (
    SqlType,
    coerce_value,
    common_numeric_type,
    infer_type,
)
from repro.errors import TypeMismatchError


class TestTypeNames:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("INTEGER", SqlType.INTEGER),
            ("int", SqlType.INTEGER),
            ("BigInt", SqlType.INTEGER),
            ("SMALLINT", SqlType.INTEGER),
            ("FLOAT", SqlType.FLOAT),
            ("double precision", SqlType.FLOAT),
            ("DOUBLE  PRECISION", SqlType.FLOAT),
            ("real", SqlType.FLOAT),
            ("numeric", SqlType.FLOAT),
            ("VARCHAR", SqlType.VARCHAR),
            ("text", SqlType.VARCHAR),
            ("char", SqlType.VARCHAR),
        ],
    )
    def test_aliases(self, name, expected):
        assert SqlType.from_name(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError, match="unknown SQL type"):
            SqlType.from_name("BLOB")

    def test_numeric_flags(self):
        assert SqlType.INTEGER.is_numeric
        assert SqlType.FLOAT.is_numeric
        assert not SqlType.VARCHAR.is_numeric


class TestCoercion:
    def test_null_passes_any_type(self):
        for sql_type in SqlType:
            assert coerce_value(None, sql_type) is None

    def test_integer_from_int_and_bool(self):
        assert coerce_value(5, SqlType.INTEGER) == 5
        assert coerce_value(True, SqlType.INTEGER) == 1

    def test_integer_from_integral_float(self):
        assert coerce_value(3.0, SqlType.INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError, match="non-integral"):
            coerce_value(3.5, SqlType.INTEGER)

    def test_integer_rejects_nan_and_inf(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(float("nan"), SqlType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce_value(math.inf, SqlType.INTEGER)

    def test_integer_from_numeric_string(self):
        assert coerce_value("42", SqlType.INTEGER) == 42

    def test_integer_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", SqlType.INTEGER)

    def test_float_from_int(self):
        value = coerce_value(7, SqlType.FLOAT)
        assert value == 7.0 and isinstance(value, float)

    def test_float_from_string(self):
        assert coerce_value("2.5", SqlType.FLOAT) == 2.5

    def test_float_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("two", SqlType.FLOAT)

    def test_varchar_from_string_and_number(self):
        assert coerce_value("hi", SqlType.VARCHAR) == "hi"
        assert coerce_value(3, SqlType.VARCHAR) == "3"

    def test_varchar_rejects_list(self):
        with pytest.raises(TypeMismatchError):
            coerce_value([1, 2], SqlType.VARCHAR)

    def test_numeric_rejects_list(self):
        with pytest.raises(TypeMismatchError):
            coerce_value([1], SqlType.FLOAT)


class TestInference:
    def test_infer(self):
        assert infer_type(1) is SqlType.INTEGER
        assert infer_type(True) is SqlType.INTEGER
        assert infer_type(1.5) is SqlType.FLOAT
        assert infer_type("s") is SqlType.VARCHAR
        assert infer_type(None) is SqlType.FLOAT

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestCommonNumeric:
    def test_int_int(self):
        assert common_numeric_type(SqlType.INTEGER, SqlType.INTEGER) is SqlType.INTEGER

    def test_int_float(self):
        assert common_numeric_type(SqlType.INTEGER, SqlType.FLOAT) is SqlType.FLOAT

    def test_varchar_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(SqlType.VARCHAR, SqlType.FLOAT)
