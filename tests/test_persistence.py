"""Database save/load round trips."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dbms.database import Database
from repro.dbms.persistence import load_database, save_database
from repro.errors import ExportError


@pytest.fixture
def populated(db: Database) -> Database:
    db.execute(
        "CREATE TABLE x (i INTEGER PRIMARY KEY, v FLOAT, tag VARCHAR)"
    )
    db.execute(
        "INSERT INTO x VALUES (1, 1.5, 'a'), (2, NULL, ''), (3, -2.25, NULL)"
    )
    db.execute("CREATE VIEW positive AS SELECT i, v FROM x WHERE v > 0")
    return db


class TestRoundTrip:
    def test_rows_and_types(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap", amps=4)
        rows = sorted(restored.execute("SELECT * FROM x").rows)
        assert rows == [(1, 1.5, "a"), (2, None, ""), (3, -2.25, None)]
        # Types survived: INTEGER stays int, FLOAT stays float.
        assert isinstance(rows[0][0], int)
        assert isinstance(rows[0][1], float)

    def test_null_vs_empty_string(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        values = {
            row[0]: row[1]
            for row in restored.execute("SELECT i, tag FROM x").rows
        }
        assert values[2] == "" and values[3] is None

    def test_primary_key_restored(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            restored.execute("INSERT INTO x VALUES (1, 0.0, 'dup')")

    def test_views_restored(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.execute("SELECT count(*) FROM positive").scalar() == 1

    def test_row_scale_restored(self, tmp_path):
        db = Database(amps=3)
        from repro.dbms.schema import dataset_schema

        db.create_table("scaled", dataset_schema(2), row_scale=50.0)
        db.insert_rows("scaled", [(1, 0.0, 0.0)])
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.table("scaled").row_scale == 50.0
        assert restored.table("scaled").nominal_rows == 50.0

    def test_model_tables_round_trip(self, tmp_path):
        """The paper's workflow artifact: stored models survive."""
        from repro.core.models.base import load_vector, store_vector

        db = Database(amps=2)
        store_vector(db, "beta", np.asarray([1.0, -2.0]), ["b0", "b1"])
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert np.array_equal(load_vector(restored, "beta"), [1.0, -2.0])

    def test_summaries_identical_after_reload(self, tmp_path):
        from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
        from repro.dbms.schema import dataset_schema, dimension_names

        rng = np.random.default_rng(3)
        db = Database(amps=3)
        db.create_table("x", dataset_schema(3))
        db.load_columns(
            "x",
            {
                "i": np.arange(1, 41),
                "x1": rng.normal(size=40),
                "x2": rng.normal(size=40),
                "x3": rng.normal(size=40),
            },
        )
        register_nlq_udfs(db)
        before = compute_nlq_udf(db, "x", dimension_names(3))
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        register_nlq_udfs(restored)  # UDFs are code: re-register
        after = compute_nlq_udf(restored, "x", dimension_names(3))
        assert before.allclose(after, rtol=1e-12)


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ExportError):
            load_database(tmp_path / "nope")

    def test_malformed_catalog(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "catalog.json").write_text("{not json")
        with pytest.raises(ExportError, match="malformed"):
            load_database(root)

    def test_version_mismatch(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "catalog.json").write_text('{"version": 99}')
        with pytest.raises(ExportError, match="version"):
            load_database(root)

    def test_header_mismatch(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        csv_path = root / "tables" / "x.csv"
        lines = csv_path.read_text().splitlines()
        lines[0] = "wrong,header,names"
        csv_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExportError, match="header"):
            load_database(root)


class TestAtomicSave:
    def test_no_temp_leftovers(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        leftovers = [
            p for p in root.rglob("*") if p.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_resave_deletes_orphan_csvs(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        assert (root / "tables" / "x.csv").exists()
        populated.execute("CREATE TABLE extra (id INTEGER)")
        save_database(populated, root)
        assert (root / "tables" / "extra.csv").exists()
        populated.execute("DROP TABLE extra")
        save_database(populated, root)
        # The dropped table's CSV cannot resurrect on inspection.
        assert not (root / "tables" / "extra.csv").exists()
        restored = load_database(root)
        assert restored.catalog.table_names() == ["x"]

    def test_resave_overwrites_in_place(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        populated.execute("UPDATE x SET v = 9.5 WHERE i = 1")
        save_database(populated, root)
        restored = load_database(root)
        assert restored.execute(
            "SELECT v FROM x WHERE i = 1"
        ).scalar() == 9.5

    def test_stray_files_in_tables_dir_are_cleaned(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        stray = root / "tables" / "x.csv.tmp"
        stray.write_text("half a write from a crashed save")
        save_database(populated, root)
        assert not stray.exists()

    def test_fsync_save_round_trips(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap", fsync=True)
        restored = load_database(root)
        assert sorted(restored.execute("SELECT * FROM x").rows) == sorted(
            populated.execute("SELECT * FROM x").rows
        )


class TestRoundTripFidelity:
    """Exact CSV round-trip for every storable value shape.

    Format v1 could not tell a literal ``\\N`` string from NULL; v2
    escapes backslashes on write, so the decode is injective.
    """

    def _round_trip(self, rows, tmp_path, types="(i INTEGER PRIMARY KEY, v FLOAT, s VARCHAR)"):
        db = Database(amps=3)
        db.execute(f"CREATE TABLE t {types}")
        db.insert_rows("t", rows)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        return sorted(restored.table("t").rows())

    def test_literal_backslash_n_string_is_not_null(self, tmp_path):
        rows = [(1, 0.0, "\\N"), (2, 1.0, None), (3, 2.0, "\\\\N")]
        assert self._round_trip(rows, tmp_path) == sorted(rows)

    def test_empty_string_vs_null(self, tmp_path):
        rows = [(1, None, ""), (2, 0.5, None)]
        assert self._round_trip(rows, tmp_path) == sorted(rows)

    def test_newlines_quotes_and_separators_in_strings(self, tmp_path):
        rows = [
            (1, 0.0, "a,b\nc"),
            (2, 0.0, 'say "hi"'),
            (3, 0.0, "tab\there"),
            (4, 0.0, "\r\nwindows"),
        ]
        assert self._round_trip(rows, tmp_path) == sorted(rows)

    def test_extreme_floats_bit_exact(self, tmp_path):
        values = [
            0.1,
            1.0 / 3.0,
            -0.0,
            5e-324,          # smallest subnormal
            1.7976931348623157e308,
            float("inf"),
            float("-inf"),
            2.0 ** -1022,
        ]
        rows = [(i, v, "x") for i, v in enumerate(values)]
        out = self._round_trip(rows, tmp_path)
        assert [repr(r[1]) for r in out] == [
            repr(r[1]) for r in sorted(rows)
        ]

    def test_nan_round_trips(self, tmp_path):
        out = self._round_trip([(1, float("nan"), "x")], tmp_path)
        assert len(out) == 1 and np.isnan(out[0][1])

    def test_large_integers(self, tmp_path):
        rows = [
            (2**63 - 1, 0.0, "big"),
            (-(2**63), 0.0, "small"),
            (10**30, 0.0, "beyond word size"),
        ]
        out = self._round_trip(rows, tmp_path)
        assert out == sorted(rows)
        assert all(isinstance(r[0], int) for r in out)

    @settings(
        max_examples=40,
        deadline=None,
        derandomize=True,
        # Each example builds a fresh Database and atomically overwrites
        # the same snapshot dir, so fixture reuse is sound.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=-(10**12), max_value=10**12),
                st.one_of(
                    st.none(),
                    st.floats(allow_nan=False, width=64),
                ),
                st.one_of(
                    st.none(),
                    st.text(
                        alphabet=st.characters(
                            blacklist_categories=("Cs",), min_codepoint=1
                        ),
                        max_size=24,
                    ),
                ),
            ),
            unique_by=lambda r: r[0],
            max_size=12,
        )
    )
    def test_generated_rows_round_trip_exactly(self, rows, tmp_path):
        db = Database(amps=2)
        db.execute(
            "CREATE TABLE t (i INTEGER PRIMARY KEY, v FLOAT, s VARCHAR)"
        )
        db.insert_rows("t", rows)
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        original = sorted(
            (r[0], repr(r[1]), r[2]) for r in db.table("t").rows()
        )
        recovered = sorted(
            (r[0], repr(r[1]), r[2]) for r in restored.table("t").rows()
        )
        assert recovered == original

    def test_v1_snapshot_still_loads(self, tmp_path):
        """A pre-escaping snapshot (version 1) loads unchanged — its
        fields were written raw, so no unescaping is applied."""
        import json

        root = tmp_path / "v1"
        (root / "tables").mkdir(parents=True)
        (root / "catalog.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "tables": [
                        {
                            "name": "t",
                            "columns": [
                                {
                                    "name": "i",
                                    "type": "INTEGER",
                                    "nullable": False,
                                },
                                {
                                    "name": "s",
                                    "type": "VARCHAR",
                                    "nullable": True,
                                },
                            ],
                            "primary_key": "i",
                            "partitions": 2,
                            "row_scale": 1.0,
                        }
                    ],
                    "views": [],
                }
            )
        )
        (root / "tables" / "t.csv").write_text(
            'i,s\r\n1,\\N\r\n2,a\\b\r\n'
        )
        restored = load_database(root)
        rows = sorted(restored.table("t").rows())
        # v1 semantics: \N is NULL, and a raw backslash stays raw.
        assert rows == [(1, None), (2, "a\\b")]
