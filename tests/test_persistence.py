"""Database save/load round trips."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.persistence import load_database, save_database
from repro.errors import ExportError


@pytest.fixture
def populated(db: Database) -> Database:
    db.execute(
        "CREATE TABLE x (i INTEGER PRIMARY KEY, v FLOAT, tag VARCHAR)"
    )
    db.execute(
        "INSERT INTO x VALUES (1, 1.5, 'a'), (2, NULL, ''), (3, -2.25, NULL)"
    )
    db.execute("CREATE VIEW positive AS SELECT i, v FROM x WHERE v > 0")
    return db


class TestRoundTrip:
    def test_rows_and_types(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap", amps=4)
        rows = sorted(restored.execute("SELECT * FROM x").rows)
        assert rows == [(1, 1.5, "a"), (2, None, ""), (3, -2.25, None)]
        # Types survived: INTEGER stays int, FLOAT stays float.
        assert isinstance(rows[0][0], int)
        assert isinstance(rows[0][1], float)

    def test_null_vs_empty_string(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        values = {
            row[0]: row[1]
            for row in restored.execute("SELECT i, tag FROM x").rows
        }
        assert values[2] == "" and values[3] is None

    def test_primary_key_restored(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        from repro.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            restored.execute("INSERT INTO x VALUES (1, 0.0, 'dup')")

    def test_views_restored(self, populated, tmp_path):
        save_database(populated, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.execute("SELECT count(*) FROM positive").scalar() == 1

    def test_row_scale_restored(self, tmp_path):
        db = Database(amps=3)
        from repro.dbms.schema import dataset_schema

        db.create_table("scaled", dataset_schema(2), row_scale=50.0)
        db.insert_rows("scaled", [(1, 0.0, 0.0)])
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.table("scaled").row_scale == 50.0
        assert restored.table("scaled").nominal_rows == 50.0

    def test_model_tables_round_trip(self, tmp_path):
        """The paper's workflow artifact: stored models survive."""
        from repro.core.models.base import load_vector, store_vector

        db = Database(amps=2)
        store_vector(db, "beta", np.asarray([1.0, -2.0]), ["b0", "b1"])
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert np.array_equal(load_vector(restored, "beta"), [1.0, -2.0])

    def test_summaries_identical_after_reload(self, tmp_path):
        from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
        from repro.dbms.schema import dataset_schema, dimension_names

        rng = np.random.default_rng(3)
        db = Database(amps=3)
        db.create_table("x", dataset_schema(3))
        db.load_columns(
            "x",
            {
                "i": np.arange(1, 41),
                "x1": rng.normal(size=40),
                "x2": rng.normal(size=40),
                "x3": rng.normal(size=40),
            },
        )
        register_nlq_udfs(db)
        before = compute_nlq_udf(db, "x", dimension_names(3))
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        register_nlq_udfs(restored)  # UDFs are code: re-register
        after = compute_nlq_udf(restored, "x", dimension_names(3))
        assert before.allclose(after, rtol=1e-12)


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ExportError):
            load_database(tmp_path / "nope")

    def test_malformed_catalog(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "catalog.json").write_text("{not json")
        with pytest.raises(ExportError, match="malformed"):
            load_database(root)

    def test_version_mismatch(self, tmp_path):
        root = tmp_path / "snap"
        root.mkdir()
        (root / "catalog.json").write_text('{"version": 99}')
        with pytest.raises(ExportError, match="version"):
            load_database(root)

    def test_header_mismatch(self, populated, tmp_path):
        root = save_database(populated, tmp_path / "snap")
        csv_path = root / "tables" / "x.csv"
        lines = csv_path.read_text().splitlines()
        lines[0] = "wrong,header,names"
        csv_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExportError, match="header"):
            load_database(root)
