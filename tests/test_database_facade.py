"""The Database facade: loading, clock control, misc surface."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema
from repro.errors import CatalogError, SchemaError


class TestLoading:
    def test_load_columns_charges_insert_cost(self, db: Database):
        db.create_table("x", dataset_schema(2))
        before = db.simulated_time
        db.load_columns(
            "x", {"i": np.arange(5), "x1": np.zeros(5), "x2": np.ones(5)}
        )
        assert db.simulated_time > before

    def test_load_columns_unknown_table(self, db: Database):
        with pytest.raises(CatalogError):
            db.load_columns("ghost", {"i": np.arange(3)})

    def test_load_columns_schema_mismatch(self, db: Database):
        db.create_table("x", dataset_schema(2))
        with pytest.raises(SchemaError):
            db.load_columns("x", {"i": np.arange(3)})

    def test_insert_rows_returns_count(self, db: Database):
        db.create_table("x", dataset_schema(1))
        assert db.insert_rows("x", [(1, 0.5), (2, 1.5)]) == 2


class TestClock:
    def test_simulated_time_accumulates_across_statements(self, db: Database):
        db.execute("CREATE TABLE t (v FLOAT)")
        first = db.simulated_time
        db.execute("SELECT count(*) FROM t")
        assert db.simulated_time > first

    def test_reset_clock(self, db: Database):
        db.execute("CREATE TABLE t (v FLOAT)")
        db.reset_clock()
        assert db.simulated_time == 0.0

    def test_query_result_seconds_are_per_call(self, db: Database):
        db.execute("CREATE TABLE t (v FLOAT)")
        db.execute("INSERT INTO t VALUES (1.0)")
        first = db.execute("SELECT sum(v) FROM t")
        second = db.execute("SELECT sum(v) FROM t")
        # Deterministic: the same statement always costs the same (to
        # the last ulp of the running clock's float subtraction).
        assert first.simulated_seconds == pytest.approx(
            second.simulated_seconds, rel=1e-12
        )


class TestConstruction:
    def test_amps_propagate_to_cost_and_partitions(self):
        db = Database(amps=7)
        assert db.cost.params.amps == 7
        db.create_table("t", dataset_schema(1))
        assert db.table("t").partition_count == 7

    def test_custom_cost_parameters(self):
        from repro.dbms.cost import CostParameters

        params = CostParameters(scan_row=1.0)
        db = Database(amps=2, cost_parameters=params)
        assert db.cost.params.scan_row == 1.0
        assert db.cost.params.amps == 2  # amps arg wins

    def test_drop_table_facade(self, db: Database):
        db.create_table("t", dataset_schema(1))
        db.drop_table("t")
        assert not db.catalog.has_table("t")
        db.drop_table("t", if_exists=True)
