"""Full-pipeline integration: the paper's workflow end to end.

generate → load → one-scan summaries through every route (SQL, UDF list,
UDF string, blockwise, external C++ over an ODBC export) → build all
four models → score inside the DBMS → validate against direct numpy
computation.
"""

import numpy as np
import pytest

from repro.core.blockwise import compute_nlq_blockwise
from repro.core.nlq_udf import compute_nlq_udf
from repro.core.scoring.scorer import scores_as_matrix
from repro.core.sqlgen import NlqSqlGenerator
from repro.core.summary import SummaryStatistics
from repro.external.cpp_tool import CppAnalysisTool
from repro.odbc.export import OdbcExporter
from repro.twm.miner import WarehouseMiner


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    miner = WarehouseMiner(amps=5)
    sample = miner.load_synthetic("x", n=800, d=6, with_y=True, k=4, seed=77)
    tmp_path = tmp_path_factory.mktemp("pipeline")
    return miner, sample, tmp_path


class TestAllRoutesAgree:
    def test_five_routes_one_summary(self, pipeline):
        miner, sample, tmp_path = pipeline
        dims = miner.dimensions_of("x")
        X = miner.db.table("x").numeric_matrix(dims)
        reference = SummaryStatistics.from_matrix(X)

        sql_stats = NlqSqlGenerator("x", dims).compute(miner.db)
        list_stats = compute_nlq_udf(miner.db, "x", dims, passing="list")
        string_stats = compute_nlq_udf(miner.db, "x", dims, passing="string")
        block_stats = compute_nlq_blockwise(miner.db, "x", dims, block=3)

        OdbcExporter().export_table(miner.db, "x", tmp_path / "x.csv")
        cpp_stats = CppAnalysisTool().compute_nlq(
            tmp_path / "x.csv", columns=dims
        ).stats

        for label, stats in [
            ("sql", sql_stats),
            ("udf-list", list_stats),
            ("udf-string", string_stats),
            ("blockwise", block_stats),
            ("cpp", cpp_stats),
        ]:
            assert stats.allclose(reference, rtol=1e-7), label


class TestBuildAndScoreEverything:
    def test_regression_workflow(self, pipeline):
        miner, sample, _tmp = pipeline
        model = miner.linear_regression("x")
        # The generator's true coefficients are recovered.
        assert np.allclose(model.coefficients, sample.true_beta, atol=0.3)
        scorer = miner.scorer("x")
        scorer.store_regression(model)
        scores = scores_as_matrix(scorer.score_regression("udf"), 1).ravel()
        X = miner.db.table("x").numeric_matrix(miner.dimensions_of("x"))
        assert np.allclose(scores, model.predict(X))
        # Scored values correlate strongly with the actual target.
        y = np.asarray(miner.db.table("x").column_values("y"), dtype=float)
        assert np.corrcoef(scores, y)[0, 1] > 0.95

    def test_pca_workflow(self, pipeline):
        miner, _sample, _tmp = pipeline
        model = miner.pca("x", k=3)
        scorer = miner.scorer("x")
        scorer.store_pca(model)
        udf_scores = scores_as_matrix(scorer.score_pca(3, "udf"), 3)
        sql_scores = scores_as_matrix(scorer.score_pca(3, "sql"), 3)
        assert np.allclose(udf_scores, sql_scores)
        X = miner.db.table("x").numeric_matrix(miner.dimensions_of("x"))
        assert np.allclose(udf_scores, model.transform(X))

    def test_clustering_workflow_recovers_mixture(self, pipeline):
        miner, sample, _tmp = pipeline
        model = miner.kmeans("x", k=4, max_iterations=10, seed=1)
        scorer = miner.scorer("x")
        scorer.store_clustering(model)
        labels = scores_as_matrix(
            scorer.score_clustering(4, "udf"), 1
        ).ravel().astype(int)
        # Non-noise points of the same mixture component should mostly
        # land in the same cluster.
        X = miner.db.table("x").numeric_matrix(miner.dimensions_of("x"))
        assignments = model.assign(X)
        assert np.array_equal(np.sort(labels), np.sort(assignments))

    def test_factor_analysis_consistency_with_pca(self, pipeline):
        miner, _sample, _tmp = pipeline
        stats = miner.summarize("x")
        fa = miner.factor_analysis("x", k=2)
        # FA's implied covariance approximates the sample covariance.
        relative = np.linalg.norm(
            fa.implied_covariance() - stats.covariance()
        ) / np.linalg.norm(stats.covariance())
        assert relative < 0.25


class TestSingleScanClaims:
    def test_udf_query_marginal_cost_is_one_scan(self, pipeline):
        """The aggregate UDF query is a single pass: its *marginal*
        per-row cost (doubling n) is one scan's worth of I/O plus the
        per-row UDF work — no hidden second pass, and the fixed
        merge/return cost does not grow with n."""
        miner, _sample, _tmp = pipeline
        db = miner.db
        dims = miner.dimensions_of("x")
        table = db.table("x")
        baseline_scale = table.row_scale

        db.reset_clock()
        compute_nlq_udf(db, "x", dims)
        at_n = db.simulated_time

        table.row_scale = baseline_scale * 2  # same data, double nominal n
        db.reset_clock()
        compute_nlq_udf(db, "x", dims)
        at_2n = db.simulated_time
        table.row_scale = baseline_scale
        db.reset_clock()

        marginal = at_2n - at_n  # pure per-row cost of n extra rows
        db.cost.charge_scan(table.nominal_rows, table.width)
        one_scan = db.simulated_time
        db.reset_clock()
        assert marginal < 30 * one_scan
        # And the fixed part did not double: far from two full passes.
        assert at_2n < 2 * at_n

    def test_score_output_row_per_input_row(self, pipeline):
        miner, _sample, _tmp = pipeline
        model = miner.linear_regression("x")
        scorer = miner.scorer("x")
        scorer.store_regression(model)
        result = scorer.score_regression("udf")
        assert len(result) == miner.db.table("x").row_count

    def test_simulated_times_deterministic(self, pipeline):
        miner, _sample, _tmp = pipeline
        dims = miner.dimensions_of("x")
        first = miner.db.execute(
            NlqSqlGenerator("x", dims).long_query_sql()
        ).simulated_seconds
        second = miner.db.execute(
            NlqSqlGenerator("x", dims).long_query_sql()
        ).simulated_seconds
        assert first == second
