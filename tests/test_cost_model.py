"""The simulated clock and cost model."""

import pytest

from repro.dbms.cost import CostModel, CostParameters, SimulatedClock
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema


class TestClock:
    def test_accumulates(self):
        clock = SimulatedClock()
        clock.charge(1.5)
        clock.charge(0.5)
        assert clock.elapsed == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().charge(-1.0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge(1.0)
        clock.reset()
        assert clock.elapsed == 0.0

    def test_span(self):
        clock = SimulatedClock()
        clock.charge(1.0)
        with clock.span() as span:
            clock.charge(2.5)
        assert span.seconds == 2.5
        clock.charge(1.0)
        assert span.seconds == 2.5  # frozen at exit


class TestCharges:
    def test_scan_divides_across_amps(self):
        one = CostModel(params=CostParameters(amps=1))
        twenty = CostModel(params=CostParameters(amps=20))
        one.charge_scan(1000, 8)
        twenty.charge_scan(1000, 8)
        assert one.clock.elapsed == pytest.approx(20 * twenty.clock.elapsed)

    def test_scan_linear_in_rows(self):
        model = CostModel()
        model.charge_scan(100, 4)
        t1 = model.clock.elapsed
        model.clock.reset()
        model.charge_scan(1000, 4)
        assert model.clock.elapsed == pytest.approx(10 * t1)

    def test_sql_statement_cost_grows_with_terms(self):
        model = CostModel()
        model.charge_sql_statement(1)
        small = model.clock.elapsed
        model.clock.reset()
        model.charge_sql_statement(1000)
        assert model.clock.elapsed > small

    def test_udf_row_components(self):
        base = CostModel()
        base.charge_udf_rows(1000)
        baseline = base.clock.elapsed
        with_params = CostModel()
        with_params.charge_udf_rows(1000, list_params=10)
        assert with_params.clock.elapsed > baseline
        with_string = CostModel()
        with_string.charge_udf_rows(1000, string_chars=100)
        assert with_string.clock.elapsed > baseline

    def test_string_transfer_charge(self):
        model = CostModel()
        model.charge_udf_string_transfer(1000, 152)
        assert model.clock.elapsed == pytest.approx(
            1000 * 152 * model.params.udf_string_char / model.params.amps
        )

    def test_spool_result_per_column(self):
        narrow = CostModel()
        wide = CostModel()
        narrow.charge_spool_result(1, 10)
        wide.charge_spool_result(1, 1000)
        # The wide one-row result is what hurts SQL at high d.
        assert wide.clock.elapsed == pytest.approx(100 * narrow.clock.elapsed)

    def test_sort_empty_is_free(self):
        model = CostModel()
        model.charge_sort(1)
        assert model.clock.elapsed == 0.0


class TestSpillMultiplier:
    def test_graded_levels(self):
        model = CostModel()
        segment = model.params.heap_segment_bytes
        state = 2048  # ~ the diagonal d=32 struct
        # Well under half the segment: near 1.
        low = model.groupby_spill_multiplier(4, state)
        assert 1.0 <= low < 1.1
        # Between half and the whole segment: the pressure factor.
        assert model.groupby_spill_multiplier(
            segment // (2 * state) + 1, state
        ) == model.params.groupby_pressure_factor
        # Over the segment: the spill factor.
        assert model.groupby_spill_multiplier(
            segment // state + 1, state
        ) == model.params.groupby_spill_factor

    def test_monotone_in_groups(self):
        model = CostModel()
        values = [model.groupby_spill_multiplier(k, 2072) for k in (1, 8, 16, 32)]
        assert values == sorted(values)


class TestRowScaleExactness:
    """The bench scaling mechanism: per-row charges must be exactly
    linear, so 10x physical rows at scale 1 equals 1x rows at scale 10."""

    def _query_time(self, physical: int, scale: float) -> float:
        db = Database(amps=4)
        db.create_table("t", dataset_schema(2), row_scale=scale)
        db.insert_rows(
            "t", [(i, float(i), float(i) * 2) for i in range(physical)]
        )
        db.reset_clock()
        return db.execute("SELECT sum(x1), sum(x2 * x2) FROM t").simulated_seconds

    def test_scaled_equals_unscaled(self):
        big = self._query_time(physical=200, scale=1.0)
        small = self._query_time(physical=20, scale=10.0)
        assert small == pytest.approx(big, rel=1e-9)

    def test_parameters_scaled_copy(self):
        params = CostParameters()
        copy = params.scaled(amps=5)
        assert copy.amps == 5 and params.amps == 20
        assert copy.scan_row == params.scan_row
