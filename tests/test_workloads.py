"""Synthetic workload generation (the paper's mixture-plus-noise data)."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.errors import WorkloadError
from repro.workloads.generator import (
    MixtureSpec,
    SyntheticDataGenerator,
    load_dataset,
)


class TestSpecValidation:
    def test_defaults_match_paper(self):
        spec = MixtureSpec(d=8)
        assert spec.k == 16
        assert spec.mean_low == 0.0 and spec.mean_high == 100.0
        assert spec.sigma == 10.0
        assert spec.noise_fraction == 0.15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d": 0},
            {"d": 2, "k": 0},
            {"d": 2, "noise_fraction": 1.0},
            {"d": 2, "noise_fraction": -0.1},
            {"d": 2, "mean_low": 5.0, "mean_high": 5.0},
            {"d": 2, "sigma": 0.0},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(WorkloadError):
            MixtureSpec(**kwargs)


class TestGeneration:
    def test_shapes_and_ids(self):
        sample = SyntheticDataGenerator(MixtureSpec(d=4, k=3)).generate(500)
        assert sample.X.shape == (500, 4)
        assert np.array_equal(sample.ids, np.arange(1, 501))
        assert sample.n == 500 and sample.d == 4

    def test_invalid_n(self):
        with pytest.raises(WorkloadError):
            SyntheticDataGenerator(MixtureSpec(d=2)).generate(0)

    def test_noise_fraction_respected(self):
        sample = SyntheticDataGenerator(
            MixtureSpec(d=2, k=4, noise_fraction=0.15, seed=0)
        ).generate(5000)
        noise_share = (sample.labels == 0).mean()
        assert 0.12 < noise_share < 0.18

    def test_component_means_in_range(self):
        generator = SyntheticDataGenerator(MixtureSpec(d=3, k=16))
        assert generator.component_means.min() >= 0.0
        assert generator.component_means.max() <= 100.0

    def test_cluster_members_near_their_mean(self):
        spec = MixtureSpec(d=2, k=4, noise_fraction=0.0, seed=5)
        generator = SyntheticDataGenerator(spec)
        sample = generator.generate(4000)
        for j in range(1, 5):
            members = sample.X[sample.labels == j]
            assert np.allclose(
                members.mean(axis=0),
                generator.component_means[j - 1],
                atol=1.5,
            )

    def test_seed_reproducibility(self):
        a = SyntheticDataGenerator(MixtureSpec(d=3, seed=9)).generate(100)
        b = SyntheticDataGenerator(MixtureSpec(d=3, seed=9)).generate(100)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticDataGenerator(MixtureSpec(d=3, seed=1)).generate(100)
        b = SyntheticDataGenerator(MixtureSpec(d=3, seed=2)).generate(100)
        assert not np.array_equal(a.X, b.X)

    def test_with_target(self):
        generator = SyntheticDataGenerator(MixtureSpec(d=3, seed=2))
        sample = generator.with_target(generator.generate(300), noise_sigma=0.1)
        assert sample.y is not None and sample.true_beta is not None
        manual = sample.true_intercept + sample.X @ sample.true_beta
        residual = sample.y - manual
        assert np.std(residual) < 0.2


class TestLoadDataset:
    def test_table_created_and_loaded(self):
        db = Database(amps=3)
        sample = load_dataset(db, "x", 150, MixtureSpec(d=3, k=2))
        table = db.table("x")
        assert table.row_count == 150
        assert table.schema.column_names == ("i", "x1", "x2", "x3")
        matrix = table.numeric_matrix(["x1"])
        assert np.sort(matrix.ravel()).sum() == pytest.approx(
            np.sort(sample.X[:, 0]).sum()
        )

    def test_with_y_adds_column(self):
        db = Database(amps=3)
        load_dataset(db, "x", 50, MixtureSpec(d=2), with_y=True)
        assert "y" in db.table("x").schema

    def test_row_scale_applied(self):
        db = Database(amps=3)
        load_dataset(db, "x", 50, MixtureSpec(d=2), row_scale=20.0)
        assert db.table("x").nominal_rows == 1000.0

    def test_reload_replaces(self):
        db = Database(amps=3)
        load_dataset(db, "x", 50, MixtureSpec(d=2))
        load_dataset(db, "x", 70, MixtureSpec(d=2))
        assert db.table("x").row_count == 70
