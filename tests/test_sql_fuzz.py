"""Property-based fuzzing of the SQL front end.

Random expression trees are rendered to SQL, re-parsed (round trip must
be exact) and executed by the engine, whose results must match direct
evaluation of the same tree with the compiled row evaluator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.database import Database
from repro.dbms.expressions import compile_row_expression
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement

# --------------------------------------------------------------- strategies
_literals = st.one_of(
    st.integers(-50, 50).map(ast.Literal),
    st.floats(-50, 50, allow_nan=False, allow_infinity=False).map(
        lambda v: ast.Literal(round(v, 3))
    ),
)
_columns = st.sampled_from(
    [ast.ColumnRef("a"), ast.ColumnRef("b")]
)


def _numeric_exprs(depth: int) -> st.SearchStrategy:
    if depth == 0:
        return st.one_of(_literals, _columns)
    smaller = _numeric_exprs(depth - 1)
    return st.one_of(
        _literals,
        _columns,
        st.builds(
            ast.Binary,
            st.sampled_from(["+", "-", "*"]),
            smaller,
            smaller,
        ),
        st.builds(lambda operand: ast.Unary("-", operand), smaller).filter(
            # The parser constant-folds -literal into a negative literal,
            # so that shape cannot round-trip structurally.
            lambda e: not isinstance(e.operand, ast.Literal)
        ),
    )


def _predicates(depth: int) -> st.SearchStrategy:
    comparison = st.builds(
        ast.Binary,
        st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
        _numeric_exprs(1),
        _numeric_exprs(1),
    )
    if depth == 0:
        return comparison
    smaller = _predicates(depth - 1)
    return st.one_of(
        comparison,
        st.builds(ast.Binary, st.sampled_from(["AND", "OR"]), smaller, smaller),
        st.builds(lambda operand: ast.Unary("NOT", operand), smaller),
    )


ROWS = [
    (1, 2.0, -3.0),
    (2, 0.5, 0.5),
    (3, -10.0, 4.25),
    (4, 7.0, 7.0),
]


@pytest.fixture(scope="module")
def fuzz_db():
    db = Database(amps=2)
    db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, a FLOAT, b FLOAT)")
    db.insert_rows("t", ROWS)
    return db


def _reference_values(expression: ast.Expression):
    def resolver(ref: ast.ColumnRef) -> int:
        return {"i": 0, "a": 1, "b": 2}[ref.name.lower()]

    fn = compile_row_expression(expression, resolver)
    return [fn(row) for row in ROWS]


class TestExpressionFuzz:
    @given(_numeric_exprs(3))
    @settings(max_examples=120, deadline=None)
    def test_render_parse_round_trip(self, expression):
        sql = f"SELECT {ast.render(expression)} FROM t"
        reparsed = parse_statement(sql)
        assert reparsed.items[0].expression == expression

    @given(expression=_numeric_exprs(3))
    @settings(max_examples=80, deadline=None)
    def test_engine_matches_row_evaluator(self, fuzz_db, expression):
        sql = f"SELECT i, {ast.render(expression)} FROM t ORDER BY i"
        engine_values = [row[1] for row in fuzz_db.execute(sql).rows]
        expected = _reference_values(expression)
        assert engine_values == pytest.approx(expected)

    @given(expression=_numeric_exprs(2))
    @settings(max_examples=60, deadline=None)
    def test_sum_matches_python(self, fuzz_db, expression):
        sql = f"SELECT sum({ast.render(expression)}) FROM t"
        engine_total = fuzz_db.execute(sql).scalar()
        expected = sum(_reference_values(expression))
        assert engine_total == pytest.approx(expected)


class TestPredicateFuzz:
    @given(predicate=_predicates(2))
    @settings(max_examples=80, deadline=None)
    def test_where_matches_python_filter(self, fuzz_db, predicate):
        sql = f"SELECT i FROM t WHERE {ast.render(predicate)} ORDER BY i"
        engine_ids = fuzz_db.execute(sql).column("i")

        def resolver(ref: ast.ColumnRef) -> int:
            return {"i": 0, "a": 1, "b": 2}[ref.name.lower()]

        fn = compile_row_expression(predicate, resolver)
        expected = [row[0] for row in ROWS if fn(row) is True]
        assert engine_ids == expected

    @given(_predicates(2))
    @settings(max_examples=60, deadline=None)
    def test_predicate_round_trip(self, predicate):
        sql = f"SELECT 1 FROM t WHERE {ast.render(predicate)}"
        reparsed = parse_statement(sql)
        assert reparsed.where == predicate


class TestCaseFuzz:
    @given(
        condition=_predicates(1),
        then_value=_numeric_exprs(1),
        else_value=_numeric_exprs(1),
    )
    @settings(max_examples=60, deadline=None)
    def test_case_expression(self, fuzz_db, condition, then_value, else_value):
        expression = ast.Case(((condition, then_value),), else_value)
        sql = f"SELECT i, {ast.render(expression)} FROM t ORDER BY i"
        engine_values = [row[1] for row in fuzz_db.execute(sql).rows]
        expected = _reference_values(expression)
        assert engine_values == pytest.approx(expected)
