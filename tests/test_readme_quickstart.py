"""The README's quickstart snippets must actually run."""

import numpy as np


def test_readme_quickstart_miner():
    from repro import WarehouseMiner

    miner = WarehouseMiner()
    miner.load_synthetic("x", n=2_000, d=8, with_y=True)

    stats = miner.summarize("x")
    corr = miner.correlation("x")
    reg = miner.linear_regression("x")
    pca = miner.pca("x", k=3)
    km = miner.kmeans("x", k=4, max_iterations=4)

    scorer = miner.scorer("x")
    scorer.store_regression(reg)
    scores = scorer.score_regression("udf")
    scorer.score_regression("udf", into="x_scored")
    assert miner.db.table("x_scored").row_count == 2_000

    assert stats.n == 2_000
    assert np.allclose(np.diag(corr.rho), 1.0)
    assert 0.0 < reg.r_squared() <= 1.0
    assert pca.k == 3
    assert km.weights.sum() > 0.99
    assert len(scores) == 2_000
    assert miner.db.simulated_time > 0


def test_readme_quickstart_sql():
    from repro import Database
    from repro.core.nlq_udf import register_nlq_udfs
    from repro.core.packing import unpack_summary

    db = Database()
    db.execute("CREATE TABLE x (i INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT)")
    db.execute("INSERT INTO x VALUES (1, 1.0, 2.0), (2, 2.0, 3.0)")
    register_nlq_udfs(db)
    payload = db.execute("SELECT nlq_tri(2, x1, x2) FROM x").scalar()
    stats = unpack_summary(payload)
    assert stats.n == 2
    assert np.allclose(stats.L, [3.0, 5.0])
