"""Data profiling: histograms and outliers from the summary extrema."""

import numpy as np
import pytest

from repro.core.nlq_udf import register_nlq_udfs
from repro.core.profiling import (
    HistogramBuilder,
    find_outliers,
    outlier_sql,
    profile_table,
)
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import ModelError


@pytest.fixture
def profiled_db():
    rng = np.random.default_rng(81)
    n = 400
    X = np.column_stack(
        [
            rng.normal(100.0, 15.0, n),
            rng.uniform(0.0, 1.0, n),
        ]
    )
    # Plant unmistakable outliers in x1 at ids 1 and 2.
    X[0, 0] = 500.0
    X[1, 0] = -300.0
    db = Database(amps=3)
    db.create_table("x", dataset_schema(2))
    db.load_columns(
        "x", {"i": np.arange(1, n + 1), "x1": X[:, 0], "x2": X[:, 1]}
    )
    register_nlq_udfs(db)
    return db, X


class TestProfiles:
    def test_matches_numpy(self, profiled_db):
        db, X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        assert profiles["x1"].mean == pytest.approx(X[:, 0].mean())
        assert profiles["x1"].variance == pytest.approx(X[:, 0].var())
        assert profiles["x1"].minimum == pytest.approx(X[:, 0].min())
        assert profiles["x2"].maximum == pytest.approx(X[:, 1].max())

    def test_zscore(self, profiled_db):
        db, X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        z = profiles["x1"].zscore(500.0)
        assert z > 5

    def test_zero_variance_zscore_rejected(self):
        from repro.core.profiling import DimensionProfile

        profile = DimensionProfile("c", 1.0, 0.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            profile.zscore(2.0)

    def test_empty_table_rejected(self):
        db = Database(amps=2)
        db.create_table("e", dataset_schema(1))
        register_nlq_udfs(db)
        with pytest.raises(ModelError, match="empty"):
            profile_table(db, "e", dimension_names(1))

    def test_precomputed_stats_skip_scan(self, profiled_db):
        db, _X = profiled_db
        from repro.core.nlq_udf import compute_nlq_udf
        from repro.core.summary import MatrixType

        stats = compute_nlq_udf(db, "x", dimension_names(2), MatrixType.DIAGONAL)
        db.reset_clock()
        profile_table(db, "x", dimension_names(2), stats=stats)
        assert db.simulated_time == 0.0


class TestHistograms:
    def test_counts_match_numpy(self, profiled_db):
        db, X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        builder = HistogramBuilder(db, "x")
        histogram = builder.build("x1", profiles["x1"], bins=12)
        reference, _edges = np.histogram(
            X[:, 0], bins=12, range=(X[:, 0].min(), X[:, 0].max())
        )
        assert histogram.counts.sum() == len(X)
        assert np.array_equal(histogram.counts, reference)

    def test_edges_span_extrema(self, profiled_db):
        db, X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        histogram = HistogramBuilder(db, "x").build("x2", profiles["x2"], bins=5)
        assert histogram.edges[0] == pytest.approx(X[:, 1].min())
        assert histogram.edges[-1] == pytest.approx(X[:, 1].max())
        assert histogram.bins == 5

    def test_densities_sum_to_one(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        histogram = HistogramBuilder(db, "x").build("x2", profiles["x2"])
        assert histogram.densities().sum() == pytest.approx(1.0)

    def test_mode_bin_of_normal_data_near_mean(self, profiled_db):
        db, X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        # x2 is uniform; test the normal-ish x1 without its outliers.
        histogram = HistogramBuilder(db, "x").build("x1", profiles["x1"], bins=8)
        low, high = histogram.mode_bin()
        assert low < np.median(X[:, 0]) < high

    def test_constant_dimension(self):
        db = Database(amps=2)
        db.create_table("c", dataset_schema(1))
        db.insert_rows("c", [(i, 7.0) for i in range(1, 6)])
        register_nlq_udfs(db)
        profiles = profile_table(db, "c", ["x1"])
        histogram = HistogramBuilder(db, "c").build("x1", profiles["x1"], bins=4)
        assert histogram.counts.tolist() == [5.0]

    def test_invalid_bins(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        with pytest.raises(ModelError):
            HistogramBuilder(db, "x").build("x1", profiles["x1"], bins=0)

    def test_build_all(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        histograms = HistogramBuilder(db, "x").build_all(profiles, bins=6)
        assert set(histograms) == {"x1", "x2"}


class TestOutliers:
    def test_planted_outliers_found(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        outliers = find_outliers(db, "x", "i", profiles, threshold=4.0)
        assert 1 in outliers and 2 in outliers
        assert len(outliers) <= 4  # essentially just the planted ones

    def test_threshold_monotone(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        loose = find_outliers(db, "x", "i", profiles, threshold=1.0)
        strict = find_outliers(db, "x", "i", profiles, threshold=4.0)
        assert set(strict) <= set(loose)
        assert len(loose) > len(strict)

    def test_sql_single_scan_shape(self, profiled_db):
        db, _X = profiled_db
        profiles = profile_table(db, "x", dimension_names(2))
        sql = outlier_sql("x", "i", profiles, 3.0)
        assert sql.count("SELECT") == 1
        assert "WHERE" in sql

    def test_no_profiles_rejected(self):
        with pytest.raises(ModelError):
            outlier_sql("x", "i", {}, 3.0)
