"""Maximum-likelihood factor analysis via EM on the covariance matrix."""

import numpy as np
import pytest

from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@pytest.fixture
def factor_data():
    """Data generated from a true 2-factor model: x = Λf + µ + ε."""
    rng = np.random.default_rng(31)
    n, d, k = 800, 6, 2
    loadings = rng.normal(scale=2.0, size=(d, k))
    noise_sd = rng.uniform(0.3, 0.6, size=d)
    factors = rng.normal(size=(n, k))
    X = 5.0 + factors @ loadings.T + rng.normal(size=(n, d)) * noise_sd
    return X, SummaryStatistics.from_matrix(X), loadings, noise_sd


class TestFit:
    def test_implied_covariance_close_to_sample(self, factor_data):
        X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        S = np.cov(X.T, bias=True)
        implied = model.implied_covariance()
        relative = np.linalg.norm(implied - S) / np.linalg.norm(S)
        assert relative < 0.05

    def test_noise_variance_recovered(self, factor_data):
        _X, stats, _L, noise_sd = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        assert np.allclose(model.noise_variance, noise_sd**2, rtol=0.6)
        assert np.all(model.noise_variance > 0)

    def test_log_likelihood_improves_with_right_k(self, factor_data):
        _X, stats, _L, _psi = factor_data
        weak = FactorAnalysisModel.from_summary(stats, k=1)
        right = FactorAnalysisModel.from_summary(stats, k=2)
        assert right.log_likelihood > weak.log_likelihood

    def test_converges(self, factor_data):
        _X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2, max_iterations=500)
        assert model.iterations < 500

    def test_seed_determinism(self, factor_data):
        _X, stats, _L, _psi = factor_data
        a = FactorAnalysisModel.from_summary(stats, k=2, seed=1)
        b = FactorAnalysisModel.from_summary(stats, k=2, seed=1)
        assert np.array_equal(a.loadings, b.loadings)

    def test_k_bounds(self, factor_data):
        _X, stats, _L, _psi = factor_data
        with pytest.raises(ModelError):
            FactorAnalysisModel.from_summary(stats, k=0)
        with pytest.raises(ModelError):
            FactorAnalysisModel.from_summary(stats, k=6)  # k must be < d

    def test_zero_variance_rejected(self):
        X = np.column_stack([np.ones(30), np.random.default_rng(0).normal(size=30)])
        stats = SummaryStatistics.from_matrix(X)
        with pytest.raises(ModelError):
            FactorAnalysisModel.from_summary(stats, k=1)


class TestTransform:
    def test_factor_scores_shape_and_scale(self, factor_data):
        X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        scores = model.transform(X)
        assert scores.shape == (X.shape[0], 2)
        # Posterior-mean scores are shrunk versions of N(0, 1) factors.
        assert np.all(np.abs(scores.mean(axis=0)) < 0.15)
        assert np.all(scores.var(axis=0) < 1.2)

    def test_single_point(self, factor_data):
        X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        assert model.transform(X[0]).shape == (1, 2)

    def test_dimension_check(self, factor_data):
        _X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        with pytest.raises(ModelError):
            model.transform(np.zeros((3, 9)))

    def test_communalities_bounded_by_variances(self, factor_data):
        X, stats, _L, _psi = factor_data
        model = FactorAnalysisModel.from_summary(stats, k=2)
        communalities = model.communalities()
        total_variances = X.var(axis=0)
        assert np.all(communalities > 0)
        assert np.all(communalities <= total_variances * 1.05)
