"""Query optimization rewrites (paper, Section 3.6)."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.sql.optimizer import QueryOptimizer
from repro.dbms.sql.parser import parse_statement


@pytest.fixture
def scoring_db(db: Database) -> Database:
    """A scoring-shaped catalog: data table + one-row BETA + k-row C."""
    db.execute(
        "CREATE TABLE x (i INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT)"
    )
    db.execute("INSERT INTO x VALUES (1, 1.0, 2.0), (2, 3.0, 4.0)")
    db.execute("CREATE TABLE beta (b0 FLOAT, b1 FLOAT, b2 FLOAT)")
    db.execute("INSERT INTO beta VALUES (1.0, 2.0, 3.0)")
    db.execute("CREATE TABLE c (j INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT)")
    db.execute("INSERT INTO c VALUES (1, 0.0, 0.0), (2, 5.0, 5.0)")
    return db


def optimize(db, sql):
    return QueryOptimizer(db.catalog).optimize(parse_statement(sql))


class TestJoinElimination:
    def test_unused_single_row_cross_join_removed(self, scoring_db):
        """After feature selection drops the model's terms, the BETA
        cross join is dead weight — the paper's scoring use case."""
        report = optimize(
            scoring_db,
            "SELECT t.i, t.x1 FROM x t CROSS JOIN beta b",
        )
        assert report.eliminated_joins == ["b"]
        assert not report.optimized.joins

    def test_used_cross_join_kept(self, scoring_db):
        report = optimize(
            scoring_db,
            "SELECT t.i, b.b0 + b.b1 * t.x1 FROM x t CROSS JOIN beta b",
        )
        assert report.eliminated_joins == []

    def test_multi_row_cross_join_kept(self, scoring_db):
        # c has 2 rows: removing the cross join would change cardinality.
        report = optimize(
            scoring_db, "SELECT t.i FROM x t CROSS JOIN c c1"
        )
        assert report.eliminated_joins == []

    def test_unused_pk_literal_join_removed(self, scoring_db):
        report = optimize(
            scoring_db,
            "SELECT t.i, t.x1 FROM x t JOIN c c1 ON c1.j = 1",
        )
        assert report.eliminated_joins == ["c1"]

    def test_pk_literal_join_with_missing_key_kept(self, scoring_db):
        # j = 99 matches nothing: eliminating it would change results.
        report = optimize(
            scoring_db,
            "SELECT t.i FROM x t JOIN c c1 ON c1.j = 99",
        )
        assert report.eliminated_joins == []

    def test_non_pk_join_kept(self, scoring_db):
        report = optimize(
            scoring_db,
            "SELECT t.i FROM x t JOIN c c1 ON c1.x1 = 0.0",
        )
        assert report.eliminated_joins == []

    def test_unqualified_references_block_elimination(self, scoring_db):
        # 'x1' could bind to either side; stay conservative.
        report = optimize(
            scoring_db, "SELECT i, x2 FROM x t CROSS JOIN beta b"
        )
        assert report.eliminated_joins == []

    def test_results_identical_with_and_without(self, scoring_db):
        sql = "SELECT t.i, t.x1 FROM x t JOIN c c1 ON c1.j = 1 ORDER BY t.i"
        plain = scoring_db.execute(sql)
        optimized = scoring_db.execute_optimized(sql)
        assert plain.rows == optimized.rows

    def test_elimination_reduces_simulated_time(self, scoring_db):
        sql = "SELECT t.i, t.x1 FROM x t JOIN c c1 ON c1.j = 1"
        plain = scoring_db.execute(sql).simulated_seconds
        optimized = scoring_db.execute_optimized(sql).simulated_seconds
        assert optimized <= plain


class TestGroupByPushdown:
    @pytest.fixture
    def star_db(self, db: Database) -> Database:
        db.execute(
            "CREATE TABLE dim (gkey INTEGER PRIMARY KEY, label VARCHAR)"
        )
        db.execute(
            "INSERT INTO dim VALUES (1, 'one'), (2, 'two'), (3, 'three')"
        )
        db.execute(
            "CREATE TABLE fact (fid INTEGER PRIMARY KEY, gkey INTEGER, v FLOAT)"
        )
        rows = []
        rng = np.random.default_rng(0)
        for fid in range(1, 61):
            rows.append((fid, int(rng.integers(1, 4)), float(rng.normal())))
        db.insert_rows("fact", rows)
        return db

    SQL = (
        "SELECT d.gkey, sum(f.v), count(f.v) FROM dim d "
        "JOIN fact f ON f.gkey = d.gkey GROUP BY d.gkey ORDER BY d.gkey"
    )

    def test_rewrite_fires(self, star_db):
        report = optimize(star_db, self.SQL)
        assert report.pushed_group_by
        # The join's right side became a pre-aggregated derived table.
        from repro.dbms.sql import ast

        assert isinstance(report.optimized.joins[0].source, ast.DerivedTable)

    def test_results_identical(self, star_db):
        plain = star_db.execute(self.SQL)
        optimized = star_db.execute_optimized(self.SQL)
        assert plain.columns == optimized.columns
        for a, b in zip(plain.rows, optimized.rows):
            assert a[0] == b[0]
            assert a[1] == pytest.approx(b[1])
            assert a[2] == b[2]

    def test_not_applied_with_where(self, star_db):
        report = optimize(
            star_db,
            "SELECT d.gkey, sum(f.v) FROM dim d JOIN fact f ON f.gkey = d.gkey "
            "WHERE d.gkey > 1 GROUP BY d.gkey",
        )
        assert not report.pushed_group_by

    def test_not_applied_for_nondecomposable_aggregate(self, star_db):
        report = optimize(
            star_db,
            "SELECT d.gkey, avg(f.v) FROM dim d JOIN fact f ON f.gkey = d.gkey "
            "GROUP BY d.gkey",
        )
        assert not report.pushed_group_by

    def test_not_applied_when_aggregate_uses_dim_columns(self, star_db):
        report = optimize(
            star_db,
            "SELECT d.gkey, sum(d.gkey) FROM dim d JOIN fact f ON f.gkey = d.gkey "
            "GROUP BY d.gkey",
        )
        assert not report.pushed_group_by


class TestExplain:
    def test_explain_scoring_query(self, scoring_db):
        text = scoring_db.explain(
            "SELECT t.i, t.x1 FROM x t JOIN c c1 ON c1.j = 1"
        )
        assert "EXPLAIN" in text
        assert "join eliminated: c1" in text
        assert "estimated simulated seconds" in text

    def test_explain_aggregate(self, scoring_db):
        text = scoring_db.explain(
            "SELECT sum(t.x1) FROM x t WHERE t.x2 > 0"
        )
        assert "aggregate: [sum]" in text
        assert "filter:" in text

    def test_explain_rejects_non_select(self, scoring_db):
        with pytest.raises(ValueError):
            scoring_db.explain("DROP TABLE x")

    def test_explain_charges_nothing(self, scoring_db):
        before = scoring_db.simulated_time
        scoring_db.explain("SELECT t.i FROM x t")
        assert scoring_db.simulated_time == before

    def test_execute_optimized_passthrough_for_dml(self, scoring_db):
        result = scoring_db.execute_optimized("INSERT INTO x VALUES (9, 0.0, 0.0)")
        assert result is not None
        assert scoring_db.execute("SELECT count(*) FROM x").scalar() == 3
