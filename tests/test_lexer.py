"""SQL tokenizer."""

import pytest

from repro.dbms.sql.lexer import TokenType, tokenize
from repro.errors import SqlSyntaxError


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


class TestTokens:
    def test_simple_select(self):
        tokens = kinds("SELECT x1 FROM t")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENTIFIER, "x1"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.IDENTIFIER, "t"),
        ]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].type is TokenType.KEYWORD

    def test_numbers(self):
        texts = [t.text for t in tokenize("1 2.5 .5 1e3 1.5E-2 2e+10")[:-1]]
        assert texts == ["1", "2.5", ".5", "1e3", "1.5E-2", "2e+10"]

    def test_number_followed_by_dot_call(self):
        # "1.5.foo" style input should not swallow the second dot.
        tokens = kinds("t.x1")
        assert tokens == [
            (TokenType.IDENTIFIER, "t"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENTIFIER, "x1"),
        ]

    def test_e_not_exponent_without_digits(self):
        texts = [t.text for t in tokenize("1e")[:-1]]
        assert texts == ["1", "e"]

    def test_string_literal_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'abc")

    def test_quoted_identifier(self):
        tokens = tokenize('"Group"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].text == "Group"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"abc')

    def test_operators(self):
        texts = [t.text for t in tokenize("a <> b <= c >= d != e || f")[:-1]]
        assert "<>" in texts and "<=" in texts and ">=" in texts
        assert "!=" in texts and "||" in texts

    def test_line_comment(self):
        tokens = kinds("SELECT 1 -- trailing comment\n")
        assert tokens[-1] == (TokenType.NUMBER, "1")

    def test_block_comment(self):
        tokens = kinds("SELECT /* hi */ 1")
        assert tokens == [(TokenType.KEYWORD, "SELECT"), (TokenType.NUMBER, "1")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError, match="block comment"):
            tokenize("SELECT /* oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @x")

    def test_end_token(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_position_reported(self):
        try:
            tokenize("SELECT ?")
        except SqlSyntaxError as exc:
            assert exc.position == 7
        else:  # pragma: no cover
            raise AssertionError("expected SqlSyntaxError")
