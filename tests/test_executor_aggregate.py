"""Aggregation execution: grand totals, GROUP BY, HAVING, DISTINCT, and
row-path vs vector-path equivalence."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema
from repro.errors import PlanningError


@pytest.fixture
def sales(db: Database) -> Database:
    db.execute(
        "CREATE TABLE sales (id INTEGER PRIMARY KEY, region VARCHAR, "
        "amount FLOAT, qty INTEGER)"
    )
    db.execute(
        "INSERT INTO sales VALUES "
        "(1, 'east', 10.0, 1), (2, 'east', 20.0, 2), (3, 'west', 30.0, 3), "
        "(4, 'west', 5.0, 1), (5, 'north', NULL, 2)"
    )
    return db


class TestGrandAggregates:
    def test_sum_count_avg(self, sales):
        result = sales.execute(
            "SELECT sum(amount), count(amount), count(*), avg(amount) FROM sales"
        )
        assert result.rows == [(65.0, 4, 5, 16.25)]

    def test_min_max(self, sales):
        assert sales.execute("SELECT min(amount), max(amount) FROM sales").rows \
            == [(5.0, 30.0)]

    def test_empty_table_yields_one_row(self, db):
        db.execute("CREATE TABLE t (v FLOAT)")
        result = db.execute("SELECT sum(v), count(*), min(v) FROM t")
        assert result.rows == [(None, 0, None)]

    def test_aggregate_with_where(self, sales):
        result = sales.execute("SELECT sum(amount) FROM sales WHERE qty > 1")
        assert result.scalar() == 50.0

    def test_expression_inside_aggregate(self, sales):
        result = sales.execute("SELECT sum(amount * qty) FROM sales")
        assert result.scalar() == 10.0 + 40.0 + 90.0 + 5.0

    def test_expression_over_aggregates(self, sales):
        result = sales.execute(
            "SELECT sum(amount) / count(amount), max(amount) - min(amount) FROM sales"
        )
        assert result.rows == [(16.25, 25.0)]

    def test_nested_aggregate_rejected(self, sales):
        with pytest.raises(PlanningError, match="nested"):
            sales.execute("SELECT sum(max(amount)) FROM sales")

    def test_distinct_count(self, sales):
        assert sales.execute("SELECT count(DISTINCT region) FROM sales").scalar() == 3

    def test_distinct_sum(self, sales):
        sales.execute("INSERT INTO sales VALUES (6, 'east', 10.0, 9)")
        assert sales.execute("SELECT sum(DISTINCT amount) FROM sales").scalar() == 65.0

    def test_corr_aggregate_in_sql(self, sales):
        measured = sales.execute("SELECT corr(amount, qty) FROM sales").scalar()
        amounts = [10.0, 20.0, 30.0, 5.0]
        qtys = [1, 2, 3, 1]
        assert measured == pytest.approx(np.corrcoef(amounts, qtys)[0, 1])


class TestGroupBy:
    def test_group_by_column(self, sales):
        result = sales.execute(
            "SELECT region, sum(amount), count(*) FROM sales "
            "GROUP BY region ORDER BY region"
        )
        assert result.rows == [
            ("east", 30.0, 2), ("north", None, 1), ("west", 35.0, 2),
        ]

    def test_group_by_expression(self, sales):
        result = sales.execute(
            "SELECT qty MOD 2, count(*) FROM sales GROUP BY qty MOD 2 ORDER BY 1"
        )
        assert result.rows == [(0, 2), (1, 3)]

    def test_group_key_reused_in_expression(self, sales):
        result = sales.execute(
            "SELECT region, region, sum(qty) FROM sales "
            "GROUP BY region ORDER BY region LIMIT 1"
        )
        assert result.rows == [("east", "east", 3)]

    def test_having(self, sales):
        result = sales.execute(
            "SELECT region, sum(amount) AS total FROM sales GROUP BY region "
            "HAVING sum(amount) > 30 ORDER BY region"
        )
        assert result.rows == [("west", 35.0)]

    def test_having_without_group_rejected(self, sales):
        with pytest.raises(PlanningError, match="HAVING"):
            sales.execute("SELECT id FROM sales HAVING id > 1")

    def test_ungrouped_column_rejected(self, sales):
        with pytest.raises(PlanningError, match="GROUP BY"):
            sales.execute("SELECT id, sum(amount) FROM sales GROUP BY region")

    def test_group_by_without_aggregates(self, sales):
        result = sales.execute(
            "SELECT region FROM sales GROUP BY region ORDER BY region"
        )
        assert result.column("region") == ["east", "north", "west"]

    def test_group_by_multiple_keys(self, sales):
        result = sales.execute(
            "SELECT region, qty MOD 2, count(*) FROM sales "
            "GROUP BY region, qty MOD 2 ORDER BY region, 2"
        )
        assert ("east", 0, 1) in result.rows and ("east", 1, 1) in result.rows

    def test_group_by_null_key(self, sales):
        sales.execute("INSERT INTO sales VALUES (7, NULL, 1.0, 1)")
        result = sales.execute(
            "SELECT region, count(*) FROM sales GROUP BY region"
        )
        keys = [row[0] for row in result.rows]
        assert None in keys


class TestOrderByWithAggregates:
    def test_order_by_selected_aggregate_alias(self, sales):
        result = sales.execute(
            "SELECT region, sum(amount) AS total FROM sales "
            "GROUP BY region ORDER BY total DESC"
        )
        totals = [row[1] for row in result.rows if row[1] is not None]
        assert totals == sorted(totals, reverse=True)

    def test_order_by_unselected_aggregate(self, sales):
        """ORDER BY an aggregate expression that is not in the select
        list — resolved through the aggregation rewrite."""
        result = sales.execute(
            "SELECT region FROM sales GROUP BY region ORDER BY count(*) DESC, region"
        )
        assert result.column("region")[0] in ("east", "west")

    def test_order_by_aggregate_expression(self, sales):
        result = sales.execute(
            "SELECT region, sum(qty) FROM sales GROUP BY region "
            "ORDER BY sum(qty) * -1"
        )
        quantities = [row[1] for row in result.rows]
        assert quantities == sorted(quantities, reverse=True)

    def test_order_by_invalid_column_in_aggregate_query(self, sales):
        with pytest.raises(PlanningError):
            sales.execute(
                "SELECT region, sum(qty) FROM sales GROUP BY region "
                "ORDER BY amount"
            )

    def test_limit_after_aggregate_order(self, sales):
        result = sales.execute(
            "SELECT region, sum(qty) FROM sales GROUP BY region "
            "ORDER BY 2 DESC LIMIT 1"
        )
        assert len(result.rows) == 1
        assert result.rows[0][0] == "west"


class TestVectorRowEquivalence:
    """The vectorized aggregation fast path must match per-row results."""

    def _make(self, amps: int) -> Database:
        database = Database(amps=amps)
        rng = np.random.default_rng(3)
        n = 300
        database.create_table("x", dataset_schema(3))
        database.load_columns(
            "x",
            {
                "i": np.arange(1, n + 1),
                "x1": rng.normal(10, 3, n),
                "x2": rng.uniform(-1, 1, n),
                "x3": rng.normal(0, 1, n),
            },
        )
        return database

    def test_grand_totals_match(self):
        # The vector path triggers on the plain scan; adding a WHERE
        # clause forces the row path. Both must agree.
        database = self._make(amps=4)
        sql_fast = "SELECT sum(x1), sum(x1 * x2), min(x3), max(x3), count(*) FROM x"
        sql_slow = sql_fast + " WHERE 1 = 1"
        fast = database.execute(sql_fast).rows[0]
        slow = database.execute(sql_slow).rows[0]
        assert fast[:4] == pytest.approx(slow[:4])
        assert fast[4] == slow[4]

    def test_group_totals_match(self):
        database = self._make(amps=4)
        fast = database.execute(
            "SELECT i MOD 5, sum(x1), count(*) FROM x GROUP BY i MOD 5 ORDER BY 1"
        ).rows
        slow = database.execute(
            "SELECT i MOD 5, sum(x1), count(*) FROM x WHERE 1 = 1 "
            "GROUP BY i MOD 5 ORDER BY 1"
        ).rows
        for fast_row, slow_row in zip(fast, slow):
            assert fast_row[0] == slow_row[0]
            assert fast_row[1] == pytest.approx(slow_row[1])
            assert fast_row[2] == slow_row[2]

    def test_single_amp_matches_many(self):
        one = self._make(amps=1)
        many = self._make(amps=7)
        sql = "SELECT sum(x1 * x3), var_pop(x2) FROM x"
        row_one = one.execute(sql).rows[0]
        row_many = many.execute(sql).rows[0]
        assert row_one == pytest.approx(row_many)
