"""The pivot primitive: tall (id, key, value) → wide X."""

import numpy as np
import pytest

from repro.core.pivot import discover_keys, pivot, pivot_sql
from repro.dbms.database import Database
from repro.errors import PlanningError


@pytest.fixture
def tall(db: Database) -> Database:
    db.execute(
        "CREATE TABLE attrs (rid INTEGER PRIMARY KEY, i INTEGER, "
        "attr VARCHAR, val FLOAT)"
    )
    rows = [
        (1, 1, "height", 180.0),
        (2, 1, "weight", 75.0),
        (3, 2, "height", 165.0),
        (4, 2, "weight", 60.0),
        (5, 2, "age", 41.0),
        (6, 3, "height", 172.0),  # id 3 has no weight or age
    ]
    db.insert_rows("attrs", rows)
    return db


class TestDiscovery:
    def test_discover_keys_sorted(self, tall):
        assert discover_keys(tall, "attrs", "attr") == [
            "age", "height", "weight",
        ]

    def test_discover_empty_table(self, db):
        db.execute("CREATE TABLE e (i INTEGER, attr VARCHAR, val FLOAT)")
        with pytest.raises(PlanningError):
            discover_keys(db, "e", "attr")


class TestSqlGeneration:
    def test_one_scan_shape(self, tall):
        sql = pivot_sql("attrs", "i", "attr", "val", ["height", "weight"])
        assert sql.count("FROM attrs") == 1
        assert sql.count("CASE WHEN") == 2
        assert "GROUP BY i" in sql

    def test_quote_escaping(self):
        sql = pivot_sql("t", "i", "k", "v", ["o'brien"], column_names=["ob"])
        assert "'o''brien'" in sql

    def test_invalid_aggregate(self):
        with pytest.raises(PlanningError):
            pivot_sql("t", "i", "k", "v", ["a"], aggregate="median")

    def test_bad_column_name(self):
        with pytest.raises(Exception):
            pivot_sql("t", "i", "k", "v", ["not a name"])

    def test_duplicate_columns(self):
        with pytest.raises(PlanningError, match="duplicate"):
            pivot_sql("t", "i", "k", "v", ["a", "a"])

    def test_name_count_mismatch(self):
        with pytest.raises(PlanningError):
            pivot_sql("t", "i", "k", "v", ["a", "b"], column_names=["only"])


class TestExecution:
    def test_values_and_missing_as_null(self, tall):
        result = pivot(tall, "attrs", "i", "attr", "val")
        assert result.columns == ["i", "age", "height", "weight"]
        assert result.rows == [
            (1, None, 180.0, 75.0),
            (2, 41.0, 165.0, 60.0),
            (3, None, 172.0, None),
        ]

    def test_explicit_keys_subset(self, tall):
        result = pivot(tall, "attrs", "i", "attr", "val", keys=["height"])
        assert result.columns == ["i", "height"]
        assert [row[1] for row in result.rows] == [180.0, 165.0, 172.0]

    def test_duplicate_keys_aggregated(self, tall):
        tall.execute("INSERT INTO attrs VALUES (7, 1, 'height', 999.0)")
        via_max = pivot(tall, "attrs", "i", "attr", "val", keys=["height"])
        assert via_max.rows[0][1] == 999.0
        via_sum = pivot(
            tall, "attrs", "i", "attr", "val", keys=["height"], aggregate="sum"
        )
        assert via_sum.rows[0][1] == 180.0 + 999.0

    def test_materialize_into_table(self, tall):
        pivot(
            tall, "attrs", "i", "attr", "val",
            keys=["height", "weight"], into="wide",
        )
        table = tall.table("wide")
        assert table.schema.primary_key == "i"
        assert table.row_count == 3

    def test_pivoted_table_feeds_nlq(self, tall):
        """EAV → wide → summary: the full data-prep pipeline."""
        from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
        from repro.core.summary import SummaryStatistics

        pivot(
            tall, "attrs", "i", "attr", "val",
            keys=["height", "weight"], into="wide",
        )
        register_nlq_udfs(tall)
        stats = compute_nlq_udf(tall, "wide", ["height", "weight"])
        # Row 3 has a NULL weight and is skipped, as the UDF specifies.
        reference = SummaryStatistics.from_matrix(
            np.asarray([[180.0, 75.0], [165.0, 60.0]])
        )
        assert stats.allclose(reference)

    def test_rematerialize_replaces(self, tall):
        pivot(tall, "attrs", "i", "attr", "val", keys=["height"], into="wide")
        pivot(tall, "attrs", "i", "attr", "val", keys=["height"], into="wide")
        assert tall.table("wide").row_count == 3
