"""Predicate pushdown into derived tables (optimizer rule 3)."""

import pytest

from repro.dbms.database import Database
from repro.dbms.sql import ast
from repro.dbms.sql.optimizer import QueryOptimizer
from repro.dbms.sql.parser import parse_statement


@pytest.fixture
def pushdown_db(db: Database) -> Database:
    db.execute("CREATE TABLE base (i INTEGER PRIMARY KEY, v FLOAT, g INTEGER)")
    db.insert_rows(
        "base", [(i, float(i) * 1.5, i % 3) for i in range(1, 101)]
    )
    return db


def optimize(db, sql):
    return QueryOptimizer(db.catalog).optimize(parse_statement(sql))


class TestPushdown:
    SQL = (
        "SELECT s.i, s.doubled FROM "
        "(SELECT i, v * 2 AS doubled FROM base) s "
        "WHERE s.doubled > 100"
    )

    def test_conjunct_moves_inside(self, pushdown_db):
        report = optimize(pushdown_db, self.SQL)
        assert report.pushed_predicates == ["(s.doubled > 100)"]
        source = report.optimized.from_sources[0]
        assert isinstance(source, ast.DerivedTable)
        assert source.select.where is not None
        assert report.optimized.where is None

    def test_alias_substituted_by_inner_expression(self, pushdown_db):
        report = optimize(pushdown_db, self.SQL)
        inner_where = report.optimized.from_sources[0].select.where
        # s.doubled > 100 became (v * 2) > 100 inside.
        assert "v * 2" in ast.render(inner_where)

    def test_results_identical(self, pushdown_db):
        plain = pushdown_db.execute(self.SQL + " ORDER BY s.i")
        optimized = pushdown_db.execute_optimized(self.SQL + " ORDER BY s.i")
        assert plain.rows == optimized.rows
        assert len(plain.rows) > 0

    def test_simulated_time_reduced(self, pushdown_db):
        plain = pushdown_db.execute(self.SQL).simulated_seconds
        optimized = pushdown_db.execute_optimized(self.SQL).simulated_seconds
        assert optimized < plain

    def test_mixed_conjuncts_split(self, pushdown_db):
        pushdown_db.execute("CREATE TABLE other (i INTEGER PRIMARY KEY, w FLOAT)")
        pushdown_db.insert_rows("other", [(i, float(i)) for i in range(1, 101)])
        sql = (
            "SELECT s.i FROM (SELECT i, v FROM base) s "
            "JOIN other o ON o.i = s.i "
            "WHERE s.v > 10 AND o.w < 50"
        )
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == ["(s.v > 10)"]
        assert report.optimized.where is not None  # o.w < 50 stays outside
        plain = pushdown_db.execute(sql + " ORDER BY s.i").rows
        fast = pushdown_db.execute_optimized(sql + " ORDER BY s.i").rows
        assert plain == fast


class TestSafetyGuards:
    def test_grouped_inner_not_pushed(self, pushdown_db):
        sql = (
            "SELECT s.g FROM "
            "(SELECT g, sum(v) AS total FROM base GROUP BY g) s "
            "WHERE s.total > 50"
        )
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []
        # Still runs correctly either way.
        assert pushdown_db.execute(sql).rows == \
            pushdown_db.execute_optimized(sql).rows

    def test_limit_inner_not_pushed(self, pushdown_db):
        sql = (
            "SELECT s.i FROM (SELECT i, v FROM base ORDER BY v DESC LIMIT 10) s "
            "WHERE s.v > 0"
        )
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []
        assert sorted(pushdown_db.execute(sql).rows) == sorted(
            pushdown_db.execute_optimized(sql).rows
        )

    def test_cross_source_conjunct_not_pushed(self, pushdown_db):
        sql = (
            "SELECT a.i FROM (SELECT i, v FROM base) a, "
            "(SELECT i, v FROM base) b WHERE a.v > b.v"
        )
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []

    def test_unqualified_reference_not_pushed(self, pushdown_db):
        sql = "SELECT s.i FROM (SELECT i, v FROM base) s WHERE v > 10"
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []

    def test_outer_join_derived_not_pushed(self, pushdown_db):
        pushdown_db.execute("CREATE TABLE r (i INTEGER PRIMARY KEY)")
        pushdown_db.insert_rows("r", [(i,) for i in range(1, 5)])
        # Pushing into the right side of a LEFT JOIN changes which rows
        # get NULL-padded: must stay outside.
        sql = (
            "SELECT r.i FROM r LEFT JOIN (SELECT i, v FROM base) s "
            "ON s.i = r.i WHERE s.v > 2"
        )
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []

    def test_star_inner_not_pushed(self, pushdown_db):
        sql = "SELECT s.i FROM (SELECT * FROM base) s WHERE s.v > 10"
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []

    def test_udf_predicate_not_pushed(self, pushdown_db):
        from repro.dbms.udf import scalar_udf

        pushdown_db.register_udf(scalar_udf("keep", lambda v: v, arity=1))
        sql = "SELECT s.i FROM (SELECT i, v FROM base) s WHERE keep(s.v) > 10"
        report = optimize(pushdown_db, sql)
        assert report.pushed_predicates == []
