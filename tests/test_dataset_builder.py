"""The dataset builder: deriving X from normalized tables (§3.6)."""

import numpy as np
import pytest

from repro.core.dataset_builder import DatasetBuilder
from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
from repro.core.summary import SummaryStatistics
from repro.dbms.database import Database
from repro.errors import PlanningError


@pytest.fixture
def warehouse(db: Database) -> Database:
    db.execute("CREATE TABLE customers (i INTEGER PRIMARY KEY, age FLOAT)")
    db.execute(
        "INSERT INTO customers VALUES (1, 30.0), (2, 45.0), (3, 61.0), (4, 25.0)"
    )
    db.execute(
        "CREATE TABLE txn (tid INTEGER PRIMARY KEY, cust INTEGER, "
        "amount FLOAT, kind VARCHAR)"
    )
    db.execute(
        "INSERT INTO txn VALUES "
        "(1, 1, 10.0, 'buy'), (2, 1, 20.0, 'buy'), (3, 1, 0.0, 'complaint'), "
        "(4, 2, 50.0, 'buy'), (5, 4, 0.0, 'complaint')"
    )
    db.execute("CREATE TABLE premium (i INTEGER PRIMARY KEY, level FLOAT)")
    db.execute("INSERT INTO premium VALUES (2, 2.0)")
    return db


def standard_builder() -> DatasetBuilder:
    builder = DatasetBuilder("customers", "i")
    builder.add_property("age", "customers", "age")
    builder.add_property("level", "premium", "level", default=0.0)
    builder.add_metric("spend", "txn", "sum", "amount",
                       condition="kind = 'buy'", join_column="cust")
    builder.add_metric("purchases", "txn", "count", "amount",
                       condition="kind = 'buy'", join_column="cust")
    builder.add_flag("complained", "txn", "kind = 'complaint'",
                     join_column="cust")
    return builder


EXPECTED = {
    # i: (age, level, spend, purchases, complained)
    1: (30.0, 0.0, 30.0, 3.0, 1.0),
    2: (45.0, 2.0, 50.0, 1.0, 0.0),
    3: (61.0, 0.0, 0.0, 0.0, 0.0),   # no transactions at all
    4: (25.0, 0.0, 0.0, 1.0, 1.0),   # only a complaint
}


class TestDeclaration:
    def test_feature_order(self):
        builder = standard_builder()
        assert builder.feature_names == [
            "age", "level", "spend", "purchases", "complained",
        ]

    def test_duplicate_name_rejected(self):
        builder = DatasetBuilder("customers")
        builder.add_property("age", "customers", "age")
        with pytest.raises(PlanningError, match="duplicate"):
            builder.add_flag("age", "txn", "1 = 1")

    def test_empty_builder_rejected(self):
        with pytest.raises(PlanningError, match="no features"):
            DatasetBuilder("customers").build_sql()

    def test_bad_aggregate_rejected(self):
        with pytest.raises(PlanningError, match="aggregate"):
            DatasetBuilder("customers").add_metric("m", "txn", "median")


class TestGeneratedSql:
    def test_uses_left_joins(self):
        sql = standard_builder().build_sql()
        assert "LEFT JOIN" in sql
        assert sql.count("LEFT JOIN") == 3  # premium + txn subquery + customers prop

    def test_detail_table_scanned_once(self):
        """All txn metrics and flags share one pre-aggregated subquery —
        the group-by-before-join shape."""
        sql = standard_builder().build_sql()
        assert sql.count("FROM txn") == 1

    def test_case_for_conditional_metric(self):
        sql = standard_builder().build_sql()
        assert "CASE WHEN kind = 'buy' THEN amount ELSE 0.0 END" in sql


class TestMaterialization:
    def test_values(self, warehouse):
        builder = standard_builder()
        names = builder.materialize(warehouse, "x")
        rows = {
            row[0]: row[1:]
            for row in warehouse.execute("SELECT * FROM x").rows
        }
        assert names == builder.feature_names
        for i, expected in EXPECTED.items():
            assert rows[i] == pytest.approx(expected), f"customer {i}"

    def test_view_route_matches_table_route(self, warehouse):
        builder = standard_builder()
        builder.materialize(warehouse, "x_table")
        builder.create_view(warehouse, "x_view")
        table_rows = sorted(warehouse.execute("SELECT * FROM x_table").rows)
        view_rows = sorted(warehouse.execute("SELECT * FROM x_view").rows)
        assert table_rows == view_rows

    def test_universe_preserved(self, warehouse):
        """Every reference point appears exactly once, even with no
        detail rows (the paper's left-outer-join requirement)."""
        standard_builder().materialize(warehouse, "x")
        ids = warehouse.execute("SELECT i FROM x ORDER BY i").column("i")
        assert ids == [1, 2, 3, 4]

    def test_rematerialize_replaces(self, warehouse):
        builder = standard_builder()
        builder.materialize(warehouse, "x")
        builder.materialize(warehouse, "x")
        assert warehouse.table("x").row_count == 4

    def test_feeds_the_nlq_udf(self, warehouse):
        """The end-to-end point: the derived table is a valid X for the
        summary pipeline."""
        builder = standard_builder()
        names = builder.materialize(warehouse, "x")
        register_nlq_udfs(warehouse)
        stats = compute_nlq_udf(warehouse, "x", names)
        reference = SummaryStatistics.from_matrix(
            np.asarray([EXPECTED[i] for i in (1, 2, 3, 4)])
        )
        assert stats.allclose(reference)
