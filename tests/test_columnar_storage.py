"""The on-disk columnar block format and the block store.

Covers :mod:`repro.dbms.columnar` (exact round trips through the
numeric lanes and the object sidecar, zero-copy mmap reads, corruption
rejection, atomic writes) and :class:`ColumnarStore` (idempotent
publish, version GC, forget), plus the ``Database``-level block-cache
knobs the store's spill tier rides on: entry capacity, shared byte
budget, spill-to-disk with bit-identical reloads, and the EXPLAIN /
QueryMetrics surfaces that report it all.
"""

import pickle

import numpy as np
import pytest

from repro.dbms.columnar import (
    BlockReader,
    ColumnarStore,
    atomic_write_bytes,
    encode_block,
)
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.dbms.storage import BLOCK_CACHE_CAPACITY, BlockCacheConfig
from repro.errors import ExportError, SchemaError


def _write_block(tmp_path, columns, name="block.blk"):
    path = tmp_path / name
    atomic_write_bytes(path, encode_block(columns))
    return BlockReader(path)


# ---------------------------------------------------------- block format
class TestBlockFormat:
    def test_int_and_float_lanes_round_trip_exactly(self, tmp_path):
        ints = [1, -5, 2**62, 0]
        floats = [0.1, -1e300, 5e-324, 0.0]
        reader = _write_block(tmp_path, [ints, floats])
        assert reader.column_values(0) == ints
        assert reader.column_values(1) == floats
        assert all(type(v) is int for v in reader.column_values(0))
        assert all(type(v) is float for v in reader.column_values(1))
        reader.close()

    def test_nulls_round_trip_in_numeric_lanes(self, tmp_path):
        ints = [None, 2, None, 4, 5]
        floats = [1.5, None, 3.5, None, None]
        reader = _write_block(tmp_path, [ints, floats])
        assert reader.column_values(0) == ints
        assert reader.column_values(1) == floats
        reader.close()

    def test_exactness_rules_route_to_object_sidecar(self, tmp_path):
        # bool is an int subclass, oversize ints overflow int64, strings
        # and mixed columns have no lane: all must come back
        # type-preserving via the pickled sidecar.
        bools = [True, False, True]
        oversize = [2**63, 1, 2]
        strings = ["a", None, "c"]
        mixed = [1, "two", 3.0]
        reader = _write_block(tmp_path, [bools, oversize, strings, mixed])
        assert reader.column_values(0) == bools
        assert all(type(v) is bool for v in reader.column_values(0))
        assert reader.column_values(1) == oversize
        assert reader.column_values(2) == strings
        values = reader.column_values(3)
        assert values == mixed
        assert [type(v) for v in values] == [int, str, float]
        reader.close()

    def test_row_tuples_matches_column_zip(self, tmp_path):
        columns = [[1, 2, 3], ["x", "y", None], [0.5, None, 2.5]]
        reader = _write_block(tmp_path, columns)
        assert reader.row_tuples() == list(zip(*columns))
        reader.close()

    def test_empty_block(self, tmp_path):
        reader = _write_block(tmp_path, [[], []])
        assert reader.rows == 0
        assert reader.row_tuples() == []
        assert reader.column_values(0) == []
        reader.close()

    def test_float_column_null_becomes_nan(self, tmp_path):
        reader = _write_block(tmp_path, [[1.0, None, 3.0], [1, None, 3]])
        for position in (0, 1):
            out = reader.float_column(position)
            assert out[0] == 1.0 and out[2] == 3.0
            assert np.isnan(out[1])
        reader.close()

    def test_float_matrix_matches_partition_numeric_matrix(self, tmp_path):
        rng = np.random.default_rng(3)
        a = rng.normal(size=11).tolist()
        b = [None if i % 4 == 0 else float(i) for i in range(11)]
        reader = _write_block(tmp_path, [a, b])
        expected = np.column_stack(
            [
                np.asarray(a, dtype=float),
                np.asarray(
                    [np.nan if v is None else v for v in b], dtype=float
                ),
            ]
        )
        np.testing.assert_array_equal(
            reader.float_matrix([0, 1]), expected
        )
        reader.close()

    def test_non_null_float_lane_is_zero_copy_and_read_only(self, tmp_path):
        reader = _write_block(tmp_path, [[1.5, 2.5, 3.5]])
        lane = reader.float_column(0)
        # A view over the mapped pages: no copy was made, and the
        # mapping is read-only so the view cannot be scribbled on.
        assert lane.base is not None
        assert not lane.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            lane[0] = 9.0
        reader.close()

    def test_reader_rejects_non_block_file(self, tmp_path):
        path = tmp_path / "junk.blk"
        path.write_bytes(b"not a columnar block at all")
        with pytest.raises(ExportError, match="not a columnar block"):
            BlockReader(path)

    def test_reader_rejects_missing_file(self, tmp_path):
        with pytest.raises(ExportError, match="cannot map block"):
            BlockReader(tmp_path / "absent.blk")

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ExportError, match="differ in length"):
            encode_block([[1, 2], [1]])

    def test_atomic_write_leaves_no_temp_sibling(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [path]


# ------------------------------------------------------------ block store
def _loaded_db(n=60, workers=1, **kwargs):
    rng = np.random.default_rng(11)
    d = 2
    db = Database(amps=4, executor_workers=workers, **kwargs)
    db.create_table("x", dataset_schema(d, with_y=True))
    columns = {"i": np.arange(1, n + 1), "y": rng.normal(size=n)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = rng.normal(50.0, 10.0, size=n)
    db.load_columns("x", columns)
    return db


class TestColumnarStore:
    def test_publish_is_idempotent_per_version(self, tmp_path):
        with _loaded_db() as db:
            store = ColumnarStore(tmp_path / "blocks")
            table = db.catalog.table("x")
            first = store.publish(table)
            assert first["fresh"] is True
            assert first["partitions"]  # non-empty partitions listed
            written = store.blocks_written
            assert written == len(first["partitions"])
            second = store.publish(table)
            assert second["fresh"] is False
            assert store.blocks_written == written  # nothing rewritten
            assert second["version"] == first["version"]

    def test_descriptor_is_plain_and_tiny(self, tmp_path):
        # The whole point of the block store: task submission ships a
        # descriptor, never data.  It must pickle small no matter how
        # large the table is.
        with _loaded_db(n=500) as db:
            store = ColumnarStore(tmp_path / "blocks")
            descriptor = store.publish(db.catalog.table("x"))
            assert len(pickle.dumps(descriptor)) < 512

    def test_blocks_round_trip_partition_rows(self, tmp_path):
        with _loaded_db() as db:
            store = ColumnarStore(tmp_path / "blocks")
            table = db.catalog.table("x")
            published = store.publish(table)
            for pid in published["partitions"]:
                reader = BlockReader(
                    store.block_path(
                        published["table"], published["version"], pid
                    )
                )
                assert reader.row_tuples() == list(
                    table.partitions[pid].rows()
                )
                reader.close()

    def test_mutation_bumps_version_and_gc_keeps_two(self, tmp_path):
        with _loaded_db() as db:
            store = ColumnarStore(tmp_path / "blocks")
            table = db.catalog.table("x")
            versions = []
            for step in range(4):
                db.execute(
                    f"INSERT INTO x (i, x1, x2, y) "
                    f"VALUES ({1000 + step}, 1.0, 2.0, 3.0)"
                )
                versions.append(store.publish(table)["version"])
            assert versions == sorted(set(versions))  # strictly grows
            kept = sorted(
                entry.name for entry in store.table_dir("x").iterdir()
            )
            assert len(kept) == 2  # _KEEP_VERSIONS
            assert kept[-1] == f"v{versions[-1]}"

    def test_forget_drops_directory_and_republish_recreates(self, tmp_path):
        with _loaded_db() as db:
            store = ColumnarStore(tmp_path / "blocks")
            table = db.catalog.table("x")
            store.publish(table)
            assert store.table_dir("x").exists()
            store.forget("x")
            assert not store.table_dir("x").exists()
            assert store.publish(table)["fresh"] is True


# ------------------------------------------------- database cache knobs
class TestDatabaseCacheKnobs:
    def test_default_capacity_unchanged(self):
        with _loaded_db() as db:
            assert db.block_cache_config is None  # historic default
        assert BLOCK_CACHE_CAPACITY == 8

    def test_entry_capacity_knob_installed_on_all_tables(self):
        with _loaded_db(block_cache_entries=2) as db:
            config = db.block_cache_config
            assert config is not None and config.max_entries == 2
            table = db.catalog.table("x")
            assert table.cache_config is config
            assert all(
                p.cache_config is config for p in table.partitions
            )
            # Tables created after the knob inherit it too.
            db.create_table("later", dataset_schema(1))
            assert db.catalog.table("later").cache_config is config

    def test_capacity_must_be_positive(self):
        with pytest.raises(SchemaError, match=">= 1 entry"):
            BlockCacheConfig(max_entries=0)
        with pytest.raises(SchemaError, match="byte budget"):
            BlockCacheConfig(max_bytes=0)

    def test_byte_budget_spills_and_reloads_bit_identically(self):
        sql = "SELECT sum(x1 * x1 + x2), count(*) FROM x"
        with _loaded_db(n=400) as db:
            expected = db.execute(sql).rows
        # A budget far below one partition's float block forces every
        # insert over budget: evictions spill, reloads must not change
        # one bit of the answer.
        with _loaded_db(n=400, block_cache_bytes=256) as db:
            first = db.execute(sql)
            assert first.rows == expected
            assert first.metrics.cache_evictions > 0
            assert first.metrics.blocks_spilled > 0
            assert first.metrics.bytes_spilled > 0
            again = db.execute(sql)
            assert again.rows == expected

    def test_spill_reload_counts_as_hit(self):
        with _loaded_db(n=200, block_cache_bytes=256) as db:
            table = db.catalog.table("x")
            partition = next(
                p for p in table.partitions if p.row_count
            )
            block, stats = partition.numeric_matrix_with_cache_stats(
                [1, 2]
            )
            assert not stats.hit
            assert stats.spilled_blocks >= 1  # over budget immediately
            reloaded, stats2 = partition.numeric_matrix_with_cache_stats(
                [1, 2]
            )
            assert stats2.hit  # served from the disk tier
            np.testing.assert_array_equal(np.asarray(reloaded), block)

    def test_mutation_unlinks_spill_files(self):
        with _loaded_db(n=200, block_cache_bytes=256) as db:
            db.execute("SELECT sum(x1), count(*) FROM x")
            table = db.catalog.table("x")
            spilled = [
                path
                for p in table.partitions
                for path in p._spilled.values()
            ]
            assert spilled and all(path.exists() for path in spilled)
            # Truncate invalidates every partition: all spill files go.
            table.truncate()
            assert all(not path.exists() for path in spilled)
            assert all(not p._spilled for p in table.partitions)

    def test_explain_notes_budget_and_analyze_notes_spills(self):
        with _loaded_db(n=200, block_cache_bytes=256) as db:
            plain = db.explain_plan("SELECT sum(x1), count(*) FROM x")
            assert "block cache budget 256 bytes" in plain.text()
            analyzed = db.explain_plan(
                "SELECT sum(x1), count(*) FROM x", analyze=True
            )
            assert "spilled" in analyzed.text()
        with _loaded_db(n=200) as db:
            plain = db.explain_plan("SELECT sum(x1), count(*) FROM x")
            assert "block cache budget" not in plain.text()
