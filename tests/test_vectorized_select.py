"""Block-wise (vectorized) SELECT execution.

The invariant everything here guards: the vectorized path is a pure
wall-clock optimization — for every query it accepts it must return
**exactly** the row path's rows, in the row path's order, with the row
path's Python types (floats stay floats bit for bit, argmin/argmax
subscripts stay ints, NULLs stay None).  Hypothesis drives the parity
checks over NULL-riddled data for all six scoring UDFs and for WHERE
predicates with three-valued logic; further tests pin the plan-shape
("scoring is one scan"), the EXPLAIN strategy notes, the per-task
ANALYZE spans, the block-cache metrics and LRU cap, the persistent
engine pool, and the batched ``insert_many`` routing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.engine import PartitionEngine
from repro.dbms.schema import TableSchema
from repro.dbms.storage import BLOCK_CACHE_CAPACITY, Partition, Table
from repro.dbms.types import SqlType
from repro.errors import ConstraintViolation

# ------------------------------------------------------------------ helpers
_finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_cell = st.one_of(st.none(), _finite)


def _rows(d: int, max_rows: int = 40):
    return st.lists(
        st.tuples(*[_cell] * d), min_size=0, max_size=max_rows
    )


def _params(d: int):
    return st.lists(_finite, min_size=d, max_size=d)


def make_db(rows, d: int, workers: int = 2) -> Database:
    db = Database(amps=4, executor_workers=workers)
    register_scoring_udfs(db)
    cols = ", ".join(f"x{a + 1} FLOAT" for a in range(d))
    db.execute(f"CREATE TABLE x (i INTEGER PRIMARY KEY, {cols})")
    db.insert_rows("x", [(index, *row) for index, row in enumerate(rows)])
    return db


def both_paths(db: Database, sql: str):
    """(row-path result, vector-path result) for the same statement."""
    db.vectorized_select = False
    row = db.execute(sql)
    db.vectorized_select = True
    vector = db.execute(sql)
    return row, vector


def assert_parity(db: Database, sql: str, expect_vectorized: bool = True):
    row, vector = both_paths(db, sql)
    assert row.columns == vector.columns
    assert row.rows == vector.rows  # same rows, same order, same types
    if expect_vectorized:
        assert "strategy: vectorized-scan" in db.explain(sql)
    return row, vector


GEN3 = ScoringSqlGenerator("x", ["x1", "x2", "x3"])


# ------------------------------------------------- scoring UDF parity (all 6)
class TestScoringUdfParity:
    @given(rows=_rows(3), intercept=_finite, coefficients=_params(3))
    @settings(max_examples=30, deadline=None)
    def test_linearregscore(self, rows, intercept, coefficients):
        db = make_db(rows, 3)
        sql = GEN3.regression_inline_sql(intercept, coefficients)
        assert_parity(db, sql)

    @given(rows=_rows(3), mu=_params(3), components=st.lists(_params(3), min_size=1, max_size=2))
    @settings(max_examples=30, deadline=None)
    def test_fascore(self, rows, mu, components):
        db = make_db(rows, 3)
        sql = GEN3.pca_inline_sql(mu, components)
        assert_parity(db, sql)

    @given(rows=_rows(3), centroids=st.lists(_params(3), min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_kmeansdistance_and_clusterscore(self, rows, centroids):
        db = make_db(rows, 3)
        sql = GEN3.clustering_inline_sql(centroids)
        _, vector = assert_parity(db, sql)
        for _, j in vector.rows:
            assert j is None or isinstance(j, int)

    @given(
        rows=_rows(3),
        means=st.lists(_params(3), min_size=2, max_size=2),
        inverse_variances=st.lists(_params(3), min_size=2, max_size=2),
        biases=_params(2),
    )
    @settings(max_examples=30, deadline=None)
    def test_nbscore_and_classifyscore(
        self, rows, means, inverse_variances, biases
    ):
        db = make_db(rows, 3)
        sql = GEN3.naive_bayes_inline_sql(means, inverse_variances, biases)
        _, vector = assert_parity(db, sql)
        for _, idx in vector.rows:
            assert idx is None or isinstance(idx, int)

    @given(rows=_rows(2))
    @settings(max_examples=20, deadline=None)
    def test_bare_nbscore_floats(self, rows):
        db = make_db(rows, 2)
        sql = (
            "SELECT t.i, nbscore(t.x1, t.x2, 0.5, -0.25, 2.0, 0.125, 1.5) "
            "AS s FROM x t"
        )
        assert_parity(db, sql)


# --------------------------------------------------- WHERE predicates / NULLs
PREDICATES = [
    "t.x1 > 0",
    "t.x1 > 0 AND t.x2 <= 1.5",
    "t.x1 > 0 OR t.x2 > 0",
    "NOT (t.x1 = t.x2)",
    "t.x1 IS NULL",
    "t.x1 IS NOT NULL AND t.x2 IS NOT NULL",
    "t.x1 + t.x2 > t.x3",
    "NOT (t.x1 IS NULL) OR t.x2 <> 0",
    "t.x1 * 2.0 >= t.x2 - 1.0",
]


class TestWherePredicateParity:
    @pytest.mark.parametrize("predicate", PREDICATES)
    @given(rows=_rows(3))
    @settings(max_examples=15, deadline=None)
    def test_three_valued_logic_parity(self, predicate, rows):
        db = make_db(rows, 3)
        sql = f"SELECT t.i, t.x1 FROM x t WHERE {predicate}"
        assert_parity(db, sql)

    @given(rows=_rows(3), intercept=_finite, coefficients=_params(3))
    @settings(max_examples=20, deadline=None)
    def test_filtered_scoring(self, rows, intercept, coefficients):
        db = make_db(rows, 3)
        sql = (
            GEN3.regression_inline_sql(intercept, coefficients)
            + " WHERE t.x2 IS NOT NULL AND t.x1 > 0"
        )
        assert_parity(db, sql)

    def test_filter_before_project(self):
        # sqrt of filtered-out negatives must not raise: the block path,
        # like the row path, filters first and projects after.
        db = make_db([(4.0, 1.0, 1.0), (-9.0, 1.0, 1.0)], 3)
        sql = "SELECT t.i, sqrt(t.x1) AS r FROM x t WHERE t.x1 >= 0"
        row, vector = assert_parity(db, sql)
        assert vector.rows == [(0, 2.0)]


# ----------------------------------------------------- plan shape and EXPLAIN
class TestPlanAndExplain:
    def setup_method(self):
        rows = [(float(i), float(i) * 0.5, 1.0 - i) for i in range(50)]
        self.db = make_db(rows, 3)
        self.sql = GEN3.regression_inline_sql(0.5, [1.0, -2.0, 0.25])

    def test_scoring_is_exactly_one_scan(self):
        plan = self.db.explain_plan(self.sql)
        assert len(plan.scans) == 1

    def test_project_note_reports_vectorized_scan(self):
        plan = self.db.explain_plan(self.sql)
        (project,) = plan.find("project")
        notes = "\n".join(project.notes)
        assert "strategy: vectorized-scan" in notes
        assert "batched UDFs: linearregscore" in notes

    def test_toggle_off_reports_row_scan(self):
        self.db.vectorized_select = False
        plan = self.db.explain_plan(self.sql)
        (project,) = plan.find("project")
        assert any(
            "strategy: row-scan (vectorized SELECT disabled)" in note
            for note in project.notes
        )
        self.db.vectorized_select = True

    def test_fallback_reason_for_integer_arithmetic(self):
        plan = self.db.explain_plan("SELECT t.i + 1 FROM x t")
        (project,) = plan.find("project")
        assert any("strategy: row-scan" in note for note in project.notes)
        assert any("yields integers" in note for note in project.notes)

    def test_fallback_reason_for_plain_projection(self):
        plan = self.db.explain_plan("SELECT t.i, t.x1 FROM x t")
        (project,) = plan.find("project")
        assert any(
            "nothing to vectorize" in note for note in project.notes
        )

    def test_analyze_task_spans_carry_strategy(self):
        result = self.db.execute("EXPLAIN ANALYZE " + self.sql)
        tasks = result.plan.trace.find("task")
        assert tasks, "expected per-partition task spans"
        assert all(
            task.attributes["strategy"] == "vectorized-scan"
            for task in tasks
        )
        assert len(tasks) == result.metrics.partitions_processed
        assert sum(task.attributes["rows"] for task in tasks) == 50

    def test_analyze_reconciles_with_metrics(self):
        result = self.db.execute("EXPLAIN ANALYZE " + self.sql)
        metrics = result.metrics
        trace = result.plan.trace
        assert trace.total_seconds("scan") == metrics.scan_seconds
        assert metrics.accumulate_seconds == 0.0
        assert metrics.merge_seconds == 0.0
        per_task_project = sum(
            child.seconds
            for task in trace.find("task")
            for child in task.children
            if child.name == "project"
        )
        assert per_task_project == metrics.project_seconds

    def test_results_identical_under_explain_analyze(self):
        direct = self.db.execute(self.sql)
        self.db.execute("EXPLAIN ANALYZE " + self.sql)
        again = self.db.execute(self.sql)
        assert direct.rows == again.rows


# ---------------------------------------------------------- ORDER BY handling
class TestOrderByGate:
    def setup_method(self):
        rows = [(float(i % 7), float(i), -float(i)) for i in range(30)]
        self.db = make_db(rows, 3)

    def test_order_by_output_alias_stays_vectorized(self):
        sql = (
            GEN3.regression_inline_sql(0.0, [1.0, 1.0, 1.0])
            + " ORDER BY yhat DESC LIMIT 5"
        )
        assert_parity(self.db, sql)

    def test_order_by_output_position_stays_vectorized(self):
        sql = (
            GEN3.regression_inline_sql(0.0, [1.0, 1.0, 1.0])
            + " ORDER BY 2, 1 DESC"
        )
        assert_parity(self.db, sql)

    def test_order_by_source_column_falls_back(self):
        # x2 is not in the select list: sorting needs pre-projection
        # rows, which the block path never materializes.
        sql = "SELECT t.i, t.x1 * 2.0 AS twice FROM x t ORDER BY t.x2"
        row, vector = both_paths(self.db, sql)
        assert row.rows == vector.rows
        text = self.db.explain(sql)
        assert "strategy: row-scan" in text
        assert "ORDER BY" in text


# ------------------------------------------------------- block-cache metrics
class TestBlockCache:
    def test_hit_and_miss_counts_in_metrics(self):
        rows = [(float(i), float(i), float(i)) for i in range(40)]
        db = make_db(rows, 3)
        sql = GEN3.regression_inline_sql(0.0, [1.0, 1.0, 1.0])
        first = db.execute(sql)
        assert first.metrics.block_cache_misses > 0
        assert first.metrics.block_cache_hits == 0
        second = db.execute(sql)
        assert second.metrics.block_cache_hits > 0
        assert second.metrics.block_cache_misses == 0

    def test_lru_capacity_cap(self):
        partition = Partition(12)
        for row in ([float(v)] * 12 for v in range(5)):
            partition.append(row)
        for start in range(12):
            partition.numeric_matrix([start, (start + 1) % 12])
        assert len(partition._block_cache) == BLOCK_CACHE_CAPACITY
        assert partition.cache_misses == 12
        assert partition.cache_hits == 0

    def test_lru_keeps_recently_used(self):
        partition = Partition(12)
        partition.append([float(v) for v in range(12)])
        partition.numeric_matrix([0])
        for position in range(1, BLOCK_CACHE_CAPACITY):
            partition.numeric_matrix([position])
        partition.numeric_matrix([0])  # refresh [0] to most-recent
        partition.numeric_matrix([BLOCK_CACHE_CAPACITY])  # evicts [1]
        assert partition.has_cached_block([0])
        assert not partition.has_cached_block([1])
        assert partition.cache_hits == 1

    def test_mutation_clears_cache(self):
        partition = Partition(2)
        partition.append([1.0, 2.0])
        partition.numeric_matrix([0, 1])
        assert partition.has_cached_block([0, 1])
        partition.append([3.0, 4.0])
        assert not partition.has_cached_block([0, 1])


# ------------------------------------------------------ persistent engine pool
class TestPersistentPool:
    def test_engine_reuses_one_pool_across_maps(self):
        engine = PartitionEngine(workers=3)
        for _ in range(5):
            assert engine.map([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]
        assert engine.pools_created == 1
        engine.close()

    def test_no_new_pool_per_query(self):
        rows = [(float(i), float(i), float(i)) for i in range(40)]
        db = make_db(rows, 3, workers=3)
        sql = GEN3.regression_inline_sql(0.0, [1.0, 1.0, 1.0])
        for _ in range(4):
            db.execute(sql)
        db.execute("SELECT sum(t.x1) FROM x t")  # aggregate path too
        assert db._executor.engine.pools_created == 1
        db.close()

    def test_close_is_idempotent_and_recreates_lazily(self):
        engine = PartitionEngine(workers=2)
        engine.map([lambda: 1, lambda: 2])
        engine.close()
        engine.close()
        assert engine.map([lambda: 3, lambda: 4]) == [3, 4]
        assert engine.pools_created == 2
        engine.close()

    def test_serial_engine_never_creates_a_pool(self):
        engine = PartitionEngine(workers=1)
        engine.map([lambda: 1, lambda: 2])
        assert engine.pools_created == 0

    def test_database_context_manager_closes(self):
        rows = [(float(i), float(i), float(i)) for i in range(10)]
        with make_db(rows, 3, workers=2) as db:
            db.execute("SELECT sum(t.x1) FROM x t")
            engine = db._executor.engine
            assert engine.pools_created == 1
        assert engine._pool is None

    def test_worker_swap_closes_old_pool(self):
        db = Database(amps=4, executor_workers=3)
        db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, v FLOAT)")
        db.insert_rows("t", [(i, float(i)) for i in range(20)])
        db.execute("SELECT sum(s.v) FROM t s")
        old = db._executor.engine
        db.executor_workers = 2
        assert old._pool is None
        db.close()


# ------------------------------------------------------ batched insert_many
def _layout(table: Table) -> list[list[tuple]]:
    return [list(partition.rows()) for partition in table.partitions]


class TestInsertManyBatching:
    def _schema(self, pk: bool = True) -> TableSchema:
        return TableSchema.build(
            [("k", SqlType.INTEGER), ("v", SqlType.FLOAT)],
            primary_key="k" if pk else None,
        )

    def test_layout_matches_per_row_inserts(self):
        rows = [(i, float(i)) for i in range(100)]
        one_by_one = Table("t", self._schema(), partitions=5)
        for row in rows:
            one_by_one.insert(row)
        batched = Table("t", self._schema(), partitions=5)
        assert batched.insert_many(rows) == 100
        assert _layout(one_by_one) == _layout(batched)

    def test_round_robin_layout_matches_per_row_inserts(self):
        rows = [(i, float(i)) for i in range(50)]
        one_by_one = Table("t", self._schema(pk=False), partitions=4)
        for row in rows:
            one_by_one.insert(row)
        batched = Table("t", self._schema(pk=False), partitions=4)
        batched.insert_many(rows)
        assert _layout(one_by_one) == _layout(batched)

    def test_duplicate_pk_mid_batch_keeps_validated_prefix(self):
        table = Table("t", self._schema(), partitions=3)
        rows = [(0, 0.0), (1, 1.0), (2, 2.0), (1, 99.0), (3, 3.0)]
        with pytest.raises(ConstraintViolation):
            table.insert_many(rows)
        assert table.row_count == 3  # same prefix a per-row loop leaves
        assert sorted(row[0] for p in table.partitions for row in p.rows()) \
            == [0, 1, 2]

    def test_one_cache_clear_per_batch(self):
        table = Table("t", self._schema(), partitions=1)
        table.insert_many([(i, float(i)) for i in range(10)])
        partition = table.partitions[0]
        block = partition.numeric_matrix([1])
        table.insert_many([(100 + i, float(i)) for i in range(10)])
        assert not partition.has_cached_block([1])
        assert partition.row_count == 20
        assert block.shape == (10, 1)  # old block unaffected

    def test_query_parity_after_batched_insert(self):
        db = make_db([], 3)
        db.insert_rows(
            "x", [(i + 1000, float(i), float(-i), 0.5) for i in range(60)]
        )
        sql = GEN3.regression_inline_sql(1.0, [0.5, 0.5, 2.0])
        assert_parity(db, sql)
