"""SQL parser: statements, expression precedence, round-tripping, errors."""

import pytest

from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement, parse_statements
from repro.errors import SqlSyntaxError


def expr(sql):
    select = parse_statement(f"SELECT {sql}")
    assert isinstance(select, ast.Select)
    return select.items[0].expression


class TestSelect:
    def test_minimal(self):
        select = parse_statement("SELECT 1")
        assert isinstance(select, ast.Select)
        assert select.items[0].expression == ast.Literal(1)
        assert select.from_sources == ()

    def test_select_list_aliases(self):
        select = parse_statement("SELECT a AS first, b second, c FROM t")
        assert [item.alias for item in select.items] == ["first", "second", None]

    def test_star_and_qualified_star(self):
        select = parse_statement("SELECT *, t.* FROM t")
        assert select.items[0].expression == ast.Star()
        assert select.items[1].expression == ast.Star(table="t")

    def test_from_alias_forms(self):
        select = parse_statement("SELECT 1 FROM t alias1, u AS alias2")
        assert select.from_sources[0] == ast.TableName("t", "alias1")
        assert select.from_sources[1] == ast.TableName("u", "alias2")

    def test_joins(self):
        select = parse_statement(
            "SELECT 1 FROM t CROSS JOIN u JOIN v ON v.id = t.id"
        )
        assert len(select.joins) == 2
        assert select.joins[0].condition is None
        assert isinstance(select.joins[1].condition, ast.Binary)

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError, match="alias"):
            parse_statement("SELECT 1 FROM (SELECT 1)")

    def test_derived_table(self):
        select = parse_statement("SELECT s.a FROM (SELECT 1 AS a) s")
        derived = select.from_sources[0]
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "s"

    def test_where_group_having_order_limit(self):
        select = parse_statement(
            "SELECT g, sum(v) FROM t WHERE v > 0 GROUP BY g "
            "HAVING sum(v) > 1 ORDER BY g DESC LIMIT 5"
        )
        assert select.where is not None
        assert len(select.group_by) == 1
        assert select.having is not None
        assert select.order_by[0][1] is False  # DESC
        assert select.limit == 5

    def test_order_by_asc_default(self):
        select = parse_statement("SELECT a FROM t ORDER BY a, b ASC, c DESC")
        assert [asc for _, asc in select.order_by] == [True, True, False]

    def test_multiple_statements(self):
        statements = parse_statements("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_exactly_one_statement_enforced(self):
        with pytest.raises(SqlSyntaxError, match="exactly one"):
            parse_statement("SELECT 1; SELECT 2")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        node = expr("1 + 2 * 3")
        assert node == ast.Binary(
            "+", ast.Literal(1), ast.Binary("*", ast.Literal(2), ast.Literal(3))
        )

    def test_parentheses(self):
        node = expr("(1 + 2) * 3")
        assert isinstance(node, ast.Binary) and node.op == "*"

    def test_and_or_precedence(self):
        node = expr("a OR b AND c")
        assert isinstance(node, ast.Binary) and node.op == "OR"
        assert isinstance(node.right, ast.Binary) and node.right.op == "AND"

    def test_not(self):
        node = expr("NOT a = b")
        assert isinstance(node, ast.Unary) and node.op == "NOT"

    def test_unary_minus_folds_literal(self):
        assert expr("-5") == ast.Literal(-5)
        assert expr("-5.5") == ast.Literal(-5.5)

    def test_unary_minus_on_column(self):
        node = expr("-x")
        assert node == ast.Unary("-", ast.ColumnRef("x"))

    def test_unary_plus_is_noop(self):
        assert expr("+x") == ast.ColumnRef("x")

    def test_comparison_operators(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            node = expr(f"a {op} b")
            assert isinstance(node, ast.Binary) and node.op == op

    def test_bang_equals_normalized(self):
        assert expr("a != b").op == "<>"

    def test_mod_keyword_and_percent(self):
        assert expr("a MOD 2").op == "MOD"
        assert expr("a % 2").op == "MOD"

    def test_between(self):
        node = expr("a BETWEEN 1 AND 3")
        assert isinstance(node, ast.Binary) and node.op == "AND"

    def test_not_between(self):
        node = expr("a NOT BETWEEN 1 AND 3")
        assert isinstance(node, ast.Unary) and node.op == "NOT"

    def test_in_list(self):
        node = expr("a IN (1, 2, 3)")
        assert isinstance(node, ast.InList) and len(node.items) == 3

    def test_not_in(self):
        assert expr("a NOT IN (1)").negated is True

    def test_is_null_forms(self):
        assert expr("a IS NULL") == ast.IsNull(ast.ColumnRef("a"), False)
        assert expr("a IS NOT NULL") == ast.IsNull(ast.ColumnRef("a"), True)

    def test_like(self):
        node = expr("name LIKE 'a%'")
        assert isinstance(node, ast.FuncCall) and node.name == "like"

    def test_case(self):
        node = expr("CASE WHEN a > 0 THEN 'p' WHEN a < 0 THEN 'n' ELSE 'z' END")
        assert isinstance(node, ast.Case)
        assert len(node.whens) == 2
        assert node.else_result == ast.Literal("z")

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError, match="WHEN"):
            expr("CASE ELSE 1 END")

    def test_function_call(self):
        node = expr("power(a, 2)")
        assert node == ast.FuncCall("power", (ast.ColumnRef("a"), ast.Literal(2)))

    def test_count_star(self):
        node = expr("count(*)")
        assert node == ast.FuncCall("count", (ast.Star(),))

    def test_distinct_aggregate(self):
        assert expr("count(DISTINCT a)").distinct is True

    def test_qualified_column(self):
        assert expr("t.x1") == ast.ColumnRef("x1", table="t")

    def test_string_concat_operator(self):
        node = expr("a || b")
        assert isinstance(node, ast.FuncCall) and node.name == "concat"

    def test_null_literal(self):
        assert expr("NULL") == ast.Literal(None)


class TestDdlDml:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (i INT PRIMARY KEY, v DOUBLE PRECISION NOT NULL, "
            "s VARCHAR(20))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.primary_key == "i"
        assert stmt.columns[1].not_null
        assert stmt.columns[1].type_name == "DOUBLE PRECISION"

    def test_create_table_trailing_pk_clause(self):
        stmt = parse_statement("CREATE TABLE t (i INT, PRIMARY KEY (i))")
        assert stmt.primary_key == "i"

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (i INT)")
        assert stmt.if_not_exists

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT 1")
        assert isinstance(stmt, ast.CreateView)

    def test_create_or_replace_view(self):
        stmt = parse_statement("CREATE OR REPLACE VIEW v AS SELECT 1")
        assert stmt.or_replace

    def test_or_replace_table_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("CREATE OR REPLACE TABLE t (i INT)")

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.values) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)
        assert stmt.where is not None

    def test_drop_forms(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT 1 FROM",
            "SELECT 1 WHERE",
            "FROM t",
            "SELECT 1 LIMIT x",
            "SELECT a NOT b",
            "INSERT t VALUES (1)",
            "CREATE t",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_statement(bad)


class TestRender:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, sum(b) AS s FROM t WHERE a > 1 GROUP BY a ORDER BY a LIMIT 3",
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
            "SELECT t.a FROM t CROSS JOIN u JOIN v ON v.i = t.i",
            "SELECT s.a FROM (SELECT a FROM t) s",
            "SELECT a IN (1, 2), b IS NOT NULL FROM t",
        ],
    )
    def test_round_trip(self, sql):
        first = parse_statement(sql)
        rendered = ast.render(first)
        second = parse_statement(rendered)
        assert first == second, f"{rendered!r} did not round-trip"

    def test_string_escaping(self):
        node = ast.Literal("it's")
        assert ast.render(node) == "'it''s'"
        assert parse_statement(f"SELECT {ast.render(node)}").items[0].expression == node

    def test_walk_counts(self):
        node = parse_statement("SELECT a + b * 2").items[0].expression
        assert len(ast.walk(node)) == 5
