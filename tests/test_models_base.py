"""Model-table persistence helpers."""

import numpy as np
import pytest

from repro.core.models.base import (
    load_matrix,
    load_vector,
    store_matrix,
    store_vector,
)
from repro.errors import ModelError


class TestVectorTables:
    def test_round_trip(self, db):
        values = np.asarray([1.5, -2.0, 3.25])
        store_vector(db, "v", values)
        assert np.array_equal(load_vector(db, "v"), values)

    def test_custom_names(self, db):
        store_vector(db, "beta", np.asarray([0.5, 1.0]), ["b0", "b1"])
        assert db.table("beta").schema.column_names == ("b0", "b1")

    def test_name_count_mismatch(self, db):
        with pytest.raises(ModelError):
            store_vector(db, "v", np.zeros(3), ["a"])

    def test_replace(self, db):
        store_vector(db, "v", np.asarray([1.0]))
        store_vector(db, "v", np.asarray([2.0, 3.0]))
        assert np.array_equal(load_vector(db, "v"), [2.0, 3.0])

    def test_load_requires_single_row(self, db):
        db.execute("CREATE TABLE multi (x1 FLOAT)")
        db.execute("INSERT INTO multi VALUES (1.0), (2.0)")
        with pytest.raises(ModelError, match="rows"):
            load_vector(db, "multi")


class TestMatrixTables:
    def test_round_trip_ordered_by_j(self, db):
        matrix = np.asarray([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        store_matrix(db, "m", matrix)
        assert np.array_equal(load_matrix(db, "m"), matrix)
        assert db.table("m").schema.primary_key == "j"

    def test_j_is_one_based(self, db):
        store_matrix(db, "m", np.asarray([[9.0]]))
        assert db.table("m").rows() == [(1, 9.0)]

    def test_wrong_shape(self, db):
        with pytest.raises(ModelError):
            store_matrix(db, "m", np.zeros(3))

    def test_name_count_mismatch(self, db):
        with pytest.raises(ModelError):
            store_matrix(db, "m", np.zeros((2, 3)), ["a", "b"])

    def test_empty_load_rejected(self, db):
        db.execute("CREATE TABLE empty (j INTEGER, x1 FLOAT)")
        with pytest.raises(ModelError, match="empty"):
            load_matrix(db, "empty")

    def test_queryable_via_sql(self, db):
        """Stored models are ordinary tables — the whole point of
        keeping them in the DBMS."""
        store_matrix(db, "c", np.asarray([[1.0, 2.0], [3.0, 4.0]]))
        result = db.execute("SELECT x2 FROM c WHERE j = 2")
        assert result.scalar() == 4.0
