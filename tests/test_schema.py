"""Table schemas, identifiers and the paper's data-set layout."""

import pytest

from repro.dbms.schema import (
    Column,
    TableSchema,
    dataset_schema,
    dimension_names,
    model_schema,
    rows_match_schema,
    validate_identifier,
)
from repro.dbms.types import SqlType
from repro.errors import SchemaError


class TestIdentifiers:
    def test_valid(self):
        assert validate_identifier("x1") == "x1"
        assert validate_identifier("_tmp") == "_tmp"

    @pytest.mark.parametrize("bad", ["", "1x", "a-b", "a b", "x" * 200])
    def test_invalid(self, bad):
        with pytest.raises(SchemaError):
            validate_identifier(bad)


class TestColumn:
    def test_str(self):
        assert str(Column("x1", SqlType.FLOAT)) == "x1 FLOAT"
        assert str(Column("i", SqlType.INTEGER, nullable=False)) == "i INTEGER NOT NULL"

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            Column("2bad", SqlType.FLOAT)


class TestTableSchema:
    def test_build_from_tuples(self):
        schema = TableSchema.build([("a", SqlType.INTEGER), ("b", SqlType.FLOAT)])
        assert schema.column_names == ("a", "b")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError, match="at least one column"):
            TableSchema(())

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema.build([("a", SqlType.FLOAT), ("A", SqlType.FLOAT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError, match="primary key"):
            TableSchema.build([("a", SqlType.FLOAT)], primary_key="b")

    def test_case_insensitive_lookup(self):
        schema = TableSchema.build([("Alpha", SqlType.FLOAT)])
        assert schema.position_of("ALPHA") == 0
        assert "alpha" in schema
        assert schema.column("alpha").name == "Alpha"

    def test_unknown_column(self):
        schema = TableSchema.build([("a", SqlType.FLOAT)])
        with pytest.raises(SchemaError, match="unknown column"):
            schema.position_of("zz")

    def test_iteration_and_len(self):
        schema = dataset_schema(3)
        assert len(schema) == 4
        assert [c.name for c in schema] == ["i", "x1", "x2", "x3"]

    def test_numeric_columns(self):
        schema = TableSchema.build(
            [("i", SqlType.INTEGER), ("name", SqlType.VARCHAR), ("v", SqlType.FLOAT)]
        )
        assert schema.numeric_columns() == ("i", "v")

    def test_ddl(self):
        schema = dataset_schema(2)
        ddl = schema.ddl("x")
        assert ddl.startswith("CREATE TABLE x (i INTEGER NOT NULL, ")
        assert "PRIMARY KEY (i)" in ddl


class TestDatasetSchema:
    def test_layout(self):
        schema = dataset_schema(3, with_y=True)
        assert schema.column_names == ("i", "x1", "x2", "x3", "y")
        assert schema.primary_key == "i"
        assert not schema.column("i").nullable

    def test_invalid_d(self):
        with pytest.raises(SchemaError):
            dataset_schema(0)

    def test_dimension_names(self):
        assert dimension_names(3) == ["x1", "x2", "x3"]
        assert dimension_names(2, prefix="c") == ["c1", "c2"]

    def test_model_schema(self):
        with_index = model_schema(2, with_index=True)
        assert with_index.column_names == ("j", "x1", "x2")
        assert with_index.primary_key == "j"
        flat = model_schema(2)
        assert flat.column_names == ("x1", "x2")
        assert flat.primary_key is None


class TestRowsMatchSchema:
    def test_ok(self):
        rows_match_schema(dataset_schema(2), [(1, 0.0, 0.0)])

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError, match="row 0 has 2 values"):
            rows_match_schema(dataset_schema(2), [(1, 0.0)])
