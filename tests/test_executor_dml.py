"""DDL and DML execution: CREATE/DROP/INSERT/DELETE and views."""

import pytest

from repro.dbms.database import Database
from repro.errors import (
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    SqlSyntaxError,
)


class TestCreateDrop:
    def test_create_and_drop_table(self, db: Database):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY, v FLOAT)")
        assert db.catalog.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_create_duplicate_rejected(self, db):
        db.execute("CREATE TABLE t (i INT)")
        with pytest.raises(CatalogError, match="already exists"):
            db.execute("CREATE TABLE t (i INT)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE t (i INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (i INT)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nope")
        db.execute("DROP TABLE IF EXISTS nope")  # no error

    def test_create_view_and_drop(self, db):
        db.execute("CREATE TABLE t (i INT)")
        db.execute("CREATE VIEW v AS SELECT i FROM t")
        assert db.catalog.has_view("v")
        db.execute("DROP VIEW v")
        assert not db.catalog.has_view("v")

    def test_replace_view(self, db):
        db.execute("CREATE TABLE t (i INT)")
        db.execute("CREATE VIEW v AS SELECT i FROM t")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW v AS SELECT i FROM t")
        db.execute("CREATE OR REPLACE VIEW v AS SELECT i + 1 AS j FROM t")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT j FROM v").scalar() == 2

    def test_view_name_cannot_shadow_table(self, db):
        db.execute("CREATE TABLE t (i INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW t AS SELECT 1")


class TestInsert:
    def test_values_with_expressions(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, 2.0 * 3), (2, -1)")
        assert sorted(db.execute("SELECT v FROM t").column("v")) == [-1.0, 6.0]

    def test_named_columns_fill_nulls(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY, a FLOAT, b FLOAT)")
        db.execute("INSERT INTO t (b, i) VALUES (9.0, 1)")
        assert db.execute("SELECT i, a, b FROM t").rows == [(1, None, 9.0)]

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (i INT, a FLOAT)")
        with pytest.raises(ExecutionError, match="values"):
            db.execute("INSERT INTO t (i) VALUES (1, 2)")

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (i INT PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO src VALUES (1, 1.5), (2, 2.5)")
        db.execute("CREATE TABLE dst (i INT PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO dst SELECT i, v * 10 FROM src")
        assert sorted(db.execute("SELECT v FROM dst").column("v")) == [15.0, 25.0]

    def test_pk_violation_via_sql(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO t VALUES (1)")


class TestDelete:
    def test_delete_where(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        db.execute("DELETE FROM t WHERE v >= 2.0")
        assert db.execute("SELECT count(*) FROM t").scalar() == 1

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("DELETE FROM t")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0
        db.execute("INSERT INTO t VALUES (1)")  # PK set reset

    def test_delete_null_predicate_keeps_row(self, db):
        db.execute("CREATE TABLE t (i INT PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, NULL), (2, 5.0)")
        db.execute("DELETE FROM t WHERE v > 1")
        assert db.execute("SELECT i FROM t").column("i") == [1]


class TestScripts:
    def test_multi_statement_script(self, db):
        result = db.execute(
            "CREATE TABLE t (i INT); INSERT INTO t VALUES (1), (2); "
            "SELECT sum(i) FROM t;"
        )
        assert result.scalar() == 3

    def test_empty_script_rejected(self, db):
        with pytest.raises((ValueError, SqlSyntaxError)):
            db.execute("   ")


class TestQueryResult:
    def test_scalar_requires_1x1(self, db):
        db.execute("CREATE TABLE t (i INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(ValueError):
            db.execute("SELECT i FROM t").scalar()

    def test_first_on_empty(self, db):
        db.execute("CREATE TABLE t (i INT)")
        with pytest.raises(ValueError):
            db.execute("SELECT i FROM t").first()

    def test_column_accessors(self, db):
        db.execute("CREATE TABLE t (i INT)")
        db.execute("INSERT INTO t VALUES (5)")
        result = db.execute("SELECT i AS num FROM t")
        assert result.column("NUM") == [5]
        with pytest.raises(KeyError):
            result.column("other")
        assert result.as_dicts() == [{"num": 5}]

    def test_simulated_seconds_positive(self, db):
        db.execute("CREATE TABLE t (i INT)")
        result = db.execute("SELECT count(*) FROM t")
        assert result.simulated_seconds > 0
