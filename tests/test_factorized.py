"""Factorized learning over joins: the join is never materialized.

The contract this suite pins down, end to end:

* **Planning** — :func:`plan_factorize` accepts exactly the star-shaped
  grand aggregates whose sums provably distribute through an FK → PK
  inner join, and refuses everything else with a human-readable reason
  (surfaced as an EXPLAIN note).
* **Parity** — the factorized route returns the same answer as the
  materializing reference path (``factorized_joins_enabled = False``):
  counts and per-cluster cardinalities exactly; floating-point sums
  ((n, L, Q), SUM builtins, the EM log-likelihood) to documented
  last-ulp tolerance — both routes add exactly the same per-row terms,
  the factorized one grouped by foreign key instead of row by row.
  Within the factorized route, results are bit-identical at any worker
  count (partials merge in partition order).
* **Accounting** — a factorized statement scans Σ|base tables| rows
  instead of the nested-loop join input, and the metrics/EXPLAIN
  report exactly that.
* **Freshness** — the join summary cache keys on *every* base table's
  version: appending to a dimension table can never serve a stale hit.
* **Apply order** — join elimination and the group-by-before-join
  rewrite run first; factorize fires only on what survives, and both
  orderings produce identical answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fused import (
    fused_call_sql,
    register_fused_udfs,
    unpack_fused_payload,
)
from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs
from repro.core.summary import MatrixType
from repro.dbms.database import Database
from repro.dbms.schema import Column, TableSchema
from repro.dbms.sql.factorize import plan_factorize
from repro.dbms.sql.optimizer import OptimizationReport, QueryOptimizer
from repro.dbms.sql.parser import parse_statement
from repro.dbms.types import SqlType
from repro.twm.miner import WarehouseMiner

_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

STAR_FROM = (
    "sales JOIN stores ON sales.sid = stores.sid "
    "JOIN products ON sales.pid = products.pid"
)
STAR_DIMS = ["sales.amount", "sales.qty", "stores.sx", "stores.sy",
             "products.px"]


def _star_db(
    seed: int = 0,
    n_fact: int = 300,
    n_dim: int = 20,
    workers: int = 4,
    null_fk_every: int = 0,
    dangling_every: int = 0,
    register_udfs: bool = True,
) -> Database:
    """A sales → (stores, products) star.

    ``null_fk_every`` / ``dangling_every`` poke a NULL or a dangling
    store key into every i-th fact row — rows an INNER join drops.
    """
    rng = np.random.default_rng(seed)
    db = Database(amps=4, executor_workers=workers)
    db.create_table(
        "stores",
        TableSchema.build(
            [
                Column("sid", SqlType.INTEGER, nullable=False),
                ("sx", SqlType.FLOAT),
                ("sy", SqlType.FLOAT),
            ],
            primary_key="sid",
        ),
    )
    db.create_table(
        "products",
        TableSchema.build(
            [
                Column("pid", SqlType.INTEGER, nullable=False),
                ("px", SqlType.FLOAT),
            ],
            primary_key="pid",
        ),
    )
    db.create_table(
        "sales",
        TableSchema.build(
            [
                Column("oid", SqlType.INTEGER, nullable=False),
                Column("sid", SqlType.INTEGER),
                Column("pid", SqlType.INTEGER),
                ("amount", SqlType.FLOAT),
                ("qty", SqlType.FLOAT),
            ],
            primary_key="oid",
        ),
    )
    db.load_columns(
        "stores",
        {
            "sid": np.arange(1, n_dim + 1),
            "sx": rng.normal(0, 5, n_dim),
            "sy": rng.normal(10, 2, n_dim),
        },
    )
    db.load_columns(
        "products",
        {"pid": np.arange(1, n_dim + 1), "px": rng.normal(-3, 1, n_dim)},
    )
    sid = rng.integers(1, n_dim + 1, n_fact).astype(object)
    pid = rng.integers(1, n_dim + 1, n_fact).astype(object)
    for i in range(n_fact):
        if null_fk_every and i % null_fk_every == 0:
            sid[i] = None
        elif dangling_every and i % dangling_every == 1:
            sid[i] = n_dim + 1000 + i  # no such store
    rows = [
        (
            i + 1,
            sid[i],
            int(pid[i]),
            float(rng.normal(100, 20)),
            float(rng.normal(5, 1)),
        )
        for i in range(n_fact)
    ]
    db.table("sales").insert_many(rows)
    if register_udfs:
        register_nlq_udfs(db)
    return db


def _reference(db: Database, run):
    """Run *run* on the materializing join path and restore the toggle."""
    db.factorized_joins_enabled = False
    try:
        return run()
    finally:
        db.factorized_joins_enabled = True


def _plan(db: Database, sql: str, report: OptimizationReport | None = None):
    return plan_factorize(db.catalog, parse_statement(sql), report)


# ------------------------------------------------------------- planning
class TestPlannerDecisions:
    @pytest.fixture()
    def db(self):
        with _star_db(n_fact=40, n_dim=6) as db:
            yield db

    def test_accepts_star_builtins(self, db):
        decision = _plan(
            db,
            "SELECT COUNT(*), SUM(sales.amount), "
            "SUM(sales.amount * stores.sx), SUM(2.5 * products.px) "
            f"FROM {STAR_FROM}",
        )
        assert decision.factorized
        assert decision.shape == "builtins"
        assert decision.fact_table == "sales"
        assert [dim.table for dim in decision.dims] == ["stores", "products"]
        assert len(decision.builtin_shapes) == 4

    def test_accepts_summary_udf(self, db):
        sql = (
            "SELECT nlq_tri(5, sales.amount, sales.qty, stores.sx, "
            f"stores.sy, products.px) FROM {STAR_FROM}"
        )
        decision = _plan(db, sql)
        assert decision.factorized
        assert decision.shape == "summary"
        assert decision.matrix_type is MatrixType.TRIANGULAR
        assert decision.arg_sources == (
            ("fact", "amount"),
            ("fact", "qty"),
            ("dim", 0, "sx"),
            ("dim", 0, "sy"),
            ("dim", 1, "px"),
        )

    @pytest.mark.parametrize(
        "sql, fragment",
        [
            (
                "SELECT COUNT(*) FROM sales LEFT JOIN stores "
                "ON sales.sid = stores.sid",
                "outer join",
            ),
            (
                "SELECT COUNT(*) FROM sales JOIN stores "
                "ON sales.sid = stores.sid GROUP BY sales.pid",
                "GROUP BY",
            ),
            (
                "SELECT COUNT(*) FROM sales JOIN stores "
                "ON sales.sid = stores.sid WHERE sales.amount > 0",
                "WHERE",
            ),
            (
                "SELECT COUNT(*) FROM sales JOIN stores "
                "ON sales.sid = stores.sid ORDER BY 1",
                "ORDER BY",
            ),
            (
                # sales.oid is a PK but the *joined* side must supply its
                # own primary key; stores.sx is not it.
                "SELECT COUNT(*) FROM sales JOIN stores "
                "ON sales.sid = stores.sx",
                "primary key",
            ),
            (
                # snowflake: the second arm hangs off a dimension.
                "SELECT COUNT(*) FROM sales "
                "JOIN stores ON sales.sid = stores.sid "
                "JOIN products ON stores.sid = products.pid",
                "snowflake",
            ),
            (
                "SELECT sales.pid, COUNT(*) FROM sales JOIN stores "
                "ON sales.sid = stores.sid",
                "outside aggregate",
            ),
            (
                "SELECT COUNT(sales.amount) FROM sales JOIN stores "
                "ON sales.sid = stores.sid",
                "COUNT(*)",
            ),
            (
                "SELECT AVG(sales.amount) FROM sales JOIN stores "
                "ON sales.sid = stores.sid",
                "not factorized",
            ),
            (
                "SELECT SUM(DISTINCT sales.amount) FROM sales JOIN stores "
                "ON sales.sid = stores.sid",
                "DISTINCT",
            ),
            (
                "SELECT SUM(sales.amount + stores.sx) FROM sales "
                "JOIN stores ON sales.sid = stores.sid",
                "not a column",
            ),
        ],
    )
    def test_refusals(self, db, sql, fragment):
        decision = _plan(db, sql)
        assert not decision.factorized
        assert fragment.lower() in decision.reason.lower()

    def test_apply_order_gate(self, db):
        """A statement the group-by pushdown already restructured is
        refused outright — rewrites compose in one fixed order."""
        sql = (
            "SELECT COUNT(*) FROM sales JOIN stores "
            "ON sales.sid = stores.sid"
        )
        statement = parse_statement(sql)
        report = OptimizationReport(original=statement, optimized=statement)
        report.pushed_group_by = True
        decision = plan_factorize(db.catalog, statement, report)
        assert not decision.factorized
        assert "apply order" in decision.reason

    def test_executor_records_decision(self, db):
        db.execute(f"SELECT COUNT(*) FROM {STAR_FROM}")
        assert db.last_factorize_decision is not None
        assert db.last_factorize_decision.factorized
        db.execute(
            "SELECT COUNT(*) FROM sales JOIN stores "
            "ON sales.sid = stores.sid WHERE sales.amount > 0"
        )
        assert not db.last_factorize_decision.factorized


# ------------------------------------------------------- execution parity
class TestFactorizedParity:
    def test_builtins_parity_and_scan_accounting(self):
        with _star_db(seed=3) as db:
            sql = (
                "SELECT COUNT(*), SUM(sales.amount), "
                "SUM(sales.amount * stores.sx), SUM(stores.sy * products.px)"
                f" FROM {STAR_FROM}"
            )
            result = db.execute(sql)
            reference = _reference(db, lambda: db.execute(sql))
            # COUNT is exact; the SUMs add the same terms grouped by
            # foreign key instead of row by row — last-ulp tolerance.
            assert result.rows[0][0] == reference.rows[0][0]
            np.testing.assert_allclose(
                np.array(result.rows[0][1:], dtype=float),
                np.array(reference.rows[0][1:], dtype=float),
                rtol=1e-12,
            )
            base = sum(
                db.table(name).row_count
                for name in ("sales", "stores", "products")
            )
            assert result.metrics.factorized_joins == 1
            assert result.metrics.rows_scanned == base
            assert result.metrics.rows_join_avoided > 0
            # The reference truly materialized: no factorized join, and
            # it read the nested-loop join input, not Σ|base|.
            assert reference.metrics.factorized_joins == 0
            assert reference.metrics.rows_scanned > base

    @given(
        seed=st.integers(0, 2**16),
        workers=st.sampled_from([1, 2, 4]),
        null_fk_every=st.sampled_from([0, 7]),
        dangling_every=st.sampled_from([0, 11]),
    )
    @settings(**_SETTINGS)
    def test_summary_parity_any_star(
        self, seed, workers, null_fk_every, dangling_every
    ):
        """Factorized (n, L, Q) over a generated star vs the
        materialized join — n exact, L/Q to a few-ulp tolerance (the two
        routes add the same per-row terms in a different deterministic
        order, so entries with heavy cancellation can drift a few ulps).
        NULL and dangling FKs must drop exactly like the join.
        """
        with _star_db(
            seed=seed,
            n_fact=160,
            n_dim=8,
            workers=workers,
            null_fk_every=null_fk_every,
            dangling_every=dangling_every,
        ) as db:
            stats = compute_nlq_udf(db, STAR_FROM, STAR_DIMS)
            assert db.last_factorize_decision.factorized
            reference = _reference(
                db, lambda: compute_nlq_udf(db, STAR_FROM, STAR_DIMS)
            )
            assert stats.n == reference.n
            np.testing.assert_allclose(stats.L, reference.L, rtol=5e-13)
            np.testing.assert_allclose(stats.Q, reference.Q, rtol=5e-13)

    def test_factorized_route_worker_invariant(self):
        """Within the factorized route, partials merge in partition
        order: the worker count never changes a single bit."""
        results = []
        for workers in (1, 4):
            with _star_db(seed=9, workers=workers) as db:
                stats = compute_nlq_udf(db, STAR_FROM, STAR_DIMS)
                rows = db.execute(
                    f"SELECT SUM(sales.amount * stores.sx) FROM {STAR_FROM}"
                ).rows
                results.append((stats, rows))
        one, four = results
        assert np.array_equal(one[0].L, four[0].L)
        assert np.array_equal(one[0].Q, four[0].Q)
        assert one[1] == four[1]

    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([1, 4]))
    @settings(**_SETTINGS)
    def test_fused_kmeans_iteration_parity(self, seed, workers):
        """One fused kmeansiter scan over the star: every row lands in
        the same cluster as on the joined path (cardinalities exact);
        the per-cluster sums carry the FK-grouped last-ulp tolerance."""
        with _star_db(seed=seed, n_fact=120, n_dim=6, workers=workers) as db:
            udf = register_fused_udfs(db)["kmeansiter"]
            rng = np.random.default_rng(seed)
            centroids = rng.normal(0, 20, (3, len(STAR_DIMS)))
            sql = fused_call_sql("kmeansiter", STAR_FROM, STAR_DIMS)
            udf.set_centroids(centroids)
            factorized = db.execute(sql).scalar()
            assert db.last_factorize_decision.factorized
            udf.set_centroids(centroids)
            reference = _reference(db, lambda: db.execute(sql).scalar())
            groups_f, _ = unpack_fused_payload(factorized)
            groups_r, _ = unpack_fused_payload(reference)
            assert groups_f.keys() == groups_r.keys()
            for j in groups_f:
                assert groups_f[j].n == groups_r[j].n
                np.testing.assert_allclose(
                    groups_f[j].L, groups_r[j].L, rtol=1e-12
                )
                np.testing.assert_allclose(
                    groups_f[j].Q, groups_r[j].Q, rtol=1e-12
                )

    def test_fused_em_log_likelihood_tolerance(self):
        with _star_db(seed=21, n_fact=120, n_dim=6) as db:
            udf = register_fused_udfs(db)["emiter"]
            from repro.core.models.em_mixture import GaussianMixtureModel

            rng = np.random.default_rng(0)
            d = len(STAR_DIMS)
            model = GaussianMixtureModel(
                rng.normal(0, 20, (2, d)),
                np.full((2, d), 25.0),
                np.array([0.5, 0.5]),
            )
            sql = fused_call_sql("emiter", STAR_FROM, STAR_DIMS)
            udf.set_model(model)
            _, ll = unpack_fused_payload(db.execute(sql).scalar())
            udf.set_model(model)
            _, ll_ref = unpack_fused_payload(
                _reference(db, lambda: db.execute(sql).scalar())
            )
            assert ll == pytest.approx(ll_ref, rel=1e-12)

    def test_duplicate_dim_pk_falls_back(self):
        """Storage rejects duplicate PKs at INSERT, so corrupt a
        partition directly: the run-time guard must degrade to the
        materializing path, not return wrong multiplicities."""
        with _star_db(seed=5, n_fact=60, n_dim=6) as db:
            sql = f"SELECT COUNT(*), SUM(sales.amount) FROM {STAR_FROM}"
            reference = _reference(db, lambda: db.execute(sql))
            stores = db.table("stores")
            # A second sid=1 row, injected under the PK check's radar.
            row = next(iter(stores.rows()))
            stores.partitions[0].append(row)
            result = db.execute(sql)
            assert result.metrics.fallbacks >= 1
            assert result.metrics.factorized_joins == 0
            # The answer is the materialized join's over the corrupted
            # table — recompute the reference on the same state.
            fresh = _reference(db, lambda: db.execute(sql))
            assert result.rows == fresh.rows
            assert result.rows != reference.rows  # the dup really joins


# ------------------------------------------------------------- EXPLAIN
class TestExplainFactorized:
    def test_plan_shape_and_avoided_rows_note(self):
        with _star_db(seed=1) as db:
            sql = f"SELECT COUNT(*), SUM(sales.amount) FROM {STAR_FROM}"
            plan = db.explain_plan(sql)
            nodes = plan.find("factorized-join")
            assert len(nodes) == 1
            node = nodes[0]
            assert "sales star over 2 dimension(s)" in node.detail
            assert "shape builtins" in node.detail
            # Node note: scans Σ|base| instead of the nested-loop input.
            base = sum(
                db.table(name).row_count
                for name in ("sales", "stores", "products")
            )
            note = next(n for n in node.notes if "factorized-join:" in n)
            assert f"scans {base} base-table rows" in note
            assert "rows avoided" in note
            # A dimension arm per join, annotated with its key equation.
            arm_notes = [
                n
                for child in node.children
                for n in child.notes
                if "dimension arm" in n
            ]
            assert len(arm_notes) == 2
            assert any("stores.sid = sales.sid" in n for n in arm_notes)
            # The factorized node is not a join operator: no
            # materializing join appears anywhere in the plan.
            assert plan.find("join") == []

    def test_refusal_surfaces_as_note(self):
        with _star_db(seed=1) as db:
            plan = db.explain_plan(
                "SELECT COUNT(*) FROM sales LEFT JOIN stores "
                "ON sales.sid = stores.sid"
            )
            notes = [
                note for node in plan.root.walk() for note in node.notes
            ]
            assert any(
                "factorized-join refused" in note and "outer join" in note
                for note in notes
            )

    def test_toggle_disables_planning(self):
        with _star_db(seed=1) as db:
            sql = f"SELECT COUNT(*) FROM {STAR_FROM}"
            db.factorized_joins_enabled = False
            plan = db.explain_plan(sql)
            assert plan.find("factorized-join") == []
            result = db.execute(sql)
            assert result.metrics.factorized_joins == 0

    def test_reconciles_factorized_aggregate(self):
        """EXPLAIN ANALYZE over the factorized route: span sums equal
        stage totals exactly (the contract of tests/test_explain.py,
        which pins the serial path and defers this route here)."""
        with _star_db(seed=4) as db:
            result = db.execute(
                "EXPLAIN ANALYZE SELECT nlq_tri(5, sales.amount, "
                "sales.qty, stores.sx, stores.sy, products.px) "
                f"FROM {STAR_FROM}"
            )
            metrics = result.metrics
            trace = result.plan.trace
            assert trace is not None
            aggregate = next(
                span for span in trace.walk() if span.name == "aggregate"
            )
            assert aggregate.attributes["strategy"] == "factorized-join"
            assert trace.total_seconds("scan") == metrics.scan_seconds
            assert (
                trace.total_seconds("accumulate")
                == metrics.accumulate_seconds
            )
            assert trace.total_seconds("merge") == metrics.merge_seconds
            assert (
                trace.total_seconds("finalize") == metrics.finalize_seconds
            )


# ------------------------------------------------------ join summary cache
class TestJoinSummaryCache:
    def _summary_sql(self) -> str:
        return (
            "SELECT nlq_tri(5, sales.amount, sales.qty, stores.sx, "
            f"stores.sy, products.px) FROM {STAR_FROM}"
        )

    def test_hit_serves_zero_rows_scanned(self):
        with _star_db(seed=6) as db:
            db.summary_cache_enabled = True
            sql = self._summary_sql()
            first = db.execute(sql)
            assert first.metrics.summary_cache_misses == 1
            second = db.execute(sql)
            assert second.rows == first.rows
            assert second.metrics.summary_cache_hits == 1
            assert second.metrics.rows_scanned == 0
            assert second.metrics.scans_saved == 3
            assert second.metrics.factorized_joins == 1
            assert second.metrics.rows_join_avoided > 0

    def test_dimension_append_invalidates(self):
        """The composite key holds *every* base table's version: an
        append to a dimension table — which can match existing fact
        rows — must force a recompute, never a stale hit."""
        with _star_db(seed=6, dangling_every=5) as db:
            db.summary_cache_enabled = True
            sql = self._summary_sql()
            first = db.execute(sql)
            # Appending a store that some dangling fact keys point at
            # CHANGES the join result: those rows now match.
            dangling_sid = next(
                row[1]
                for row in db.table("sales").rows()
                if row[1] is not None and row[1] > 100
            )
            db.table("stores").insert_many(
                [(int(dangling_sid), 1.5, -2.5)]
            )
            after = db.execute(sql)
            assert after.metrics.summary_cache_hits == 0
            assert after.metrics.rows_scanned > 0
            assert after.rows != first.rows
            from repro.core.packing import unpack_summary

            got = unpack_summary(after.scalar())
            want = unpack_summary(
                _reference(db, lambda: db.execute(sql)).scalar()
            )
            assert got.n == want.n
            np.testing.assert_allclose(got.L, want.L, rtol=1e-13)
            np.testing.assert_allclose(got.Q, want.Q, rtol=1e-13)

    def test_fact_append_invalidates(self):
        with _star_db(seed=6) as db:
            db.summary_cache_enabled = True
            sql = self._summary_sql()
            db.execute(sql)
            db.table("sales").insert_many([(10_001, 1, 1, 50.0, 2.0)])
            after = db.execute(sql)
            assert after.metrics.summary_cache_hits == 0
            from repro.core.packing import unpack_summary

            got = unpack_summary(after.scalar())
            want = unpack_summary(
                _reference(db, lambda: db.execute(sql)).scalar()
            )
            assert got.n == want.n
            np.testing.assert_allclose(got.L, want.L, rtol=1e-13)

    def test_distinct_statements_get_distinct_entries(self):
        with _star_db(seed=6) as db:
            db.summary_cache_enabled = True
            db.execute(self._summary_sql())
            # Same star, different matrix type: its own entry (miss).
            other = db.execute(
                "SELECT nlq_diag(5, sales.amount, sales.qty, stores.sx, "
                f"stores.sy, products.px) FROM {STAR_FROM}"
            )
            assert other.metrics.summary_cache_hits == 0
            assert other.metrics.summary_cache_misses == 1


# ------------------------------------------------- optimizer interaction
class TestOptimizerInteraction:
    def _with_config(self, db: Database) -> None:
        db.create_table(
            "config",
            TableSchema.build(
                [
                    Column("id", SqlType.INTEGER, nullable=False),
                    ("scale", SqlType.FLOAT),
                ],
                primary_key="id",
            ),
        )
        db.table("config").insert_many([(1, 1.0)])

    def test_join_elimination_then_factorize(self):
        """Both rewrites fire on one statement: the pk = literal arm is
        eliminated first, factorize handles the surviving star — and
        the answer matches the unoptimized execution exactly."""
        with _star_db(seed=8) as db:
            self._with_config(db)
            sql = (
                "SELECT SUM(sales.amount * stores.sx) "
                "FROM sales "
                "JOIN stores ON sales.sid = stores.sid "
                "JOIN config ON config.id = 1"
            )
            report = QueryOptimizer(db.catalog).optimize(
                parse_statement(sql)
            )
            assert report.eliminated_joins == ["config"]
            decision = plan_factorize(db.catalog, report.optimized, report)
            assert decision.factorized
            assert [dim.table for dim in decision.dims] == ["stores"]
            optimized = db.execute_optimized(sql)
            assert optimized.metrics.factorized_joins == 1
            plain = _reference(db, lambda: db.execute(sql))
            assert optimized.scalar() == pytest.approx(
                plain.scalar(), rel=1e-12
            )

    def test_group_by_pushdown_wins_and_results_agree(self):
        """When the group-by-before-join rewrite restructures the
        statement, factorize stands down (refusal names the apply
        order) and both execution orders agree."""
        with _star_db(seed=8) as db:
            sql = (
                "SELECT stores.sid, SUM(sales.amount) "
                "FROM stores JOIN sales ON sales.sid = stores.sid "
                "GROUP BY stores.sid ORDER BY stores.sid"
            )
            report = QueryOptimizer(db.catalog).optimize(
                parse_statement(sql)
            )
            assert report.pushed_group_by
            decision = plan_factorize(db.catalog, report.optimized, report)
            assert not decision.factorized
            assert "apply order" in decision.reason
            # Without the report the refusal is structural: the pushed
            # form joins a derived table, not a stored star.
            bare = plan_factorize(db.catalog, report.optimized)
            assert not bare.factorized
            optimized = db.execute_optimized(sql)
            plain = db.execute(sql)
            assert [row[0] for row in optimized.rows] == [
                row[0] for row in plain.rows
            ]
            np.testing.assert_allclose(
                [row[1] for row in optimized.rows],
                [row[1] for row in plain.rows],
                rtol=1e-12,
            )
            assert optimized.metrics.factorized_joins == 0


# ------------------------------------------------------------- miner API
class TestMinerStarApi:
    def test_models_match_wide_table(self):
        """correlation / regression over a star equal the same models
        over the pre-joined wide table (the classic workflow)."""
        with _star_db(seed=12, n_fact=240, n_dim=10,
                      register_udfs=False) as db:
            miner = WarehouseMiner(db)
            star = miner.star(
                "sales",
                ["stores", "products"],
                [("sid", "sid"), ("pid", "pid")],
            )
            assert miner.dimensions_of(star) == STAR_DIMS
            # Materialize the wide table the star replaces.
            wide_rows = _reference(
                db,
                lambda: db.execute(
                    "SELECT sales.oid, sales.amount, sales.qty, "
                    "stores.sx, stores.sy, products.px "
                    f"FROM {STAR_FROM}"
                ).rows,
            )
            db.create_table(
                "wide",
                TableSchema.build(
                    [
                        Column("i", SqlType.INTEGER, nullable=False),
                        ("amount", SqlType.FLOAT),
                        ("qty", SqlType.FLOAT),
                        ("sx", SqlType.FLOAT),
                        ("sy", SqlType.FLOAT),
                        ("px", SqlType.FLOAT),
                    ],
                    primary_key="i",
                ),
            )
            db.table("wide").insert_many(wide_rows)
            wide_dims = ["amount", "qty", "sx", "sy", "px"]

            c_star = miner.correlation(star)
            c_wide = miner.correlation("wide", wide_dims)
            np.testing.assert_allclose(c_star.rho, c_wide.rho, rtol=1e-10)

            r_star = miner.linear_regression(star, target="sales.amount")
            r_wide = miner.linear_regression(
                "wide", target="amount",
                dimensions=["qty", "sx", "sy", "px"],
            )
            np.testing.assert_allclose(
                r_star.coefficients, r_wide.coefficients, rtol=1e-9
            )
            assert r_star.intercept == pytest.approx(
                r_wide.intercept, rel=1e-9
            )

    def test_fused_clustering_worker_invariant(self):
        fits = []
        for workers in (1, 4):
            with _star_db(seed=13, n_fact=150, n_dim=8, workers=workers,
                          register_udfs=False) as db:
                miner = WarehouseMiner(db)
                star = miner.star(
                    "sales",
                    ["stores", "products"],
                    [("sid", "sid"), ("pid", "pid")],
                )
                km = miner.kmeans(star, 3, method="fused", seed=13)
                em = miner.gaussian_mixture(
                    star, 2, method="fused", seed=13, max_iterations=8
                )
                fits.append((km, em))
        (km1, em1), (km4, em4) = fits
        assert np.array_equal(km1.centroids, km4.centroids)
        assert np.array_equal(km1.weights, km4.weights)
        assert km1.iterations == km4.iterations
        assert np.array_equal(em1.means, em4.means)
        assert em1.log_likelihood == em4.log_likelihood

    def test_star_requires_fused_methods(self):
        from repro.errors import ModelError

        with _star_db(seed=13, n_fact=60, n_dim=6,
                      register_udfs=False) as db:
            miner = WarehouseMiner(db)
            star = miner.star(
                "sales",
                ["stores", "products"],
                [("sid", "sid"), ("pid", "pid")],
            )
            with pytest.raises(ModelError, match="fused"):
                miner.kmeans(star, 2, method="sql")
            with pytest.raises(ModelError, match="fused"):
                miner.gaussian_mixture(star, 2, method="matrix")
            with pytest.raises(ModelError, match="list-form"):
                miner.summarize(star, method="sql")
