"""The serving layer: registry, sessions, micro-batching, shutdown.

Covers the three serving subsystems plus their interaction with the
database lifecycle:

* :class:`~repro.serving.registry.ModelRegistry` — catalog-resident
  persistence (register → get → promote → list), version stamping, and
  survival across registry instances (the tables ARE the storage);
* :class:`~repro.serving.server.ServingSession` — snapshot-consistent
  reads, pinned model bindings, summary reads served from the summary
  cache at the pinned version;
* :class:`~repro.serving.batcher.MicroBatchScorer` — coalescing,
  per-request isolation, typed overload/closed errors, the
  ``serving.enqueue`` / ``serving.flush`` fault sites;
* the ``Database.close`` regression: closing with in-flight requests
  drains the queue and rejects new work typed, instead of deadlocking
  or dropping queued requests.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.kmeans import KMeansModel
from repro.core.models.lda import LdaModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.summary import AugmentedSummary, MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.faults import FaultPlan, FaultSpec
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import (
    FaultInjected,
    RegistryError,
    ServingClosedError,
    ServingOverloadedError,
    SnapshotInvalidatedError,
)
from repro.serving import MicroBatchScorer, ModelRegistry, ServingMetrics
from repro.serving.registry import REGISTRY_TABLE, component_table

D = 3
RNG = np.random.default_rng(11)
X_DATA = RNG.normal(size=(120, D))
Y_DATA = X_DATA @ np.array([1.5, -2.0, 0.5]) + 3.0 + RNG.normal(0, 0.1, 120)
LABELS = (X_DATA[:, 0] > 0).astype(int)


@pytest.fixture
def models():
    return {
        "reg": LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(X_DATA, Y_DATA)
        ),
        "km": KMeansModel.fit_matrix(X_DATA, 3, seed=1),
        "gmm": GaussianMixtureModel.fit_matrix(X_DATA, 2, seed=1),
        "nb": NaiveBayesModel.fit_matrix(X_DATA, LABELS),
        "lda": LdaModel.fit_matrix(X_DATA, LABELS),
    }


@pytest.fixture
def server(db):
    server = db.serve(max_wait_ms=1.0)
    yield server
    server.close()


def _load_points(db: Database, n: int = 60) -> None:
    db.create_table("pts", dataset_schema(D))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(D)):
        columns[name] = X_DATA[:n, index]
    db.load_columns("pts", columns)


# --------------------------------------------------------------- registry
class TestRegistry:
    def test_register_persists_catalog_tables(self, db, server, models):
        version = server.registry.register("churn", models["km"])
        assert version.version == 1 and version.promoted
        assert db.catalog.has_table(REGISTRY_TABLE)
        for part in ("c", "r", "w"):
            assert db.catalog.has_table(component_table("churn", 1, part))

    def test_versions_auto_increment_and_promote_flips(self, server, models):
        server.registry.register("m", models["reg"])
        v2 = server.registry.register("m", models["reg"])
        assert (v2.version, v2.promoted) == (2, False)
        assert server.registry.get("m").version == 1
        server.registry.promote("m", 2)
        assert server.registry.get("m").version == 2
        assert server.registry.get("m", version=1).version == 1
        listed = server.registry.list("m")
        assert [v.version for v in listed] == [2, 1]
        assert [v.promoted for v in listed] == [True, False]

    def test_get_unknown_and_bad_version_are_typed(self, server, models):
        with pytest.raises(RegistryError, match="no model registered"):
            server.registry.get("ghost")
        server.registry.register("m", models["reg"])
        with pytest.raises(RegistryError, match=r"registered: \[1\]"):
            server.registry.get("m", version=9)
        with pytest.raises(RegistryError, match="cannot promote"):
            server.registry.promote("m", 9)

    def test_unregistrable_object_is_typed(self, server):
        with pytest.raises(RegistryError, match="cannot register"):
            server.registry.register("m", object())

    def test_models_survive_registry_instances(self, db, server, models):
        """The catalog tables are the storage: a brand-new registry over
        the same database loads every version back and scores
        identically."""
        for name, model in models.items():
            server.registry.register(name, model)
        reloaded = ModelRegistry(db)
        pts = X_DATA[:7]
        assert np.allclose(
            reloaded.get("reg").score_batch(pts),
            models["reg"].predict(pts),
        )
        assert (
            reloaded.get("km").finalize_scores(
                reloaded.get("km").score_batch(pts)
            )
            == models["km"].assign(pts).tolist()
        )

    def test_dropped_component_table_is_typed(self, db, server, models):
        server.registry.register("m", models["km"])
        db.drop_table(component_table("m", 1, "c"))
        with pytest.raises(RegistryError, match="missing its parameter"):
            server.registry.get("m")


# ------------------------------------------------------- scoring parity
class TestScoringParity:
    def test_all_kinds_match_reference_predictions(self, server, models):
        for name, model in models.items():
            server.registry.register(name, model)
        pts = X_DATA[:9]
        with server.session() as session:
            assert np.allclose(
                session.score("reg", pts).values, models["reg"].predict(pts)
            )
            assert (
                session.score("km", pts).values
                == models["km"].assign(pts).tolist()
            )
            nb = models["nb"]
            assert session.score("nb", pts).values == [
                int(nb.classes[j])
                for j in np.argmax(nb.log_joint(pts), axis=1)
            ]
            lda = models["lda"]
            assert session.score("lda", pts).values == [
                int(lda.classes[j])
                for j in np.argmax(lda.discriminants(pts), axis=1)
            ]
            gmm_scores = session.score("gmm", pts).values
            assert all(1 <= j <= 2 for j in gmm_scores)

    def test_batch_equals_per_row_reference(self, server, models):
        server.registry.register("m", models["nb"])
        handle = server.registry.get("m")
        pts = np.asarray(X_DATA[:20], dtype=float)
        batched = handle.finalize_scores(handle.score_batch(pts))
        assert batched == handle.score_rows(pts)

    def test_null_coordinate_scores_null(self, server, models):
        server.registry.register("m", models["reg"])
        with server.session() as session:
            values = session.score(
                "m", [[1.0, np.nan, 2.0], [1.0, 1.0, 1.0]]
            ).values
        assert values[0] is None and values[1] is not None

    def test_result_is_version_stamped(self, server, models):
        server.registry.register("m", models["reg"])
        server.registry.register("m", models["reg"])
        server.registry.promote("m", 2)
        with server.session() as session:
            result = session.score("m", X_DATA[0], version=1)
        assert (result.model_name, result.model_version) == ("m", 1)

    def test_session_binding_pins_across_promote(self, server, models):
        server.registry.register("m", models["reg"])
        with server.session() as session:
            assert session.score("m", X_DATA[0]).model_version == 1
            server.registry.register("m", models["reg"])
            server.registry.promote("m", 2)
            # The session keeps answering with its pinned binding ...
            assert session.score("m", X_DATA[0]).model_version == 1
        # ... while a fresh session binds the newly promoted version.
        with server.session() as session:
            assert session.score("m", X_DATA[0]).model_version == 2


# ---------------------------------------------------- sessions/snapshots
class TestSessions:
    def test_snapshot_hides_concurrent_appends(self, db, server, models):
        server.registry.register("m", models["reg"])
        _load_points(db, n=40)
        with server.session() as session:
            first = session.score_table("m", "pts", dimension_names(D))
            assert len(first.values) == 40
            server.insert_rows(
                "pts", [(1000 + i, 0.0, 0.0, 0.0) for i in range(8)]
            )
            again = session.score_table("m", "pts", dimension_names(D))
            assert len(again.values) == 40
            assert session.snapshot("pts").stale_rows == 8
        with server.session() as session:
            assert len(
                session.score_table("m", "pts", dimension_names(D)).values
            ) == 48

    def test_score_table_matches_model_on_pinned_rows(
        self, db, server, models
    ):
        server.registry.register("m", models["reg"])
        _load_points(db, n=40)
        with server.session() as session:
            result = session.score_table("m", "pts", dimension_names(D))
            ids = session.snapshot("pts").column_values("i")
        expected = models["reg"].predict(X_DATA[np.asarray(ids) - 1])
        assert np.allclose(result.values, expected)
        assert result.metrics.rows_scanned == 40

    def test_truncate_invalidates_snapshot_typed(self, db, server, models):
        server.registry.register("m", models["reg"])
        _load_points(db, n=20)
        with server.session() as session:
            session.score_table("m", "pts", dimension_names(D))
            db.table("pts").truncate()
            with pytest.raises(SnapshotInvalidatedError, match="pinned"):
                session.score_table("m", "pts", dimension_names(D))

    def test_summary_served_from_cache_at_pinned_version(self, db, server):
        _load_points(db, n=50)
        db.summary_cache_enabled = True
        dims = dimension_names(D)
        # Warm the cache, then pin: the entry version matches the pin.
        db.summary_cache.lookup("pts", dims, MatrixType.TRIANGULAR)
        with server.session() as session:
            stats = session.summary("pts", dims)
            assert server.metrics.snapshot_cache_hits == 1
            # A write after the pin makes the (refreshed) entry useless
            # for this session; the snapshot prefix answers instead.
            server.insert_rows("pts", [(999, 1.0, 1.0, 1.0)])
            db.summary_cache.lookup("pts", dims, MatrixType.TRIANGULAR)
            again = session.summary("pts", dims)
            assert server.metrics.snapshot_cache_hits == 1
        # (n, L, Q) are permutation-invariant, so the raw rows are a
        # valid reference regardless of partition order.
        reference = SummaryStatistics.from_matrix(X_DATA[:50])
        for got in (stats, again):
            assert got.n == 50
            assert np.allclose(got.L, reference.L)
            assert np.allclose(got.Q, reference.Q)

    def test_session_pool_is_bounded_and_typed(self, db, models):
        server = db.serve(max_sessions=2)
        first, second = server.session(), server.session()
        with pytest.raises(ServingOverloadedError, match="session pool"):
            server.session()
        assert server.metrics.sessions_rejected == 1
        first.close()
        third = server.session()  # freed capacity is reusable
        second.close()
        third.close()
        assert server.metrics.sessions_active == 0


# ------------------------------------------------------- micro-batching
class _StubModel:
    """A minimal model handle for driving the batcher directly."""

    def __init__(self, name="stub", version=1, poison=None, fail_batch=False):
        self.name = name
        self.version = version
        self.kind = "regression"
        self.poison = poison
        self.fail_batch = fail_batch

    @property
    def key(self):
        return (self.name, self.version)

    def score_batch(self, X):
        if self.fail_batch:
            raise RuntimeError("batched kernel refused")
        return np.sum(X, axis=1)

    def finalize_scores(self, raw):
        return [float(v) for v in raw]

    def score_rows(self, X):
        out = []
        for row in X:
            if self.poison is not None and row[0] == self.poison:
                raise ValueError(f"poisoned point {row[0]}")
            out.append(float(np.sum(row)))
        return out


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self, db, models):
        server = db.serve(max_wait_ms=25.0, max_batch_size=64)
        server.registry.register("m", models["reg"])
        results = [None] * 24

        def client(index):
            with server.session() as session:
                results[index] = session.score("m", X_DATA[index])

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(24)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r is not None for r in results)
        for index, result in enumerate(results):
            assert result.values == pytest.approx(
                [float(models["reg"].predict(X_DATA[index : index + 1])[0])]
            )
        assert max(r.batched_with for r in results) > 1
        assert server.metrics.coalesce_factor > 1.0
        assert server.metrics.queue_depth_peak >= 2
        server.close()

    def test_coalesced_equals_naive_path(self, db, models):
        server = db.serve(max_wait_ms=1.0)
        server.registry.register("m", models["reg"])
        with server.session() as session:
            pts = X_DATA[:5]
            assert (
                session.score("m", pts).values
                == session.score("m", pts, coalesce=False).values
            )
        server.close()

    def test_poisoned_request_fails_alone(self):
        """Per-request isolation: when the coalesced dispatch fails,
        siblings still get answers; only the poisoned request errors."""
        batcher = MicroBatchScorer(
            ServingMetrics(), max_batch_size=64, max_wait_ms=50.0
        )
        model = _StubModel(poison=-1.0, fail_batch=True)
        good = batcher.submit(model, np.array([[1.0, 2.0]]))
        bad = batcher.submit(model, np.array([[-1.0, 5.0]]))
        also_good = batcher.submit(model, np.array([[3.0, 4.0]]))
        assert good.wait(10.0) == [3.0]
        assert also_good.wait(10.0) == [7.0]
        with pytest.raises(ValueError, match="poisoned"):
            bad.wait(10.0)
        assert good.metrics.fallbacks == 1
        assert good.metrics.statements_batched == 3
        batcher.close()

    def test_flush_fault_degrades_with_identical_answers(self, db, models):
        db.faults = FaultPlan(
            [FaultSpec(site="serving.flush", kind="flaky", times=1)], seed=3
        )
        server = db.serve(max_wait_ms=1.0)
        server.registry.register("m", models["reg"])
        with server.session() as session:
            values = session.score("m", X_DATA[:4]).values
        assert np.allclose(values, models["reg"].predict(X_DATA[:4]))
        assert server.metrics.flush_fallbacks == 1
        server.close()

    def test_enqueue_fault_rejects_only_that_request(self, db, models):
        db.faults = FaultPlan(
            [FaultSpec(site="serving.enqueue", kind="error", times=1)], seed=3
        )
        server = db.serve(max_wait_ms=1.0)
        server.registry.register("m", models["reg"])
        with server.session() as session:
            with pytest.raises(FaultInjected):
                session.score("m", X_DATA[0])
            # The queue was never touched; the next request is fine.
            assert len(session.score("m", X_DATA[0]).values) == 1
        server.close()

    def test_queue_overflow_is_typed_and_drain_answers_queued(self, db, models):
        """With a long wait window the queue holds requests; the bound
        rejects typed, and close(drain=True) still answers everything
        already admitted."""
        server = db.serve(
            max_wait_ms=10_000.0, max_batch_size=1024, max_queue_depth=3
        )
        server.registry.register("m", models["reg"])
        model = server.registry.get("m")
        queued = [
            server._batcher.submit(model, np.asarray([X_DATA[i]]))
            for i in range(3)
        ]
        with pytest.raises(ServingOverloadedError, match="queue is full"):
            server._batcher.submit(model, np.asarray([X_DATA[3]]))
        assert server.metrics.requests_rejected == 1
        server.close()  # drain: all three queued requests get answers
        for index, request in enumerate(queued):
            assert request.wait(10.0) == pytest.approx(
                [float(models["reg"].predict(X_DATA[index : index + 1])[0])]
            )


# ------------------------------------------------------ shutdown/drain
class TestShutdown:
    def test_db_close_drains_queue_and_rejects_new_work(self, db, models):
        """The regression this PR fixes: ``Database.close`` during
        in-flight serving requests must drain the micro-batch queue and
        reject new sessions typed — no deadlock, no dropped requests."""
        server = db.serve(
            max_wait_ms=10_000.0, max_batch_size=1024, max_queue_depth=64
        )
        server.registry.register("m", models["reg"])
        model = server.registry.get("m")
        queued = [
            server._batcher.submit(model, np.asarray([X_DATA[i]]))
            for i in range(5)
        ]
        closer = threading.Thread(target=db.close)
        closer.start()
        closer.join(timeout=20.0)
        assert not closer.is_alive(), "db.close() deadlocked on serving"
        for index, request in enumerate(queued):
            assert request.wait(10.0) == pytest.approx(
                [float(models["reg"].predict(X_DATA[index : index + 1])[0])]
            )
        with pytest.raises(ServingClosedError):
            server.session()
        with pytest.raises(ServingClosedError):
            server.write("SELECT 1 FROM model_registry")
        db.close()  # idempotent, listeners included

    def test_open_session_rejects_typed_after_close(self, db, models):
        server = db.serve(max_wait_ms=1.0)
        server.registry.register("m", models["reg"])
        session = server.session()
        assert len(session.score("m", X_DATA[0]).values) == 1
        db.close()
        with pytest.raises(ServingClosedError):
            session.score("m", X_DATA[0])

    def test_close_without_drain_fails_queued_typed(self, models, db):
        server = db.serve(
            max_wait_ms=10_000.0, max_batch_size=1024, max_queue_depth=64
        )
        server.registry.register("m", models["reg"])
        model = server.registry.get("m")
        request = server._batcher.submit(model, np.asarray([X_DATA[0]]))
        server.close(drain=False)
        with pytest.raises(ServingClosedError, match="before this request"):
            request.wait(10.0)


# ------------------------------------------------------------- explain
class TestExplain:
    def test_explain_reports_binding_and_knobs(self, server, models):
        server.registry.register("m", models["reg"])
        text = server.explain_score("m")
        assert "registry bind 'm' -> v1 (promoted" in text
        assert "micro-batch max_batch_size=64" in text
        assert "snapshot reads pin table.version" in text

    def test_explain_with_table_shows_single_scan_plan(
        self, db, server, models
    ):
        server.registry.register("m", models["km"])
        _load_points(db, n=30)
        text = server.explain_score(
            "m", table="pts", columns=dimension_names(D)
        )
        assert "equivalent single-scan statement" in text
        assert "scan: table pts" in text
        assert "clusterscore" in text

    def test_explain_all_kinds_produce_plans(self, db, server, models):
        _load_points(db, n=30)
        for name, model in models.items():
            server.registry.register(name, model)
            text = server.explain_score(
                name, table="pts", columns=dimension_names(D)
            )
            assert "scan: table pts" in text, name
