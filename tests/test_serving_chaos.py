"""Serving chaos: snapshot isolation under concurrent writers.

The contract every scenario asserts:

* **No torn reads** — every row a session ever observes satisfies the
  dataset invariant (``x_a == id·10 + a``), so a read can never see a
  half-written row, under any thread interleaving.
* **Snapshot consistency** — every read in a session answers against
  the row set pinned at first touch: repeated reads are identical,
  scoring over the snapshot matches the model applied to that exact
  pinned matrix, and the pinned count brackets between the rows
  committed before the session opened and the rows committed at check
  time (stale-but-consistent is allowed; torn is not).
* **Typed failure** — a destructive mutation (DELETE, which truncates)
  surfaces as :class:`~repro.errors.SnapshotInvalidatedError`; armed
  fault sites surface as :class:`~repro.errors.FaultInjected`; nothing
  ever raises untyped or returns silently wrong values.

``CHAOS_SEED`` (env) offsets the parametrized seeds and the fault
plans' probability draws; ``CHAOS_WORKERS`` (default 4) sets the
engine's thread count; ``SERVING_CHAOS_CLIENTS`` (default 6) sets the
concurrent reader/scorer count — the CI serving job runs 2 seeds at 16
clients.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core.models.regression import LinearRegressionModel
from repro.core.summary import AugmentedSummary
from repro.dbms.database import Database
from repro.dbms.faults import FaultPlan, FaultSpec
from repro.dbms.schema import dataset_schema
from repro.errors import (
    FaultInjected,
    ReproError,
    ServingClosedError,
    SnapshotInvalidatedError,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
CHAOS_WORKERS = int(os.environ.get("CHAOS_WORKERS", "4"))
CLIENTS = int(os.environ.get("SERVING_CHAOS_CLIENTS", "6"))

D = 3
SEEDS = [CHAOS_SEED, CHAOS_SEED + 1, CHAOS_SEED + 2]


def _row(identity: int) -> tuple:
    """The invariant row: x_a = id·10 + a, exact in a double."""
    return (identity, *(float(identity * 10 + a) for a in range(1, D + 1)))


def _check_invariant(matrix: np.ndarray) -> None:
    """Every observed row must be internally consistent — the torn-read
    detector.  ``matrix`` columns are (i, x1..xd)."""
    ids = matrix[:, 0]
    for a in range(1, D + 1):
        np.testing.assert_array_equal(
            matrix[:, a], ids * 10 + a, err_msg=f"torn read in x{a}"
        )


def _reference_model() -> LinearRegressionModel:
    rng = np.random.default_rng(5)
    X = rng.normal(size=(80, D))
    y = X @ np.array([2.0, -1.0, 0.5]) + 1.0
    return LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))


@pytest.fixture(params=SEEDS)
def seed(request) -> int:
    return request.param


@pytest.fixture
def serving(seed):
    db = Database(amps=4, executor_workers=CHAOS_WORKERS)
    db.create_table("pts", dataset_schema(D))
    server = db.serve(max_wait_ms=1.0)
    server.registry.register("m", _reference_model())
    server.insert_rows("pts", [_row(i) for i in range(64)])
    yield db, server, seed
    server.close()
    db.close()


COLUMNS = ["i", "x1", "x2", "x3"]
DIMS = ["x1", "x2", "x3"]


def _run_clients(target, count=CLIENTS):
    errors: list[BaseException] = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 - collected and re-raised
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "client thread hung"
    if errors:
        raise errors[0]


def test_snapshot_reads_consistent_under_concurrent_appends(serving):
    db, server, seed = serving
    model = server.registry.get("m")
    next_id = [64]
    stop = threading.Event()
    committed_lock = threading.Lock()

    def writer():
        rng = np.random.default_rng(seed)
        while not stop.is_set():
            with committed_lock:
                start = next_id[0]
                batch = int(rng.integers(1, 9))
                next_id[0] = start + batch
            server.insert_rows(
                "pts", [_row(i) for i in range(start, start + batch)]
            )

    def reader(index):
        with server.session() as session:
            committed_before = sum(
                p.row_count for p in db.table("pts").partitions
            )
            snapshot = session.snapshot("pts")
            matrix = snapshot.numeric_matrix(COLUMNS)
            # Pinned row set: complete, consistent, and bracketed.
            assert matrix.shape[0] == snapshot.row_count
            assert committed_before <= snapshot.row_count
            assert snapshot.row_count <= sum(
                p.row_count for p in db.table("pts").partitions
            )
            _check_invariant(matrix)
            # Repeated reads answer identically (same pinned prefix).
            np.testing.assert_array_equal(
                matrix, snapshot.numeric_matrix(COLUMNS)
            )
            # Scoring over the snapshot equals the model applied to the
            # exact pinned matrix — bit-identical kernels.
            scored = session.score_table("m", "pts", DIMS)
            assert scored.values == model.finalize_scores(
                model.score_batch(matrix[:, 1:])
            )
            assert len(scored.values) == snapshot.row_count

    writers = [threading.Thread(target=writer) for _ in range(2)]
    for thread in writers:
        thread.start()
    try:
        _run_clients(reader)
    finally:
        stop.set()
        for thread in writers:
            thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in writers)
    final = db.table("pts").numeric_matrix(COLUMNS)
    assert final.shape[0] == next_id[0]
    _check_invariant(final)


def test_snapshot_pins_survive_insert_rollbacks(serving):
    """Flaky ``insert.flush`` faults roll whole batches back mid-run;
    pinned prefixes must never include a retracted row."""
    db, server, seed = serving
    db.faults = FaultPlan(
        [
            FaultSpec(
                site="insert.flush", kind="flaky", times=3, probability=0.5
            )
        ],
        seed=seed,
    )
    next_id = [64]
    stop = threading.Event()
    lock = threading.Lock()

    def writer():
        rng = np.random.default_rng(seed + 100)
        while not stop.is_set():
            with lock:
                start = next_id[0]
                batch = int(rng.integers(2, 12))
                next_id[0] = start + batch
            try:
                server.insert_rows(
                    "pts", [_row(i) for i in range(start, start + batch)]
                )
            except ReproError:
                pass  # typed rollback: the whole batch was retracted

    def reader(index):
        with server.session() as session:
            snapshot = session.snapshot("pts")
            matrix = snapshot.numeric_matrix(COLUMNS)
            assert matrix.shape[0] == snapshot.row_count
            _check_invariant(matrix)
            # Ids are unique — a rollback that left a half-flushed batch
            # visible would duplicate or orphan ids.
            ids = matrix[:, 0].astype(int)
            assert len(set(ids.tolist())) == len(ids)

    writers = [threading.Thread(target=writer) for _ in range(2)]
    for thread in writers:
        thread.start()
    try:
        _run_clients(reader)
    finally:
        stop.set()
        for thread in writers:
            thread.join(timeout=30.0)
    db.faults = None
    _check_invariant(db.table("pts").numeric_matrix(COLUMNS))


def test_truncate_surfaces_typed_invalidation(serving):
    """Readers racing a destructive DELETE either answer consistently
    from their pin or raise SnapshotInvalidatedError — never wrong rows."""
    db, server, seed = serving
    outcomes = {"consistent": 0, "invalidated": 0}
    outcomes_lock = threading.Lock()
    start_gate = threading.Event()

    def reader(index):
        with server.session() as session:
            snapshot = session.snapshot("pts")
            start_gate.wait(10.0)
            try:
                for _ in range(50):
                    matrix = snapshot.numeric_matrix(COLUMNS)
                    assert matrix.shape[0] == snapshot.row_count
                    _check_invariant(matrix)
                with outcomes_lock:
                    outcomes["consistent"] += 1
            except SnapshotInvalidatedError:
                with outcomes_lock:
                    outcomes["invalidated"] += 1

    def destroyer():
        start_gate.set()
        server.write("DELETE FROM pts")
        server.insert_rows("pts", [_row(i) for i in range(10)])

    writer = threading.Thread(target=destroyer)
    writer.start()
    _run_clients(reader)
    writer.join(timeout=30.0)
    assert sum(outcomes.values()) == CLIENTS
    # After the truncate every *new* session sees the new 10 rows.
    with server.session() as session:
        matrix = session.snapshot("pts").numeric_matrix(COLUMNS)
    assert matrix.shape[0] == 10
    _check_invariant(matrix)


def test_micro_batched_scores_exact_under_flaky_flush(serving):
    """Coalesced scoring under armed serving fault sites: every answered
    request is bit-identical to the per-row reference; every failure is
    typed."""
    db, server, seed = serving
    model = server.registry.get("m")
    rng = np.random.default_rng(seed + 7)
    points = rng.normal(size=(CLIENTS * 8, D))
    # Reference BEFORE arming faults: per-row path, the kernels'
    # bit-identical contract makes it the batched answer too.
    expected = model.score_rows(np.asarray(points, dtype=float))
    db.faults = FaultPlan(
        [
            FaultSpec(
                site="serving.flush", kind="flaky", times=2, probability=0.5
            ),
            FaultSpec(site="serving.enqueue", kind="error", probability=0.2),
        ],
        seed=seed,
    )

    def client(index):
        with server.session() as session:
            for shot in range(8):
                position = index * 8 + shot
                try:
                    result = session.score("m", points[position])
                except (FaultInjected, ServingClosedError):
                    continue  # typed rejection; request never admitted
                assert result.values == [expected[position]], (
                    f"request {position} answered wrong"
                )

    _run_clients(client)
    db.faults = None
    assert server.metrics.requests_failed == 0
