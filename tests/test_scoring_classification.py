"""In-database classification scoring: NB and LDA in one scan."""

import numpy as np
import pytest

from repro.core.models.lda import LdaModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.scoring.scorer import ModelScorer, scores_as_matrix
from repro.core.scoring.udfs import (
    ClassifyScoreUdf,
    NaiveBayesScoreUdf,
    register_scoring_udfs,
)
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import UdfArgumentError


class TestClassifyScoreUdf:
    def test_argmax_one_based(self):
        assert ClassifyScoreUdf()(1.0, 9.0, 3.0) == 2

    def test_ties_prefer_lowest(self):
        assert ClassifyScoreUdf()(4.0, 4.0) == 1

    def test_null(self):
        assert ClassifyScoreUdf()(1.0, None) is None

    def test_empty_rejected(self):
        with pytest.raises(UdfArgumentError):
            ClassifyScoreUdf()()


class TestNaiveBayesScoreUdf:
    def test_matches_formula(self):
        udf = NaiveBayesScoreUdf()
        # d=2: x=(1,2), mu=(0,0), iv=(1, 0.5), bias=3
        expected = 3.0 - 0.5 * (1.0 * 1.0 + 4.0 * 0.5)
        assert udf(1.0, 2.0, 0.0, 0.0, 1.0, 0.5, 3.0) == pytest.approx(expected)

    def test_bad_arity(self):
        with pytest.raises(UdfArgumentError, match="3d"):
            NaiveBayesScoreUdf()(1.0, 2.0, 3.0)

    def test_null(self):
        assert NaiveBayesScoreUdf()(None, 0.0, 1.0, 0.0) is None


@pytest.fixture(scope="module")
def classification_setup():
    rng = np.random.default_rng(101)
    per_class = 150
    class_specs = [
        ((0.0, 0.0, 0.0), (1.0, 1.5, 1.0)),
        ((5.0, -2.0, 3.0), (1.5, 1.0, 1.0)),
        ((-4.0, 4.0, -1.0), (1.0, 1.0, 2.0)),
    ]
    blocks, labels = [], []
    for index, (mean, sigma) in enumerate(class_specs, start=1):
        blocks.append(rng.normal(mean, sigma, size=(per_class, 3)))
        labels.extend([index] * per_class)
    X = np.vstack(blocks)
    labels = np.asarray(labels)
    shuffle = rng.permutation(len(X))
    X, labels = X[shuffle], labels[shuffle]

    db = Database(amps=4)
    db.create_table("x", dataset_schema(3))
    columns = {"i": np.arange(1, len(X) + 1)}
    for idx, name in enumerate(dimension_names(3)):
        columns[name] = X[:, idx]
    db.load_columns("x", columns)
    register_scoring_udfs(db)
    scorer = ModelScorer(db, "x", dimension_names(3))
    return db, X, labels, scorer


class TestLdaScoring:
    def test_in_db_matches_model_predict(self, classification_setup):
        db, X, labels, scorer = classification_setup
        model = LdaModel.fit_matrix(X, labels)
        scorer.store_lda(model)
        result = scorer.score_lda(model)
        predicted = scores_as_matrix(result, 1).ravel().astype(int)
        assert np.array_equal(predicted, model.predict(X))

    def test_labels_not_indices(self, classification_setup):
        """Classes with non-contiguous labels come back as labels."""
        db, X, labels, scorer = classification_setup
        shifted = labels * 10  # labels 10, 20, 30
        model = LdaModel.fit_matrix(X, shifted)
        scorer.store_lda(model, discriminant_table="disc10")
        result = scorer.score_lda(model, discriminant_table="disc10")
        values = set(scores_as_matrix(result, 1).ravel().astype(int))
        assert values <= {10, 20, 30}

    def test_into_table(self, classification_setup):
        db, X, labels, scorer = classification_setup
        model = LdaModel.fit_matrix(X, labels)
        scorer.store_lda(model)
        scorer.score_lda(model, into="lda_scored")
        assert db.table("lda_scored").row_count == len(X)


class TestNaiveBayesScoring:
    def test_in_db_matches_model_predict(self, classification_setup):
        db, X, labels, scorer = classification_setup
        model = NaiveBayesModel.fit_matrix(X, labels)
        scorer.store_naive_bayes(model)
        result = scorer.score_naive_bayes(model)
        predicted = scores_as_matrix(result, 1).ravel().astype(int)
        assert np.array_equal(predicted, model.predict(X))

    def test_accuracy_against_truth(self, classification_setup):
        db, X, labels, scorer = classification_setup
        model = NaiveBayesModel.fit_matrix(X, labels)
        scorer.store_naive_bayes(model)
        predicted = scores_as_matrix(
            scorer.score_naive_bayes(model), 1
        ).ravel().astype(int)
        # ids are 1..n in row order, so direct comparison works.
        assert np.mean(predicted == labels) > 0.95

    def test_single_statement_single_scan(self, classification_setup):
        db, X, labels, scorer = classification_setup
        model = NaiveBayesModel.fit_matrix(X, labels)
        scorer.store_naive_bayes(model)
        sql = scorer._generator.naive_bayes_udf_sql(model.classes)
        assert sql.count("nbscore(") == 3
        assert sql.count("classifyscore(") == 1
        # X appears once: one scan (the outer SELECT reads the spooled
        # index column only).
        assert sql.count("FROM x") == 1


class TestEndToEndValidation:
    def test_confusion_matrix_over_scored_table(self, classification_setup):
        from repro.core.validation import (
            classification_accuracy,
            confusion_matrix,
        )

        db, X, labels, scorer = classification_setup
        model = LdaModel.fit_matrix(X, labels)
        scorer.store_lda(model)
        scorer.score_lda(model, into="pred")
        if db.catalog.has_table("truth"):
            db.drop_table("truth")
        db.execute("CREATE TABLE truth (i INTEGER PRIMARY KEY, label INTEGER)")
        db.insert_rows(
            "truth",
            [(int(i), int(label)) for i, label in enumerate(labels, start=1)],
        )
        matrix = confusion_matrix(db, "pred", "truth", prediction_column="label")
        assert classification_accuracy(matrix) > 0.95
        assert sum(matrix.values()) == len(X)
