"""The UDF framework: registration, the paper's API constraints, and the
four-phase aggregate protocol."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.udf import (
    HEAP_SEGMENT_BYTES,
    AggregateUdf,
    RowCost,
    ScalarUdf,
    scalar_udf,
)
from repro.errors import (
    UdfArgumentError,
    UdfMemoryError,
    UdfRegistrationError,
)


class _CountingAggregate(AggregateUdf):
    """A trivial aggregate used to exercise the protocol."""

    arity = 1

    def initialize(self):
        return 0.0

    def accumulate(self, state, args):
        return state + float(args[0])

    def merge(self, state, other):
        return state + other

    def finalize(self, state):
        return state


class TestScalarUdf:
    def test_wrap_function(self):
        double = scalar_udf("double_it", lambda v: v * 2, arity=1)
        assert double(21) == 42

    def test_arity_enforced(self):
        double = scalar_udf("double_it", lambda v: v * 2, arity=1)
        with pytest.raises(UdfArgumentError, match="expects 1"):
            double(1, 2)

    def test_array_arguments_rejected(self):
        identity = scalar_udf("ident", lambda v: v)
        with pytest.raises(UdfArgumentError, match="simple types"):
            identity([1, 2, 3])
        with pytest.raises(UdfArgumentError):
            identity({"a": 1})

    def test_array_return_rejected(self):
        bad = scalar_udf("bad", lambda v: [v])
        with pytest.raises(UdfArgumentError):
            bad(1)

    def test_numpy_scalars_accepted(self):
        identity = scalar_udf("ident", lambda v: v)
        assert identity(np.float64(1.5)) == 1.5

    def test_null_argument_allowed(self):
        identity = scalar_udf("ident", lambda v: v)
        assert identity(None) is None

    def test_nested_udf_calls_rejected(self):
        inner = scalar_udf("inner_fn", lambda v: v + 1)

        def calls_inner(v):
            return inner(v)  # a UDF calling a UDF — forbidden

        outer = scalar_udf("outer_fn", calls_inner)
        with pytest.raises(UdfArgumentError, match="cannot call other UDFs"):
            outer(1)

    def test_sequential_calls_fine_after_nesting_error(self):
        inner = scalar_udf("inner_fn", lambda v: v + 1)
        assert inner(1) == 2  # guard must be released

    def test_name_required(self):
        with pytest.raises(UdfRegistrationError):
            scalar_udf("", lambda v: v)

    def test_default_cost(self):
        identity = scalar_udf("ident", lambda v: v)
        assert identity.cost_per_row(3) == RowCost(list_params=3)


class TestAggregateUdf:
    def test_protocol(self):
        aggregate = _CountingAggregate("total")
        state_a = aggregate.initialize()
        for value in (1.0, 2.0):
            state_a = aggregate.accumulate(state_a, (value,))
        state_b = aggregate.accumulate(aggregate.initialize(), (4.0,))
        assert aggregate.finalize(aggregate.merge(state_a, state_b)) == 7.0

    def test_check_args(self):
        aggregate = _CountingAggregate("total")
        with pytest.raises(UdfArgumentError, match="expects 1"):
            aggregate.check_args((1, 2))
        with pytest.raises(UdfArgumentError, match="simple types"):
            aggregate.check_args(([1],))

    def test_heap_segment_enforced(self):
        aggregate = _CountingAggregate("total")
        fits = HEAP_SEGMENT_BYTES // 8
        aggregate.ensure_state_fits(fits)  # exactly full: allowed
        with pytest.raises(UdfMemoryError, match="heap segment"):
            aggregate.ensure_state_fits(fits + 1)


class TestRegistration:
    def test_register_and_call_in_sql(self, db: Database):
        db.register_udf(scalar_udf("triple", lambda v: None if v is None else v * 3))
        db.execute("CREATE TABLE t (v FLOAT)")
        db.execute("INSERT INTO t VALUES (2.0), (NULL)")
        result = db.execute("SELECT triple(v) FROM t ORDER BY 1")
        assert result.rows == [(6.0,), (None,)]

    def test_register_aggregate_and_group(self, db: Database):
        db.register_udf(_CountingAggregate("total"))
        db.execute("CREATE TABLE t (g INTEGER, v FLOAT)")
        db.execute("INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 5.0)")
        result = db.execute("SELECT g, total(v) FROM t GROUP BY g ORDER BY g")
        assert result.rows == [(1, 3.0), (2, 5.0)]

    def test_cannot_shadow_builtin(self, db: Database):
        with pytest.raises(UdfRegistrationError, match="builtin"):
            db.register_udf(scalar_udf("sqrt", lambda v: v))
        with pytest.raises(UdfRegistrationError):
            db.register_udf(_CountingAggregate("sum"))

    def test_duplicate_registration_rejected(self, db: Database):
        db.register_udf(scalar_udf("mine", lambda v: v))
        with pytest.raises(UdfRegistrationError, match="already registered"):
            db.register_udf(scalar_udf("MINE", lambda v: v))

    def test_scalar_aggregate_namespace_shared(self, db: Database):
        db.register_udf(_CountingAggregate("thing"))
        with pytest.raises(UdfRegistrationError):
            db.register_udf(scalar_udf("thing", lambda v: v))

    def test_aggregate_arity_checked_at_plan_time(self, db: Database):
        db.register_udf(_CountingAggregate("total"))
        db.execute("CREATE TABLE t (v FLOAT)")
        from repro.errors import PlanningError

        with pytest.raises(PlanningError, match="expects 1"):
            db.execute("SELECT total(v, v) FROM t")
