"""The summary matrices (n, L, Q) and their derivations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.summary import AugmentedSummary, MatrixType, SummaryStatistics
from repro.errors import ModelError

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 40), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False, width=32),
)


class TestMatrixType:
    def test_codes_round_trip(self):
        for matrix_type in MatrixType:
            assert MatrixType.from_code(matrix_type.code) is matrix_type

    def test_update_ops(self):
        assert MatrixType.DIAGONAL.update_ops(8) == 8
        assert MatrixType.TRIANGULAR.update_ops(8) == 36
        assert MatrixType.FULL.update_ops(8) == 64


class TestFromMatrix:
    def test_matches_definitions(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 4))
        stats = SummaryStatistics.from_matrix(X)
        assert stats.n == 30
        assert np.allclose(stats.L, X.sum(axis=0))
        assert np.allclose(stats.Q, X.T @ X)
        assert np.allclose(stats.mins, X.min(axis=0))
        assert np.allclose(stats.maxs, X.max(axis=0))

    def test_diagonal_type_zeroes_off_diagonal(self):
        X = np.asarray([[1.0, 2.0], [3.0, 4.0]])
        stats = SummaryStatistics.from_matrix(X, MatrixType.DIAGONAL)
        assert stats.Q[0, 1] == 0.0
        assert np.allclose(np.diag(stats.Q), (X * X).sum(axis=0))

    def test_empty_matrix(self):
        stats = SummaryStatistics.from_matrix(np.empty((0, 3)))
        assert stats.n == 0 and stats.d == 3

    def test_one_dimensional_rejected(self):
        with pytest.raises(ModelError):
            SummaryStatistics.from_matrix(np.asarray([1.0, 2.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError, match="Q has shape"):
            SummaryStatistics(1.0, np.zeros(3), np.zeros((2, 2)))


class TestDerivations:
    @pytest.fixture
    def stats_and_x(self):
        rng = np.random.default_rng(1)
        X = rng.normal(50, 10, size=(200, 5))
        return SummaryStatistics.from_matrix(X), X

    def test_mean(self, stats_and_x):
        stats, X = stats_and_x
        assert np.allclose(stats.mean(), X.mean(axis=0))

    def test_covariance_matches_numpy(self, stats_and_x):
        stats, X = stats_and_x
        assert np.allclose(stats.covariance(), np.cov(X.T, bias=True))

    def test_correlation_matches_numpy(self, stats_and_x):
        stats, X = stats_and_x
        assert np.allclose(stats.correlation(), np.corrcoef(X.T))

    def test_variances(self, stats_and_x):
        stats, X = stats_and_x
        assert np.allclose(stats.variances(), X.var(axis=0))

    def test_zero_variance_correlation_rejected(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        with pytest.raises(ModelError, match="zero-variance"):
            SummaryStatistics.from_matrix(X).correlation()

    def test_diagonal_blocks_cross_product_derivations(self):
        stats = SummaryStatistics.from_matrix(
            np.random.default_rng(0).normal(size=(10, 3)), MatrixType.DIAGONAL
        )
        with pytest.raises(ModelError, match="cross-products"):
            stats.covariance()
        with pytest.raises(ModelError):
            stats.correlation()
        stats.variances()  # diagonal-only derivation still fine

    def test_empty_summary_derivations_rejected(self):
        stats = SummaryStatistics.zeros(3)
        with pytest.raises(ModelError, match="no rows"):
            stats.mean()

    def test_sub_summary(self, stats_and_x):
        stats, X = stats_and_x
        sub = stats.sub([0, 2])
        reference = SummaryStatistics.from_matrix(X[:, [0, 2]])
        assert sub.allclose(reference)
        assert np.allclose(sub.mins, reference.mins)


class TestMerge:
    def test_merge_equals_whole(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        first = SummaryStatistics.from_matrix(X[:20])
        second = SummaryStatistics.from_matrix(X[20:])
        merged = first.merge(second)
        assert merged.allclose(SummaryStatistics.from_matrix(X))
        assert np.allclose(merged.mins, X.min(axis=0))
        assert np.allclose(merged.maxs, X.max(axis=0))

    def test_merge_with_empty(self):
        X = np.random.default_rng(3).normal(size=(10, 2))
        stats = SummaryStatistics.from_matrix(X)
        merged = SummaryStatistics.zeros(2).merge(stats)
        assert merged.allclose(stats)

    def test_dimension_mismatch(self):
        with pytest.raises(ModelError, match="dimension"):
            SummaryStatistics.zeros(2).merge(SummaryStatistics.zeros(3))

    def test_type_mismatch(self):
        with pytest.raises(ModelError, match="matrix types"):
            SummaryStatistics.zeros(2, MatrixType.DIAGONAL).merge(
                SummaryStatistics.zeros(2, MatrixType.FULL)
            )

    @given(matrices, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_merge_split_invariant(self, X, split_raw):
        """Any split of the rows merges back to the whole-data summary —
        the invariant that makes partition-parallel aggregation exact."""
        split = split_raw % (X.shape[0] + 1)
        whole = SummaryStatistics.from_matrix(X)
        first = SummaryStatistics.from_matrix(X[:split])
        second = SummaryStatistics.from_matrix(X[split:])
        assert first.merge(second).allclose(whole, rtol=1e-7)

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_property_q_symmetric_psd(self, X):
        """Q = XᵀX is symmetric positive semi-definite."""
        stats = SummaryStatistics.from_matrix(X)
        assert np.allclose(stats.Q, stats.Q.T)
        eigenvalues = np.linalg.eigvalsh(stats.Q)
        assert eigenvalues.min() >= -1e-6 * max(abs(eigenvalues).max(), 1.0)


class TestAugmented:
    def test_blocks(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        augmented = AugmentedSummary.from_xy(X, y)
        assert augmented.d == 3
        assert augmented.n == 40
        Z = np.column_stack([np.ones(40), X, y])
        assert np.allclose(augmented.xtx(), Z[:, :4].T @ Z[:, :4])
        assert np.allclose(augmented.xty(), Z[:, :4].T @ y)
        assert augmented.yty() == pytest.approx(float(y @ y))
        assert augmented.sum_y() == pytest.approx(float(y.sum()))

    def test_row_count_mismatch(self):
        with pytest.raises(ModelError):
            AugmentedSummary.from_xy(np.zeros((5, 2)), np.zeros(4))

    def test_diagonal_summary_rejected(self):
        stats = SummaryStatistics.zeros(4, MatrixType.DIAGONAL)
        with pytest.raises(ModelError):
            AugmentedSummary(stats)

    def test_too_small_rejected(self):
        with pytest.raises(ModelError):
            AugmentedSummary(SummaryStatistics.zeros(2, MatrixType.FULL))
