"""Classification from per-class summaries: Naive Bayes and LDA."""

import numpy as np
import pytest

from repro.core.models.lda import LdaModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.schema import dimension_names
from repro.errors import ModelError
from repro.twm.miner import WarehouseMiner


@pytest.fixture(scope="module")
def labeled_data():
    """Two Gaussian classes with different means and scales."""
    rng = np.random.default_rng(71)
    n_per = 400
    class1 = rng.normal([0.0, 0.0, 0.0], [1.0, 2.0, 1.0], size=(n_per, 3))
    class2 = rng.normal([4.0, 1.0, -3.0], [1.5, 1.0, 1.0], size=(n_per, 3))
    X = np.vstack([class1, class2])
    labels = np.concatenate([np.ones(n_per, int), np.full(n_per, 2)])
    shuffle = rng.permutation(len(X))
    return X[shuffle], labels[shuffle]


class TestNaiveBayes:
    def test_parameters_match_per_class_stats(self, labeled_data):
        X, labels = labeled_data
        model = NaiveBayesModel.fit_matrix(X, labels)
        for index, label in enumerate(model.classes):
            members = X[labels == label]
            assert np.allclose(model.means[index], members.mean(axis=0))
            assert np.allclose(model.variances[index], members.var(axis=0))
            assert model.priors[index] == pytest.approx(0.5)

    def test_separable_classes_high_accuracy(self, labeled_data):
        X, labels = labeled_data
        model = NaiveBayesModel.fit_matrix(X, labels)
        assert model.accuracy(X, labels) > 0.97

    def test_posterior_probabilities_normalized(self, labeled_data):
        X, labels = labeled_data
        model = NaiveBayesModel.fit_matrix(X, labels)
        proba = model.predict_proba(X[:50])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_priors_reflect_imbalance(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(0, 1, (300, 2)), rng.normal(5, 1, (100, 2))]
        )
        labels = np.concatenate([np.ones(300, int), np.full(100, 2)])
        model = NaiveBayesModel.fit_matrix(X, labels)
        assert model.priors[0] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            NaiveBayesModel.from_class_summaries({})

    def test_singleton_class_rejected(self):
        summaries = {
            1: SummaryStatistics.from_matrix(np.ones((1, 2))),
            2: SummaryStatistics.from_matrix(np.zeros((5, 2))),
        }
        with pytest.raises(ModelError, match="need >= 2"):
            NaiveBayesModel.from_class_summaries(summaries)

    def test_dimension_mismatch_rejected(self):
        summaries = {
            1: SummaryStatistics.from_matrix(np.zeros((5, 2))),
            2: SummaryStatistics.from_matrix(np.zeros((5, 3))),
        }
        with pytest.raises(ModelError):
            NaiveBayesModel.from_class_summaries(summaries)

    def test_predict_dimension_check(self, labeled_data):
        X, labels = labeled_data
        model = NaiveBayesModel.fit_matrix(X, labels)
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 7)))


class TestLda:
    def test_pooled_covariance_matches_definition(self, labeled_data):
        X, labels = labeled_data
        model = LdaModel.fit_matrix(X, labels, regularization=0.0)
        scatter = np.zeros((3, 3))
        for label in (1, 2):
            members = X[labels == label]
            centered = members - members.mean(axis=0)
            scatter += centered.T @ centered
        expected = scatter / (len(X) - 2)
        assert np.allclose(model.pooled_covariance, expected)

    def test_separable_classes_high_accuracy(self, labeled_data):
        X, labels = labeled_data
        model = LdaModel.fit_matrix(X, labels)
        assert model.accuracy(X, labels) > 0.97

    def test_boundary_normal_separates_means(self, labeled_data):
        X, labels = labeled_data
        model = LdaModel.fit_matrix(X, labels)
        normal = model.decision_boundary_normal(1, 2)
        mean_gap = model.means[0] - model.means[1]
        # The normal points from class 2's mean toward class 1's.
        assert normal @ mean_gap > 0

    def test_diagonal_summaries_rejected(self, labeled_data):
        X, labels = labeled_data
        summaries = {
            int(label): SummaryStatistics.from_matrix(
                X[labels == label], MatrixType.DIAGONAL
            )
            for label in (1, 2)
        }
        with pytest.raises(ModelError, match="cross-products"):
            LdaModel.from_class_summaries(summaries)

    def test_agrees_with_naive_bayes_on_isotropic_data(self):
        """With equal isotropic class covariances NB and LDA converge to
        near-identical decision rules."""
        rng = np.random.default_rng(5)
        X = np.vstack(
            [rng.normal(0, 1, (500, 2)), rng.normal(3, 1, (500, 2))]
        )
        labels = np.concatenate([np.ones(500, int), np.full(500, 2)])
        nb = NaiveBayesModel.fit_matrix(X, labels)
        lda = LdaModel.fit_matrix(X, labels)
        agreement = np.mean(nb.predict(X) == lda.predict(X))
        assert agreement > 0.99


class TestInDatabaseRoute:
    """The miner's GROUP BY route must equal the matrix route exactly."""

    @pytest.fixture(scope="class")
    def miner_with_labels(self, labeled_data):
        X, labels = labeled_data
        miner = WarehouseMiner(amps=4)
        db = miner.db
        db.execute(
            "CREATE TABLE train (i INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT, "
            "x3 FLOAT, label INTEGER)"
        )
        db.load_columns(
            "train",
            {
                "i": np.arange(1, len(X) + 1),
                "x1": X[:, 0], "x2": X[:, 1], "x3": X[:, 2],
                "label": labels,
            },
        )
        return miner, X, labels

    def test_naive_bayes_matches_matrix_fit(self, miner_with_labels):
        miner, X, labels = miner_with_labels
        db_model = miner.naive_bayes("train", "label", dimension_names(3))
        ref_model = NaiveBayesModel.fit_matrix(X, labels)
        assert db_model.classes == ref_model.classes
        assert np.allclose(db_model.means, ref_model.means)
        assert np.allclose(db_model.variances, ref_model.variances)
        assert np.allclose(db_model.priors, ref_model.priors)

    def test_lda_matches_matrix_fit(self, miner_with_labels):
        miner, X, labels = miner_with_labels
        db_model = miner.lda("train", "label", dimension_names(3))
        ref_model = LdaModel.fit_matrix(X, labels)
        assert np.allclose(db_model.weights, ref_model.weights)
        assert np.allclose(db_model.biases, ref_model.biases)

    def test_label_excluded_from_default_dimensions(self, miner_with_labels):
        miner, X, labels = miner_with_labels
        model = miner.naive_bayes("train", "label")
        assert model.d == 3  # i and label excluded
