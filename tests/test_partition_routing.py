"""Deterministic partition routing.

The headline bug this guards against: ``Table._partition_for`` used to
route rows with builtin ``hash()``, whose string hashing is randomized
per process (``PYTHONHASHSEED``), so the same load produced different
partition layouts run-to-run.  Routing now uses a CRC-32 stable hash;
these tests prove the layout is identical across processes with
different hash seeds and after a persistence round-trip.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dbms.persistence import load_database, save_database
from repro.dbms.schema import TableSchema
from repro.dbms.storage import Table, stable_key_hash
from repro.dbms.types import SqlType


def string_pk_table(partitions: int = 7, rows: int = 200) -> Table:
    schema = TableSchema.build(
        [("k", SqlType.VARCHAR), ("v", SqlType.FLOAT)], primary_key="k"
    )
    table = Table("t", schema, partitions=partitions)
    table.insert_many([(f"user-{i}", float(i)) for i in range(rows)])
    return table


def partition_layout(table: Table) -> list[list[str]]:
    """Per-partition primary-key lists (full layout, not just counts)."""
    return [[row[0] for row in partition.rows()] for partition in table.partitions]


_CHILD_SCRIPT = """\
import json
from repro.dbms.schema import TableSchema
from repro.dbms.storage import Table
from repro.dbms.types import SqlType

schema = TableSchema.build(
    [("k", SqlType.VARCHAR), ("v", SqlType.FLOAT)], primary_key="k"
)
table = Table("t", schema, partitions=7)
table.insert_many([(f"user-{i}", float(i)) for i in range(200)])
print(json.dumps(
    [[row[0] for row in partition.rows()] for partition in table.partitions]
))
"""


def _layout_under_hash_seed(seed: str) -> list[list[str]]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


class TestStableKeyHash:
    def test_equal_numerics_hash_equal(self):
        assert stable_key_hash(3) == stable_key_hash(3.0)
        assert stable_key_hash(1) == stable_key_hash(True)
        assert stable_key_hash(0) == stable_key_hash(False)

    def test_distinct_values_usually_differ(self):
        hashes = {stable_key_hash(f"key-{i}") for i in range(1000)}
        assert len(hashes) > 990

    def test_types_do_not_collide_by_payload(self):
        assert stable_key_hash("3") != stable_key_hash(3)
        assert stable_key_hash(None) != stable_key_hash("")

    def test_known_values_are_frozen(self):
        """The encoding is a persistence-layout contract: changing it
        silently would reshuffle reloaded tables."""
        import zlib

        assert stable_key_hash("abc") == zlib.crc32(b"s:abc")
        assert stable_key_hash(42) == zlib.crc32(b"i:42")
        assert stable_key_hash(2.5) == zlib.crc32(b"f:2.5")
        assert stable_key_hash(None) == zlib.crc32(b"n:")


class TestCrossProcessLayout:
    def test_layout_identical_under_different_hash_seeds(self):
        """Two fresh interpreters with different PYTHONHASHSEED values
        must produce byte-identical partition layouts (the subprocess
        regression demanded by the issue)."""
        layout_a = _layout_under_hash_seed("0")
        layout_b = _layout_under_hash_seed("1")
        assert layout_a == layout_b
        counts = [len(partition) for partition in layout_a]
        assert sum(counts) == 200

    def test_subprocess_layout_matches_in_process(self):
        expected = partition_layout(string_pk_table())
        assert _layout_under_hash_seed("0") == expected

    def test_string_keys_spread_over_partitions(self):
        table = string_pk_table()
        occupied = [p.row_count for p in table.partitions if p.row_count]
        assert len(occupied) >= 5, "stable hash should still distribute"
        assert sum(occupied) == 200


class TestPersistenceLayout:
    def test_layout_survives_save_load_round_trip(self, tmp_path):
        from repro.dbms.database import Database

        db = Database(amps=7)
        schema = TableSchema.build(
            [("k", SqlType.VARCHAR), ("v", SqlType.FLOAT)], primary_key="k"
        )
        db.create_table("t", schema)
        db.insert_rows("t", [(f"user-{i}", float(i)) for i in range(120)])
        before = partition_layout(db.table("t"))

        save_database(db, tmp_path)
        reloaded = load_database(tmp_path)
        after = partition_layout(reloaded.table("t"))
        assert after == before
