"""Expression evaluation: three-valued logic, arithmetic, and row/vector
path equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.expressions import (
    builtin_scalar_registry,
    compile_row_expression,
    compile_vector_expression,
    referenced_columns,
)
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.errors import ExecutionError, PlanningError


def parse_expr(sql):
    return parse_statement(f"SELECT {sql}").items[0].expression


def evaluate(sql, **env):
    names = sorted(env)
    expression = parse_expr(sql)

    def resolver(ref: ast.ColumnRef) -> int:
        return names.index(ref.name.lower())

    fn = compile_row_expression(expression, resolver, builtin_scalar_registry)
    return fn(tuple(env[name] for name in names))


class TestArithmetic:
    def test_basic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("7 / 2") == 3.5
        assert evaluate("-a", a=4) == -4

    def test_mod(self):
        assert evaluate("7 MOD 3") == 1
        assert evaluate("7.5 MOD 2") == 1.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            evaluate("1 / 0")

    def test_mod_by_zero(self):
        with pytest.raises(ExecutionError, match="MOD by zero"):
            evaluate("1 MOD 0")

    def test_null_propagates(self):
        assert evaluate("a + 1", a=None) is None
        assert evaluate("a * 0", a=None) is None
        assert evaluate("-a", a=None) is None
        assert evaluate("a / 0", a=None) is None  # NULL short-circuits


class TestComparisons:
    def test_basic(self):
        assert evaluate("2 > 1") is True
        assert evaluate("1 >= 2") is False
        assert evaluate("'a' < 'b'") is True

    def test_null_comparison_is_unknown(self):
        assert evaluate("a = 1", a=None) is None
        assert evaluate("a <> a", a=None) is None


class TestKleeneLogic:
    def test_and(self):
        assert evaluate("1 = 1 AND 2 = 2") is True
        assert evaluate("1 = 1 AND a = 1", a=None) is None
        assert evaluate("1 = 2 AND a = 1", a=None) is False

    def test_or(self):
        assert evaluate("1 = 2 OR a = 1", a=None) is None
        assert evaluate("1 = 1 OR a = 1", a=None) is True

    def test_not(self):
        assert evaluate("NOT 1 = 2") is True
        assert evaluate("NOT a = 1", a=None) is None


class TestCase:
    def test_first_match_wins(self):
        sql = "CASE WHEN a > 10 THEN 'big' WHEN a > 0 THEN 'small' ELSE 'neg' END"
        assert evaluate(sql, a=20) == "big"
        assert evaluate(sql, a=5) == "small"
        assert evaluate(sql, a=-1) == "neg"

    def test_no_else_yields_null(self):
        assert evaluate("CASE WHEN 1 = 2 THEN 'x' END") is None

    def test_unknown_condition_skipped(self):
        assert evaluate("CASE WHEN a > 0 THEN 'x' ELSE 'y' END", a=None) == "y"


class TestNullPredicates:
    def test_is_null(self):
        assert evaluate("a IS NULL", a=None) is True
        assert evaluate("a IS NOT NULL", a=None) is False

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("5 IN (1, 2)") is False
        assert evaluate("5 NOT IN (1, 2)") is True

    def test_in_list_null_semantics(self):
        assert evaluate("a IN (1, 2)", a=None) is None
        assert evaluate("5 IN (1, NULL)") is None  # unknown, not false
        assert evaluate("1 IN (1, NULL)") is True


class TestFunctions:
    def test_known_functions(self):
        assert evaluate("sqrt(9)") == 3
        assert evaluate("abs(-2)") == 2
        assert evaluate("coalesce(a, 5)", a=None) == 5

    def test_unknown_function(self):
        with pytest.raises(PlanningError, match="unknown function"):
            evaluate("frobnicate(1)")

    def test_star_invalid_in_expression(self):
        with pytest.raises(PlanningError):
            compile_row_expression(ast.Star(), lambda ref: 0)


class TestReferencedColumns:
    def test_dedupes_and_orders(self):
        expression = parse_expr("a + b * a + t.c")
        refs = referenced_columns(expression)
        assert [(r.table, r.name) for r in refs] == [
            (None, "a"), (None, "b"), ("t", "c"),
        ]


class TestVectorPath:
    def _both(self, sql, columns):
        """Evaluate via both paths over a column block; returns (row, vec)."""
        expression = parse_expr(sql)
        names = sorted(columns)

        def resolver(ref: ast.ColumnRef) -> int:
            return names.index(ref.name.lower())

        row_fn = compile_row_expression(expression, resolver)
        vector_fn = compile_vector_expression(expression, resolver)
        assert vector_fn is not None, f"{sql} should vectorize"
        block = np.column_stack([np.asarray(columns[n], float) for n in names])
        row_values = [
            row_fn(tuple(block[i])) for i in range(block.shape[0])
        ]
        return np.asarray(row_values, float), vector_fn(block)

    def test_arithmetic_matches(self):
        rows, vectors = self._both(
            "a * b + 2.0 - a / b", {"a": [1.0, 2.0, 3.0], "b": [4.0, 5.0, 6.0]}
        )
        assert np.allclose(rows, vectors)

    def test_functions_match(self):
        rows, vectors = self._both(
            "sqrt(abs(a)) + exp(b / 10)", {"a": [-4.0, 9.0], "b": [1.0, 2.0]}
        )
        assert np.allclose(rows, vectors)

    def test_mod_matches(self):
        rows, vectors = self._both("a MOD 3.0", {"a": [7.0, 8.0, 9.0]})
        assert np.allclose(rows, vectors)

    def test_unary_minus(self):
        rows, vectors = self._both("-a", {"a": [1.0, -2.0]})
        assert np.allclose(rows, vectors)

    def test_unsupported_returns_none(self):
        expression = parse_expr("CASE WHEN a > 0 THEN 1 ELSE 0 END")
        assert compile_vector_expression(expression, lambda r: 0) is None

    def test_string_literal_not_vectorized(self):
        assert compile_vector_expression(ast.Literal("s"), lambda r: 0) is None

    def test_division_by_zero_raises(self):
        expression = parse_expr("a / b")

        def resolver(ref):
            return {"a": 0, "b": 1}[ref.name]

        fn = compile_vector_expression(expression, resolver)
        with pytest.raises(ExecutionError):
            fn(np.asarray([[1.0, 0.0]]))

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(0.5, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_row_vector_agree(self, pairs):
        columns = {
            "a": [p[0] for p in pairs],
            "b": [p[1] for p in pairs],
        }
        rows, vectors = self._both("a * a - b / 2.0 + a * b", columns)
        assert np.allclose(rows, vectors)
