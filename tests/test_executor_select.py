"""SELECT execution: projection, filters, joins, views, ordering."""

import pytest

from repro.dbms.database import Database
from repro.errors import CatalogError, PlanningError


@pytest.fixture
def people(db: Database) -> Database:
    db.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name VARCHAR, "
        "age INTEGER, city VARCHAR)"
    )
    db.execute(
        "INSERT INTO people VALUES "
        "(1, 'ada', 36, 'london'), (2, 'bob', 25, 'paris'), "
        "(3, 'cy', 61, 'london'), (4, 'dee', 47, NULL)"
    )
    return db


class TestProjection:
    def test_select_columns(self, people):
        result = people.execute("SELECT name, age FROM people ORDER BY id")
        assert result.columns == ["name", "age"]
        assert result.rows[0] == ("ada", 36)

    def test_select_star(self, people):
        result = people.execute("SELECT * FROM people ORDER BY id LIMIT 1")
        assert result.rows == [(1, "ada", 36, "london")]

    def test_expressions_and_aliases(self, people):
        result = people.execute(
            "SELECT age * 2 AS doubled, name FROM people WHERE id = 2"
        )
        assert result.columns == ["doubled", "name"]
        assert result.rows == [(50, "bob")]

    def test_case_expression(self, people):
        result = people.execute(
            "SELECT name, CASE WHEN age >= 40 THEN 'senior' ELSE 'junior' END "
            "FROM people ORDER BY id"
        )
        assert [row[1] for row in result.rows] == [
            "junior", "junior", "senior", "senior",
        ]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 1, 'x'").rows == [(2, "x")]

    def test_column_name_defaults(self, people):
        result = people.execute("SELECT age, age + 1 FROM people LIMIT 1")
        assert result.columns == ["age", "col2"]


class TestWhere:
    def test_filter(self, people):
        result = people.execute("SELECT id FROM people WHERE age > 30 ORDER BY id")
        assert result.column("id") == [1, 3, 4]

    def test_null_is_not_true(self, people):
        # city IS NULL for dee; comparison with NULL excludes the row.
        result = people.execute("SELECT id FROM people WHERE city = 'london'")
        assert sorted(result.column("id")) == [1, 3]

    def test_is_null_predicate(self, people):
        result = people.execute("SELECT id FROM people WHERE city IS NULL")
        assert result.column("id") == [4]

    def test_in_and_between(self, people):
        result = people.execute(
            "SELECT id FROM people WHERE age BETWEEN 25 AND 40 "
            "AND name IN ('ada', 'bob') ORDER BY id"
        )
        assert result.column("id") == [1, 2]

    def test_like(self, people):
        result = people.execute("SELECT name FROM people WHERE name LIKE '%a%'")
        assert sorted(result.column("name")) == ["ada"]


class TestOrderLimit:
    def test_order_desc(self, people):
        result = people.execute("SELECT name FROM people ORDER BY age DESC")
        assert result.column("name") == ["cy", "dee", "ada", "bob"]

    def test_order_by_position(self, people):
        result = people.execute("SELECT name, age FROM people ORDER BY 2")
        assert result.column("age") == [25, 36, 47, 61]

    def test_order_by_position_out_of_range(self, people):
        with pytest.raises(PlanningError, match="out of range"):
            people.execute("SELECT name FROM people ORDER BY 3")

    def test_nulls_sort_last_ascending(self, people):
        result = people.execute("SELECT city FROM people ORDER BY city")
        assert result.column("city")[-1] is None

    def test_multi_key_order(self, people):
        result = people.execute(
            "SELECT city, name FROM people ORDER BY city, name DESC"
        )
        london = [row for row in result.rows if row[0] == "london"]
        assert [r[1] for r in london] == ["cy", "ada"]

    def test_limit(self, people):
        assert len(people.execute("SELECT id FROM people LIMIT 2")) == 2
        assert len(people.execute("SELECT id FROM people LIMIT 0")) == 0


class TestJoins:
    @pytest.fixture
    def with_orders(self, people):
        people.execute(
            "CREATE TABLE orders (oid INTEGER PRIMARY KEY, pid INTEGER, "
            "total FLOAT)"
        )
        people.execute(
            "INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.5), (12, 3, 2.0)"
        )
        return people

    def test_inner_join(self, with_orders):
        result = with_orders.execute(
            "SELECT p.name, o.total FROM people p JOIN orders o "
            "ON o.pid = p.id ORDER BY o.oid"
        )
        assert result.rows == [("ada", 5.0), ("ada", 7.5), ("cy", 2.0)]

    def test_cross_join(self, with_orders):
        result = with_orders.execute(
            "SELECT count(*) FROM people CROSS JOIN orders"
        )
        assert result.scalar() == 12

    def test_comma_join_with_where(self, with_orders):
        result = with_orders.execute(
            "SELECT p.name FROM people p, orders o WHERE o.pid = p.id "
            "AND o.total > 4 ORDER BY o.oid"
        )
        assert result.column("name") == ["ada", "ada"]

    def test_self_join_aliases(self, people):
        result = people.execute(
            "SELECT a.name, b.name FROM people a JOIN people b "
            "ON b.id = a.id + 1 WHERE a.id = 1"
        )
        assert result.rows == [("ada", "bob")]

    def test_ambiguous_column(self, people):
        with pytest.raises(PlanningError, match="ambiguous"):
            people.execute("SELECT name FROM people a, people b")

    def test_unknown_alias_star(self, people):
        with pytest.raises(PlanningError, match="unknown table alias"):
            people.execute("SELECT z.* FROM people p")


class TestDerivedAndViews:
    def test_derived_table(self, people):
        result = people.execute(
            "SELECT s.grown FROM (SELECT age + 1 AS grown FROM people) s "
            "ORDER BY 1"
        )
        assert result.column("grown") == [26, 37, 48, 62]

    def test_view(self, people):
        people.execute("CREATE VIEW adults AS SELECT * FROM people WHERE age >= 30")
        result = people.execute("SELECT count(*) FROM adults")
        assert result.scalar() == 3

    def test_view_with_alias(self, people):
        people.execute("CREATE VIEW v AS SELECT id, age FROM people")
        result = people.execute("SELECT a.age FROM v a WHERE a.id = 1")
        assert result.scalar() == 36

    def test_view_sees_new_rows(self, people):
        people.execute("CREATE VIEW v AS SELECT count(*) AS c FROM people")
        assert people.execute("SELECT c FROM v").scalar() == 4
        people.execute("INSERT INTO people VALUES (5, 'ed', 30, 'rome')")
        assert people.execute("SELECT c FROM v").scalar() == 5

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError, match="unknown table"):
            db.execute("SELECT 1 FROM nope")

    def test_unknown_column(self, people):
        with pytest.raises(PlanningError, match="unknown column"):
            people.execute("SELECT nope FROM people")
