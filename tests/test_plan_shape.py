"""Plan-shape regression tests: the paper's 'one scan' claims, asserted.

Ordonez's central performance argument (Sections 3.4–3.5) is that UDF
model building and scoring each take exactly *one* scan of X.  Until
now the suite could only check that indirectly, through simulated
timings.  EXPLAIN exposes the operator tree, so these tests pin the
claims structurally: if a future change sneaks in a spool, an extra
scan, or a subquery, these fail even when the numbers still look
plausible.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import PlanShape, plan_shape, scaled_dataset
from repro.core.nlq_udf import nlq_call_sql
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.dbms.schema import dimension_names


def data_table_scans(plan) -> list:
    """Scans of the data set X itself (model tables are tiny and don't
    count against the paper's one-scan claim)."""
    return [node for node in plan.scans if node.detail.startswith("table x ")]


@pytest.fixture
def dims():
    return dimension_names(4)


class TestModelBuildSingleScan:
    def test_nlq_build_is_exactly_one_scan(self, loaded_db, dims):
        db, _, _ = loaded_db
        plan = db.explain_plan(nlq_call_sql("x", dims))
        assert len(plan.scans) == 1
        assert len(plan.find("subquery")) == 0
        assert len(plan.find("aggregate")) == 1
        (aggregate,) = plan.find("aggregate")
        assert any("single-scan" in note for note in aggregate.notes)

    def test_group_by_sub_models_still_one_scan(self, loaded_db, dims):
        # Section 3.4: per-group (n, L, Q) sub-models come from the SAME
        # single scan — GROUP BY adds hashing, not passes over X.
        db, _, _ = loaded_db
        sql = nlq_call_sql("x", dims, group_by="i MOD 4")
        plan = db.explain_plan(sql)
        assert len(plan.scans) == 1
        assert len(plan.find("aggregate")) == 1
        assert len(plan.find("sort")) == 1  # ORDER BY grp, not a rescan

    def test_long_sql_route_is_also_one_scan_but_wider(self, loaded_db, dims):
        # The rival SQL route (1 + d + d² sum() terms) is one scan too —
        # its cost difference is per-term evaluation, not plan shape.
        from repro.core.sqlgen import NlqSqlGenerator

        db, _, _ = loaded_db
        sql = NlqSqlGenerator("x", dims).long_query_sql()
        plan = db.explain_plan(sql)
        assert len(plan.scans) == 1
        (aggregate,) = plan.find("aggregate")
        assert "[sum" in aggregate.detail


class TestScoringSingleScan:
    @pytest.fixture
    def scoring_db(self, loaded_db):
        db, _, _ = loaded_db
        db.execute(
            "CREATE TABLE beta (b0 FLOAT, b1 FLOAT, b2 FLOAT, "
            "b3 FLOAT, b4 FLOAT);"
            "INSERT INTO beta VALUES (1.0, 0.1, 0.2, 0.3, 0.4)"
        )
        return db

    def test_scoring_udf_is_one_scan_of_x(self, scoring_db, dims):
        sql = ScoringSqlGenerator("x", dims).regression_udf_sql("beta")
        plan = scoring_db.explain_plan(sql)
        assert len(data_table_scans(plan)) == 1
        assert len(plan.find("subquery")) == 0
        # One cross join against the one-row BETA table is the whole
        # price of bringing the model to the data.
        joins = [n for n in plan.nodes() if n.operator == "cross join"]
        assert len(joins) == 1

    def test_scoring_expression_route_same_shape(self, scoring_db, dims):
        sql = ScoringSqlGenerator("x", dims).regression_expression_sql("beta")
        plan = scoring_db.explain_plan(sql)
        assert len(data_table_scans(plan)) == 1
        assert len(plan.find("subquery")) == 0


class TestMultiScanContrast:
    def test_self_join_is_two_scans(self, loaded_db):
        # Sanity check that the scan counter can fail: a self-join
        # genuinely reads X twice.
        db, _, _ = loaded_db
        plan = db.explain_plan(
            "SELECT sum(a.x1 * b.x2) FROM x a JOIN x b ON a.i = b.i"
        )
        assert len(plan.scans) == 2
        assert len(data_table_scans(plan)) == 2

    def test_derived_table_adds_a_spool(self, loaded_db):
        db, _, _ = loaded_db
        plan = db.explain_plan(
            "SELECT sum(q.v) FROM (SELECT t.x1 AS v FROM x t) q"
        )
        assert len(plan.find("subquery")) == 1


class TestBenchHarnessPlanShape:
    def test_plan_shape_helper(self):
        data = scaled_dataset(1000, d=4, physical_rows=64)
        shape = plan_shape(
            data, nlq_call_sql(data.table, data.dimensions)
        )
        assert isinstance(shape, PlanShape)
        assert shape.single_scan
        assert shape.scans == 1
        assert shape.aggregates == 1
        assert shape.joins == 0
        assert shape.subqueries == 0

    def test_plan_shape_charges_no_simulated_time(self):
        data = scaled_dataset(1000, d=2, physical_rows=64)
        before = data.db.simulated_time
        plan_shape(data, nlq_call_sql(data.table, data.dimensions))
        assert data.db.simulated_time == before
