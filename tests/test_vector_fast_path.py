"""The executor's vectorized aggregation fast path: when it engages,
when it must not, and that it is actually used (not just correct)."""

import numpy as np
import pytest

from repro.core.nlq_udf import NlqListUdf
from repro.core.summary import MatrixType
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names


class _SpyNlqUdf(NlqListUdf):
    """Counts which accumulation path the executor drives."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.row_calls = 0
        self.block_calls = 0

    def accumulate(self, state, args):
        self.row_calls += 1
        return super().accumulate(state, args)

    def accumulate_block(self, state, block):
        self.block_calls += 1
        return super().accumulate_block(state, block)


@pytest.fixture
def spy_db():
    rng = np.random.default_rng(111)
    n = 120
    db = Database(amps=4)
    db.create_table("x", dataset_schema(2))
    db.load_columns(
        "x",
        {
            "i": np.arange(1, n + 1),
            "x1": rng.normal(size=n),
            "x2": rng.normal(size=n),
        },
    )
    spy = _SpyNlqUdf("spy_nlq")
    db.register_udf(spy)
    return db, spy, n


class TestPathSelection:
    def test_plain_scan_uses_block_path(self, spy_db):
        db, spy, n = spy_db
        db.execute("SELECT spy_nlq(2, x1, x2) FROM x")
        assert spy.row_calls == 0
        assert spy.block_calls > 0

    def test_where_clause_forces_row_path(self, spy_db):
        db, spy, n = spy_db
        db.execute("SELECT spy_nlq(2, x1, x2) FROM x WHERE x1 > -100")
        assert spy.block_calls == 0
        assert spy.row_calls == n

    def test_group_by_numeric_expression_uses_block_path(self, spy_db):
        db, spy, n = spy_db
        db.execute(
            "SELECT i MOD 3, spy_nlq(2, x1, x2) FROM x GROUP BY i MOD 3"
        )
        assert spy.row_calls == 0
        assert spy.block_calls > 0

    def test_multiple_numeric_group_keys_use_block_path(self, spy_db):
        db, spy, n = spy_db
        db.execute(
            "SELECT i MOD 2, i MOD 3, spy_nlq(2, x1, x2) FROM x "
            "GROUP BY i MOD 2, i MOD 3"
        )
        assert spy.row_calls == 0
        assert spy.block_calls > 0

    def test_derived_table_source_forces_row_path(self, spy_db):
        db, spy, n = spy_db
        db.execute(
            "SELECT spy_nlq(2, s.x1, s.x2) FROM "
            "(SELECT x1, x2 FROM x) s"
        )
        assert spy.block_calls == 0
        assert spy.row_calls == n

    def test_varchar_group_key_forces_row_path(self, spy_db):
        db, spy, n = spy_db
        db.execute("CREATE TABLE labeled (i INTEGER PRIMARY KEY, x1 FLOAT, "
                   "x2 FLOAT, tag VARCHAR)")
        db.execute(
            "INSERT INTO labeled VALUES (1, 1.0, 2.0, 'a'), (2, 3.0, 4.0, 'b')"
        )
        db.execute(
            "SELECT tag, spy_nlq(2, x1, x2) FROM labeled GROUP BY tag"
        )
        assert spy.block_calls == 0
        assert spy.row_calls == 2


class TestPathEquivalence:
    # numpy's pairwise summation reorders float additions relative to
    # the sequential row path, so equivalence is to ~1 ulp of the sums,
    # not byte-identity of the packed payloads.
    def test_both_paths_equivalent_summaries(self, spy_db):
        from repro.core.packing import unpack_summary

        db, spy, _n = spy_db
        fast = unpack_summary(
            db.execute("SELECT spy_nlq(2, x1, x2) FROM x").scalar()
        )
        slow = unpack_summary(
            db.execute("SELECT spy_nlq(2, x1, x2) FROM x WHERE 1 = 1").scalar()
        )
        assert fast.allclose(slow, rtol=1e-12)
        assert np.array_equal(fast.mins, slow.mins)
        assert np.array_equal(fast.maxs, slow.maxs)

    def test_group_paths_equivalent(self, spy_db):
        from repro.core.packing import unpack_summary

        db, spy, _n = spy_db
        fast = db.execute(
            "SELECT i MOD 4, spy_nlq(2, x1, x2) FROM x GROUP BY i MOD 4 "
            "ORDER BY 1"
        ).rows
        slow = db.execute(
            "SELECT i MOD 4, spy_nlq(2, x1, x2) FROM x WHERE 1 = 1 "
            "GROUP BY i MOD 4 ORDER BY 1"
        ).rows
        for (key_a, payload_a), (key_b, payload_b) in zip(fast, slow):
            assert key_a == key_b
            assert unpack_summary(payload_a).allclose(
                unpack_summary(payload_b), rtol=1e-12
            )

    def test_diag_matrix_both_paths(self):
        rng = np.random.default_rng(7)
        n = 80
        db = Database(amps=3)
        db.create_table("x", dataset_schema(3))
        db.load_columns(
            "x",
            {
                "i": np.arange(1, n + 1),
                "x1": rng.normal(size=n),
                "x2": rng.normal(size=n),
                "x3": rng.normal(size=n),
            },
        )
        spy = _SpyNlqUdf("spy_diag")
        spy.matrix_type = MatrixType.DIAGONAL
        db.register_udf(spy)
        from repro.core.packing import unpack_summary

        dims = ", ".join(dimension_names(3))
        fast = unpack_summary(
            db.execute(f"SELECT spy_diag(3, {dims}) FROM x").scalar()
        )
        slow = unpack_summary(
            db.execute(f"SELECT spy_diag(3, {dims}) FROM x WHERE 1 = 1").scalar()
        )
        assert fast.allclose(slow, rtol=1e-12)
