"""Code shown in docs/ must actually work.

Two layers:

* the **extraction runner** — every fenced ```python / ```sql block in
  every ``docs/*.md`` file is executed, per file, in order, in a shared
  namespace (so a later block can build on an earlier one's tables and
  registrations).  A doc edit that breaks its own example fails CI.
* **handwritten tests** that pin properties the prose *claims* beyond
  what the blocks assert themselves (merge invariance, NULL handling).

Blocks with no info string or any other language tag (grammar,
rendered EXPLAIN output, tables) are documentation-only and skipped.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.nlq_udf import nlq_call_sql, register_nlq_udfs
from repro.core.packing import unpack_summary
from repro.core.scoring.udfs import register_scoring_udfs
from repro.dbms.database import Database
from repro.dbms.metrics import QueryMetrics
from repro.dbms.udf import AggregateUdf, RowCost, ScalarUdf, scalar_udf

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
FENCE = re.compile(r"^```(\S*)\s*$")


def fenced_blocks(path: Path) -> list[tuple[int, str, str]]:
    """(start line, language, code) for every fenced block in *path*."""
    blocks: list[tuple[int, str, str]] = []
    language: str | None = None
    start = 0
    body: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE.match(line)
        if match is None:
            if language is not None:
                body.append(line)
            continue
        if language is None:
            language, start, body = match.group(1), number, []
        else:
            blocks.append((start, language, "\n".join(body)))
            language = None
    assert language is None, f"{path.name}: unclosed fence at line {start}"
    return blocks


def runnable_blocks(path: Path) -> list[tuple[int, str, str]]:
    return [b for b in fenced_blocks(path) if b[1] in ("python", "sql")]


def docs_namespace() -> dict:
    """What every docs example may assume is in scope.

    A fresh 4-AMP database plus the names the guides use; UDF
    registration stays in the blocks so readers see it.
    """
    return {
        "db": Database(amps=4),
        "math": math,
        "np": np,
        "Database": Database,
        "QueryMetrics": QueryMetrics,
        "AggregateUdf": AggregateUdf,
        "ScalarUdf": ScalarUdf,
        "scalar_udf": scalar_udf,
        "RowCost": RowCost,
        "register_nlq_udfs": register_nlq_udfs,
        "register_scoring_udfs": register_scoring_udfs,
        "nlq_call_sql": nlq_call_sql,
        "unpack_summary": unpack_summary,
    }


DOC_FILES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_exist_and_have_examples():
    assert DOC_FILES, "docs/ directory is empty"
    assert any(runnable_blocks(path) for path in DOC_FILES)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_examples_run(path: Path):
    """Execute the file's python/sql blocks in order, one namespace."""
    namespace = docs_namespace()
    for line, language, code in runnable_blocks(path):
        try:
            if language == "sql":
                namespace["db"].execute(code)
            else:
                exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} line {line} ({language} block): "
                f"{type(error).__name__}: {error}"
            )


class GeometricMean(AggregateUdf):
    """The aggregate UDF example from docs/udf_guide.md, verbatim."""

    arity = 1

    def initialize(self):
        return [0.0, 0]

    def accumulate(self, state, args):
        state[0] += math.log(args[0])
        state[1] += 1
        return state

    def merge(self, state, other):
        state[0] += other[0]
        state[1] += other[1]
        return state

    def finalize(self, state):
        return math.exp(state[0] / state[1]) if state[1] else None


class TestUdfGuide:
    def test_geometric_mean_in_sql(self, db: Database):
        db.register_udf(GeometricMean("geomean"))
        db.execute("CREATE TABLE t (v FLOAT)")
        db.execute("INSERT INTO t VALUES (2.0), (8.0)")
        assert db.execute("SELECT geomean(v) FROM t").scalar() == pytest.approx(4.0)

    def test_geometric_mean_empty(self, db: Database):
        db.register_udf(GeometricMean("geomean"))
        db.execute("CREATE TABLE t (v FLOAT)")
        assert db.execute("SELECT geomean(v) FROM t").scalar() is None

    def test_geometric_mean_merge_invariant(self):
        """Any split of the rows merges to the whole-data result — the
        property the guide tells authors to test."""
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        aggregate = GeometricMean("g")
        whole = aggregate.initialize()
        for value in values:
            whole = aggregate.accumulate(whole, (value,))
        for split in range(len(values) + 1):
            left = aggregate.initialize()
            for value in values[:split]:
                left = aggregate.accumulate(left, (value,))
            right = aggregate.initialize()
            for value in values[split:]:
                right = aggregate.accumulate(right, (value,))
            merged = aggregate.merge(left, right)
            assert aggregate.finalize(merged) == pytest.approx(
                math.exp(sum(math.log(v) for v in values) / len(values))
            )

    def test_celsius_scalar_example(self, db: Database):
        db.register_udf(
            scalar_udf(
                "celsius",
                lambda f: None if f is None else (f - 32) / 1.8,
                arity=1,
            )
        )
        db.execute("CREATE TABLE readings (temp_f FLOAT)")
        db.execute("INSERT INTO readings VALUES (212.0), (NULL)")
        result = db.execute("SELECT celsius(temp_f) FROM readings ORDER BY 1")
        assert result.rows == [(100.0,), (None,)]
