"""Code shown in docs/ must actually work."""

import math

import pytest

from repro.dbms.database import Database
from repro.dbms.udf import AggregateUdf, scalar_udf


class GeometricMean(AggregateUdf):
    """The aggregate UDF example from docs/udf_guide.md, verbatim."""

    arity = 1

    def initialize(self):
        return [0.0, 0]

    def accumulate(self, state, args):
        state[0] += math.log(args[0])
        state[1] += 1
        return state

    def merge(self, state, other):
        state[0] += other[0]
        state[1] += other[1]
        return state

    def finalize(self, state):
        return math.exp(state[0] / state[1]) if state[1] else None


class TestUdfGuide:
    def test_geometric_mean_in_sql(self, db: Database):
        db.register_udf(GeometricMean("geomean"))
        db.execute("CREATE TABLE t (v FLOAT)")
        db.execute("INSERT INTO t VALUES (2.0), (8.0)")
        assert db.execute("SELECT geomean(v) FROM t").scalar() == pytest.approx(4.0)

    def test_geometric_mean_empty(self, db: Database):
        db.register_udf(GeometricMean("geomean"))
        db.execute("CREATE TABLE t (v FLOAT)")
        assert db.execute("SELECT geomean(v) FROM t").scalar() is None

    def test_geometric_mean_merge_invariant(self):
        """Any split of the rows merges to the whole-data result — the
        property the guide tells authors to test."""
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        aggregate = GeometricMean("g")
        whole = aggregate.initialize()
        for value in values:
            whole = aggregate.accumulate(whole, (value,))
        for split in range(len(values) + 1):
            left = aggregate.initialize()
            for value in values[:split]:
                left = aggregate.accumulate(left, (value,))
            right = aggregate.initialize()
            for value in values[split:]:
                right = aggregate.accumulate(right, (value,))
            merged = aggregate.merge(left, right)
            assert aggregate.finalize(merged) == pytest.approx(
                math.exp(sum(math.log(v) for v in values) / len(values))
            )

    def test_celsius_scalar_example(self, db: Database):
        db.register_udf(
            scalar_udf(
                "celsius",
                lambda f: None if f is None else (f - 32) / 1.8,
                arity=1,
            )
        )
        db.execute("CREATE TABLE readings (temp_f FLOAT)")
        db.execute("INSERT INTO readings VALUES (212.0), (NULL)")
        result = db.execute("SELECT celsius(temp_f) FROM readings ORDER BY 1")
        assert result.rows == [(100.0,), (None,)]
