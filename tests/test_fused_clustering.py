"""One-scan fused clustering iterations and the summary-matrix cache.

Two properties hold this PR together:

* **Fused parity** — a fused ``kmeansiter`` iteration (assignment and
  per-cluster (N, L, Q) accumulation inside one scan) is **bit-identical**
  to the two-scan reference (assignment SELECT + GROUP BY nLQ UDF) at
  any worker count, because the fused kernel replays the scoring and
  GROUP BY arithmetic exactly.
* **Cache freshness** — the Database-level summary cache may serve a
  statement with zero rows scanned only when the table's version
  counters prove the entry current; appends trigger an incremental
  watermark refresh of exactly the suffix, destructive mutations force
  a full rebuild.  A stale *answer* is impossible by construction, and
  these tests try to provoke one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fused import (
    fused_call_sql,
    register_fused_udfs,
    unpack_fused_payload,
)
from repro.core.models.correlation import CorrelationModel
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.kmeans import KMeansModel, _plus_plus_init
from repro.core.nlq_udf import compute_nlq_udf, nlq_call_sql, register_nlq_udfs
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names

D = 3
DIMS = dimension_names(D)

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _dataset(seed: int, n: int = 120) -> np.ndarray:
    """Clustered data so K-means iterations do real reassignment work."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 30.0, size=(4, D))
    return centers[rng.integers(0, 4, n)] + rng.normal(0.0, 3.0, (n, D))


def _make_db(X: np.ndarray, workers: int = 4) -> Database:
    db = Database(amps=4, executor_workers=workers)
    db.create_table("x", dataset_schema(D))
    columns = {"i": np.arange(1, X.shape[0] + 1)}
    for index, name in enumerate(DIMS):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    return db


# --------------------------------------------------------- K-means parity
class TestFusedKMeansParity:
    @pytest.mark.parametrize("workers", [1, 4])
    @given(seed=st.integers(0, 2**20), k=st.sampled_from([1, 2, 3, 5]))
    @settings(**_SETTINGS)
    def test_fused_matches_two_scan_bitwise(self, workers, seed, k):
        X = _dataset(seed)
        db = _make_db(X, workers=workers)
        try:
            fused = KMeansModel.fit_dbms(db, "x", DIMS, k, seed=seed)
            two_scan = KMeansModel.fit_dbms_two_scan(
                db, "x", DIMS, k, seed=seed
            )
            assert np.array_equal(fused.centroids, two_scan.centroids)
            assert np.array_equal(fused.radii, two_scan.radii)
            assert np.array_equal(fused.weights, two_scan.weights)
            assert fused.iterations == two_scan.iterations
            assert fused.inertia == two_scan.inertia
        finally:
            db.close()

    def test_worker_count_invariant(self):
        """Partials merge in partition order, so the executor's worker
        count can never change a single bit of the model."""
        fits = []
        X = _dataset(7)
        for workers in (1, 4):
            db = _make_db(X, workers=workers)
            try:
                fits.append(KMeansModel.fit_dbms(db, "x", DIMS, 3, seed=7))
            finally:
                db.close()
        one, four = fits
        assert np.array_equal(one.centroids, four.centroids)
        assert np.array_equal(one.radii, four.radii)
        assert np.array_equal(one.weights, four.weights)

    def test_single_fused_scan_per_iteration(self):
        """The fused fit issues exactly one SELECT per iteration —
        the materialized assignment pass is gone."""
        X = _dataset(3)
        db = _make_db(X)
        try:
            statements = []
            original = db.execute

            def counting_execute(sql):
                statements.append(sql)
                return original(sql)

            db.execute = counting_execute
            model = KMeansModel.fit_dbms(db, "x", DIMS, 3, seed=3)
            assert len(statements) == model.iterations
            assert all("kmeansiter" in sql for sql in statements)
        finally:
            db.close()

    def test_fused_payload_decodes_per_cluster_summaries(self):
        X = _dataset(4, n=60)
        db = _make_db(X)
        try:
            udf = register_fused_udfs(db)["kmeansiter"]
            centroids = X[:2].copy()
            udf.set_centroids(centroids)
            payload = db.execute(
                fused_call_sql("kmeansiter", "x", DIMS)
            ).scalar()
            groups, extra = unpack_fused_payload(payload)
            assert extra is None
            assert sum(stats.n for stats in groups.values()) == 60
            # The per-cluster summaries replay a plain assignment.
            labels = np.argmin(
                ((X[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            ) + 1
            for j, stats in groups.items():
                assert stats.n == int((labels == j).sum())
        finally:
            db.close()


# ------------------------------------------------------------ EM parity
class TestFusedEm:
    def test_worker_count_deterministic(self):
        fits = []
        X = _dataset(11, n=90)
        for workers in (1, 4):
            db = _make_db(X, workers=workers)
            try:
                fits.append(
                    GaussianMixtureModel.fit_dbms(
                        db, "x", DIMS, 2, max_iterations=15, seed=3
                    )
                )
            finally:
                db.close()
        one, four = fits
        assert np.array_equal(one.means, four.means)
        assert np.array_equal(one.variances, four.variances)
        assert np.array_equal(one.weights, four.weights)
        assert one.log_likelihood == four.log_likelihood

    def test_matches_in_memory_fit(self):
        X = _dataset(12, n=90)
        db = _make_db(X)
        try:
            fused = GaussianMixtureModel.fit_dbms(
                db, "x", DIMS, 2, max_iterations=15, seed=3
            )
        finally:
            db.close()
        reference = GaussianMixtureModel.fit_matrix(
            X, 2, max_iterations=15, seed=3
        )
        assert fused.iterations == reference.iterations
        assert np.allclose(fused.means, reference.means)
        assert np.allclose(fused.variances, reference.variances)
        assert np.allclose(fused.weights, reference.weights)


# --------------------------------------------- k-means++ seeding regression
class TestSeedingRegression:
    """Pinned regression: k-means++ seeding must sample the *whole*
    dataset.  The old incremental fit seeded from only the first block,
    so partition-ordered data could never seed a late-arriving cluster.
    """

    def test_plus_plus_init_spans_the_dataset(self):
        near = np.zeros((256, 2))
        far = np.full((256, 2), 100.0)
        X = np.vstack([near, far])
        centroids = _plus_plus_init(X, 2, np.random.default_rng(0))
        # With D² weighting the second centroid *must* come from the
        # opposite cluster — unless sampling only saw the prefix.
        assert centroids[:, 0].min() < 50.0 < centroids[:, 0].max()

    def test_fit_incremental_seeds_past_the_first_block(self):
        rng = np.random.default_rng(0)
        near = rng.normal(0.0, 0.5, size=(256, 2))
        far = rng.normal(100.0, 0.5, size=(256, 2))
        X = np.vstack([near, far])
        model = KMeansModel.fit_incremental(X, 2, block_rows=256, seed=0)
        firsts = np.sort(model.centroids[:, 0])
        assert abs(firsts[0]) < 5.0
        assert abs(firsts[1] - 100.0) < 5.0
        assert np.all(model.weights > 0.25)


# -------------------------------------------------------- summary cache
class TestSummaryCache:
    @pytest.mark.parametrize("matrix_type", list(MatrixType))
    def test_fresh_hit_serves_zero_rows_bitwise(self, matrix_type):
        X = _dataset(5, n=100)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            cold = compute_nlq_udf(db, "x", DIMS, matrix_type)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_misses == 1
            assert metrics.rows_scanned == 100
            warm = compute_nlq_udf(db, "x", DIMS, matrix_type)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_hits == 1
            assert metrics.summary_cache_misses == 0
            assert metrics.scans_saved == 1
            assert metrics.rows_scanned == 0
            assert warm.n == cold.n
            assert np.array_equal(warm.L, cold.L)
            assert np.array_equal(warm.Q, cold.Q)
        finally:
            db.close()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_cache_hit_model_build_identical(self, workers):
        """Acceptance: the second model build over the same columns
        scans zero rows and produces the identical model."""
        X = _dataset(8, n=100)
        db = _make_db(X, workers=workers)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            cold = CorrelationModel.from_summary(
                compute_nlq_udf(db, "x", DIMS), list(DIMS)
            )
            warm = CorrelationModel.from_summary(
                compute_nlq_udf(db, "x", DIMS), list(DIMS)
            )
            assert db._executor.last_metrics.rows_scanned == 0
            assert np.array_equal(warm.rho, cold.rho)
            assert warm.n == cold.n
        finally:
            db.close()

    def test_insert_refreshes_exactly_the_appended_suffix(self):
        X = _dataset(6, n=100)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            compute_nlq_udf(db, "x", DIMS)
            appended = [(101, 1.0, 2.0, 3.0), (102, 4.0, 5.0, 6.0)]
            db.insert_rows("x", appended)
            stale = compute_nlq_udf(db, "x", DIMS)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_hits == 1
            assert metrics.rows_scanned == 2  # the suffix, not the table
            assert stale.n == 102
            reference = SummaryStatistics.from_matrix(
                np.vstack([X, np.asarray(appended)[:, 1:]])
            )
            assert stale.allclose(reference)
            # A second call is a fresh hit again: zero rows.
            compute_nlq_udf(db, "x", DIMS)
            assert db._executor.last_metrics.rows_scanned == 0
        finally:
            db.close()

    def test_destructive_mutation_forces_rebuild(self):
        X = _dataset(9, n=100)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            compute_nlq_udf(db, "x", DIMS)
            db.execute("DELETE FROM x WHERE i <= 50")
            rebuilt = compute_nlq_udf(db, "x", DIMS)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_misses == 1
            assert metrics.summary_cache_hits == 0
            assert rebuilt.n == 50
            assert rebuilt.allclose(SummaryStatistics.from_matrix(X[50:]))
        finally:
            db.close()

    def test_disabling_falls_back_to_the_scan(self):
        X = _dataset(10, n=100)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            cached = compute_nlq_udf(db, "x", DIMS)
            db.summary_cache_enabled = False
            scanned = compute_nlq_udf(db, "x", DIMS)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_hits == 0
            assert metrics.rows_scanned == 100
            assert scanned.allclose(cached)
        finally:
            db.close()

    def test_cache_is_off_by_default(self):
        X = _dataset(13, n=40)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            assert not db.summary_cache_enabled
            compute_nlq_udf(db, "x", DIMS)
            metrics = db._executor.last_metrics
            assert metrics.summary_cache_hits == 0
            assert metrics.summary_cache_misses == 0
            assert metrics.rows_scanned == 40
        finally:
            db.close()


# ------------------------------------------------------ EXPLAIN rendering
class TestExplainRendering:
    def test_fused_iteration_note_and_span(self):
        X = _dataset(14, n=60)
        db = _make_db(X)
        try:
            udf = register_fused_udfs(db)["kmeansiter"]
            udf.set_centroids(X[:2].copy())
            sql = fused_call_sql("kmeansiter", "x", DIMS)
            assert "fused clustering iteration" in db.explain(sql)
            result = db.execute("EXPLAIN ANALYZE " + sql)
            assert result.plan.trace.find("fused-iteration")
            assert any(
                "fused clustering iteration" in note
                for node in result.plan.find("aggregate")
                for note in node.notes
            )
        finally:
            db.close()

    def test_summary_cache_notes_track_freshness(self):
        X = _dataset(15, n=60)
        db = _make_db(X)
        try:
            register_nlq_udfs(db)
            db.summary_cache_enabled = True
            sql = nlq_call_sql("x", DIMS)
            assert "summary-cache miss" in db.explain(sql)
            compute_nlq_udf(db, "x", DIMS)  # warms the cache
            result = db.execute("EXPLAIN ANALYZE " + sql)
            rendered = "\n".join(row[0] for row in result.rows)
            assert "summary-cache hit" in rendered
            assert result.metrics.rows_scanned == 0
            db.insert_rows("x", [(61, 1.0, 2.0, 3.0)])
            assert "summary-cache hit (stale)" in db.explain(sql)
        finally:
            db.close()
