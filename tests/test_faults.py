"""Fault injection, engine supervision, and failure-recovery contracts.

Covers the :mod:`repro.dbms.faults` plan itself (determinism, flaky /
skip / probability semantics), the :class:`PartitionEngine` supervision
knobs (bounded retries, per-task timeouts, cancel + drain on fatal
failure), graceful degradation from the vectorized paths to the row
path, the thread-safe block-cache accounting, ``insert_many``'s
validated-prefix and flush-rollback guarantees, and ``Database.close()``
exception safety.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.engine import PartitionEngine
from repro.dbms.faults import FAULT_SITES, NULL_FAULTS, FaultPlan, FaultSpec
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import (
    ConstraintViolation,
    FaultInjected,
    PartitionExecutionError,
    PartitionTimeoutError,
    ReproError,
)


# ------------------------------------------------------------- FaultPlan
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no.such.site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("engine.task", kind="explode")

    def test_null_faults_disabled_without_a_call(self):
        assert NULL_FAULTS.enabled is False
        NULL_FAULTS.fire("engine.task", partition=0)  # no-op, never raises

    def test_error_fault_raises_fault_injected_by_default(self):
        plan = FaultPlan().fail("partition.scan")
        with pytest.raises(FaultInjected) as excinfo:
            plan.fire("partition.scan", partition=3)
        assert excinfo.value.site == "partition.scan"
        assert excinfo.value.attributes["partition"] == 3
        assert isinstance(excinfo.value, ReproError)
        assert plan.trips("partition.scan") == 1

    def test_partition_filter(self):
        plan = FaultPlan().fail("partition.scan", partition=2)
        plan.fire("partition.scan", partition=0)
        plan.fire("partition.scan", partition=1)
        with pytest.raises(FaultInjected):
            plan.fire("partition.scan", partition=2)
        assert plan.trips() == 1

    def test_flaky_fails_then_succeeds(self):
        plan = FaultPlan().flaky("engine.task", times=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("engine.task", partition=0)
        plan.fire("engine.task", partition=0)  # healed
        assert plan.trips("engine.task") == 2

    def test_flaky_hit_counters_are_per_partition(self):
        plan = FaultPlan().flaky("engine.task", times=1)
        with pytest.raises(FaultInjected):
            plan.fire("engine.task", partition=0)
        # A different partition has its own counter: still armed.
        with pytest.raises(FaultInjected):
            plan.fire("engine.task", partition=1)
        plan.fire("engine.task", partition=0)
        plan.fire("engine.task", partition=1)

    def test_skip_first_arms_late(self):
        plan = FaultPlan().add(
            FaultSpec("partition.scan", "error", skip_first=2)
        )
        plan.fire("partition.scan", partition=0)
        plan.fire("partition.scan", partition=0)
        with pytest.raises(FaultInjected):
            plan.fire("partition.scan", partition=0)

    def test_custom_error_class_and_instance(self):
        plan = FaultPlan().fail("insert.flush", error=OSError)
        with pytest.raises(OSError):
            plan.fire("insert.flush", partition=0)
        marker = RuntimeError("disk on fire")
        plan = FaultPlan().fail("insert.flush", error=marker)
        with pytest.raises(RuntimeError) as excinfo:
            plan.fire("insert.flush", partition=0)
        assert excinfo.value is marker

    def test_delay_sleeps_then_proceeds(self):
        plan = FaultPlan().delay("engine.task", seconds=0.02)
        started = time.perf_counter()
        plan.fire("engine.task", partition=0)
        assert time.perf_counter() - started >= 0.02

    def test_probability_draws_are_seed_deterministic(self):
        def trip_pattern(seed):
            plan = FaultPlan(seed=seed).add(
                FaultSpec("partition.scan", "error", probability=0.5)
            )
            pattern = []
            for partition in range(4):
                for _ in range(8):
                    try:
                        plan.fire("partition.scan", partition=partition)
                        pattern.append(False)
                    except FaultInjected:
                        pattern.append(True)
            return pattern

        first = trip_pattern(seed=11)
        assert trip_pattern(seed=11) == first  # replayable
        assert any(first) and not all(first)  # actually probabilistic
        assert trip_pattern(seed=12) != first  # seed matters

    def test_probability_independent_of_interleaving(self):
        # Decisions are keyed per (spec, site, partition, hit), so firing
        # partitions in any order yields the same per-partition pattern.
        def pattern(order):
            plan = FaultPlan(seed=3).add(
                FaultSpec("partition.scan", "error", probability=0.5)
            )
            trips = {p: [] for p in order}
            for _ in range(6):
                for partition in order:
                    try:
                        plan.fire("partition.scan", partition=partition)
                        trips[partition].append(False)
                    except FaultInjected:
                        trips[partition].append(True)
            return trips

        assert pattern([0, 1, 2, 3]) == pattern([3, 1, 0, 2])

    def test_reset_forgets_hits_keeps_specs(self):
        plan = FaultPlan().flaky("engine.task", times=1)
        with pytest.raises(FaultInjected):
            plan.fire("engine.task", partition=0)
        plan.fire("engine.task", partition=0)
        plan.reset()
        with pytest.raises(FaultInjected):
            plan.fire("engine.task", partition=0)

    def test_all_sites_are_armable(self):
        for site in FAULT_SITES:
            plan = FaultPlan().fail(site)
            with pytest.raises(FaultInjected):
                plan.fire(site)


def _child_running(pid: int) -> bool:
    """True while *pid* is a live (non-zombie) process.

    A terminated-but-unreaped child shows as state ``Z`` in
    ``/proc/<pid>/stat`` until the pool's management thread collects it;
    that counts as dead — it holds no CPU, memory, or file handles.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by another user
        return False
    try:
        with open(f"/proc/{pid}/stat") as handle:
            state = handle.read().rsplit(") ", 1)[1].split()[0]
    except (OSError, IndexError):  # pragma: no cover - raced with reaping
        return False
    return state != "Z"


# ------------------------------------------------- engine supervision
class TestEngineSupervision:
    def test_retries_heal_flaky_idempotent_tasks(self):
        engine = PartitionEngine(4, max_retries=3, retry_backoff_seconds=0.0)
        attempts = [0, 0, 0]

        def make(index):
            def task():
                attempts[index] += 1
                if index == 1 and attempts[index] <= 2:
                    raise RuntimeError("flaky")
                return index

            return task

        results = engine.map([make(i) for i in range(3)], idempotent=True)
        assert results == [0, 1, 2]
        assert attempts == [1, 3, 1]
        assert engine.last_task_retries == 2
        engine.close()

    def test_non_idempotent_tasks_never_retry(self):
        engine = PartitionEngine(2, max_retries=5, retry_backoff_seconds=0.0)
        attempts = [0]

        def boom():
            attempts[0] += 1
            raise RuntimeError("not safe to retry")

        with pytest.raises(PartitionExecutionError):
            engine.map([boom, lambda: 1])
        assert attempts[0] == 1
        engine.close()

    def test_retry_budget_exhausted_raises_with_attribution(self):
        engine = PartitionEngine(2, max_retries=2, retry_backoff_seconds=0.0)

        def boom():
            raise RuntimeError("always broken")

        with pytest.raises(PartitionExecutionError) as excinfo:
            engine.map(
                [lambda: 1, boom], idempotent=True, partition_ids=[5, 9]
            )
        assert excinfo.value.partitions == [9]
        assert engine.last_task_retries == 2
        engine.close()

    def test_exponential_backoff_sleeps_between_attempts(self):
        engine = PartitionEngine(
            2, max_retries=2, retry_backoff_seconds=0.02
        )
        attempts = [0]

        def flaky():
            attempts[0] += 1
            if attempts[0] <= 2:
                raise RuntimeError("flaky")
            return 1

        started = time.perf_counter()
        assert engine.map([flaky, lambda: 2], idempotent=True) == [1, 2]
        # Two backoffs: 0.02 + 0.04.
        assert time.perf_counter() - started >= 0.06
        engine.close()

    def test_timeout_raises_partition_timeout(self):
        engine = PartitionEngine(4, timeout_seconds=0.1)

        def slow():
            time.sleep(1.0)
            return 1

        with pytest.raises(PartitionExecutionError) as excinfo:
            engine.map([lambda: 0, slow, lambda: 2], partition_ids=[0, 7, 2])
        error = excinfo.value
        assert isinstance(error.first_error, PartitionTimeoutError)
        assert error.partitions == [7]
        assert engine.last_task_timeouts == 1
        engine.close()

    def test_timeout_abandons_pool_and_stuck_task_drains(self):
        engine = PartitionEngine(4, timeout_seconds=0.05)
        release = threading.Event()

        def stuck():
            release.wait(5.0)
            return 1

        pools_before = None
        with pytest.raises(PartitionExecutionError):
            engine.map([stuck, lambda: 2])
        pools_before = engine.pools_created
        # The stuck task is still running on the orphaned pool, visible
        # through active_tasks only while supervision wraps tasks.
        assert engine.map([lambda: 10, lambda: 20]) == [10, 20]
        assert engine.pools_created == pools_before + 1
        release.set()
        deadline = time.perf_counter() + 5.0
        while engine.active_tasks and time.perf_counter() < deadline:
            time.sleep(0.005)
        assert engine.active_tasks == 0
        engine.close()

    def test_process_fatal_timeout_terminates_children(self):
        """Process-executor latch: a fatal timeout must not orphan the
        pool's worker children.  The engine terminates every worker
        (``last_terminated_pids``), the children actually die, and the
        next statement runs correctly on a fresh pool."""
        with _scoring_db(
            4, executor_kind="process", task_timeout_seconds=0.25
        ) as db:
            sql = "SELECT sum(x1), count(*) FROM x WHERE i >= 1"
            baseline = db.execute(sql).rows
            engine = db._executor.engine
            assert engine.last_process_fallback is None
            db.faults = FaultPlan().delay(
                "engine.task", seconds=10.0, partition=1
            )
            with pytest.raises(PartitionExecutionError) as excinfo:
                db.execute(sql)
            assert isinstance(
                excinfo.value.first_error, PartitionTimeoutError
            )
            pids = list(engine.last_terminated_pids)
            assert pids, "timeout teardown must record the killed workers"
            deadline = time.perf_counter() + 10.0
            while (
                any(_child_running(pid) for pid in pids)
                and time.perf_counter() < deadline
            ):
                time.sleep(0.05)
            survivors = [pid for pid in pids if _child_running(pid)]
            assert not survivors, f"orphaned worker processes: {survivors}"
            pools_before = engine.pools_created
            db.faults = NULL_FAULTS
            assert db.execute(sql).rows == baseline
            assert engine.pools_created == pools_before + 1

    def test_serial_timeout_enforced_post_hoc(self):
        engine = PartitionEngine(1, timeout_seconds=0.02)

        def slow():
            time.sleep(0.05)
            return 1

        # Serial tasks cannot be preempted, but a budget overrun still
        # fails the statement — raised directly, seed-style.
        with pytest.raises(PartitionTimeoutError):
            engine.map([slow])
        assert engine.last_task_timeouts == 1

    def test_fatal_error_cancels_pending_and_drains_running(self):
        # Satellite regression: an exception in task 0 must not leave
        # tasks 1..N running after map() returns.
        engine = PartitionEngine(2)
        started: set[int] = set()
        finished: set[int] = set()
        lock = threading.Lock()

        def boom():
            time.sleep(0.01)
            raise RuntimeError("first partition exploded")

        def make(index):
            def task():
                with lock:
                    started.add(index)
                time.sleep(0.05)
                with lock:
                    finished.add(index)
                return index

            return task

        tasks = [boom] + [make(i) for i in range(1, 8)]
        with pytest.raises(PartitionExecutionError) as excinfo:
            engine.map(tasks)
        # No task outlives the call: whatever started has finished...
        with lock:
            assert started == finished
        # ...and with 2 workers and a fast failure, some of the 7
        # trailing tasks never started at all (they were cancelled).
        assert len(started) < 7
        assert excinfo.value.cancelled >= 1
        # The error identity is deterministic: partition 0's failure.
        assert excinfo.value.partitions[0] == 0
        assert isinstance(excinfo.value.first_error, RuntimeError)
        engine.close()

    def test_engine_task_fault_site_fires_per_attempt(self):
        plan = FaultPlan().flaky("engine.task", times=1, partition=1)
        engine = PartitionEngine(
            2, max_retries=1, retry_backoff_seconds=0.0, faults=plan
        )
        assert engine.map(
            [lambda: 10, lambda: 20], idempotent=True
        ) == [10, 20]
        assert engine.last_task_retries == 1
        assert plan.trips("engine.task") == 1
        engine.close()

    def test_unsupervised_map_runs_raw_tasks(self):
        # With NULL_FAULTS and no knobs the tasks run unwrapped: the
        # exact objects are invoked, nothing is counted.
        engine = PartitionEngine(1)
        assert not engine.supervised
        assert engine.map([lambda: 1, lambda: 2]) == [1, 2]
        assert engine.last_task_retries == 0
        assert engine.last_task_timeouts == 0

    def test_configured_like_copies_supervision(self):
        plan = FaultPlan()
        engine = PartitionEngine(
            2,
            timeout_seconds=1.5,
            max_retries=3,
            retry_backoff_seconds=0.2,
            faults=plan,
        )
        clone = engine.configured_like(8)
        assert clone.workers == 8
        assert clone.timeout_seconds == 1.5
        assert clone.max_retries == 3
        assert clone.retry_backoff_seconds == 0.2
        assert clone.faults is plan
        engine.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PartitionEngine(2, timeout_seconds=0.0)
        with pytest.raises(ValueError):
            PartitionEngine(2, max_retries=-1)
        with pytest.raises(ValueError):
            PartitionEngine(2, retry_backoff_seconds=-0.1)


# -------------------------------------------------- graceful degradation
def _scoring_db(workers=1, **kwargs):
    rng = np.random.default_rng(7)
    n, d = 120, 2
    X = rng.normal(50.0, 10.0, size=(n, d))
    y = 2.0 + X @ np.asarray([1.0, -2.0]) + rng.normal(0, 0.1, n)
    db = Database(amps=4, executor_workers=workers, **kwargs)
    db.create_table("x", dataset_schema(d, with_y=True))
    columns = {"i": np.arange(1, n + 1), "y": y}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    return db


class TestGracefulDegradation:
    AGG = "SELECT sum(x1), sum(x2), count(*) FROM x"
    # A WHERE that keeps every row forces the row-partitioned path: the
    # bit-exact reference the degraded vectorized query must reproduce
    # (block-wise float summation associates differently, so the
    # vectorized answer itself is only approximately equal).
    AGG_ROW = "SELECT sum(x1), sum(x2), count(*) FROM x WHERE i >= 1"
    PROJ = "SELECT i, x1 * 2 + x2 FROM x"

    @pytest.mark.parametrize("workers", [1, 4])
    def test_vectorized_aggregate_falls_back_to_row_path(self, workers):
        with _scoring_db(workers) as db:
            row_reference = db.execute(self.AGG_ROW)
            vectorized = db.execute(self.AGG)
            db.faults = FaultPlan().fail(
                "block.materialize", error=RuntimeError("kernel bug")
            )
            result = db.execute(self.AGG)
            # Bit-identical to the row path it degraded to, and within
            # float noise of the vectorized answer it replaced.
            assert result.rows == row_reference.rows
            assert result.rows[0] == pytest.approx(vectorized.rows[0])
            assert result.metrics.fallbacks == 1
            assert "kernel bug" in result.metrics.fallback_reason
            # The degraded statement reports row-path work, once.
            assert result.metrics.rows_processed == 120

    @pytest.mark.parametrize("workers", [1, 4])
    def test_vectorized_projection_falls_back_to_row_path(self, workers):
        with _scoring_db(workers) as db:
            expected = db.execute(self.PROJ)
            db.faults = FaultPlan().fail(
                "block.materialize", error=RuntimeError("kernel bug")
            )
            result = db.execute(self.PROJ)
            assert result.rows == expected.rows
            assert result.metrics.fallbacks == 1
            assert "kernel bug" in result.metrics.fallback_reason

    def test_fallback_metrics_match_plain_row_path(self):
        # A degraded run's counters equal a row-path run's, plus the
        # fallback record itself.
        with _scoring_db(4) as db:
            row = db.execute(self.AGG_ROW).metrics
            db.faults = FaultPlan().fail("block.materialize")
            degraded = db.execute(self.AGG).metrics
            assert degraded.fallbacks == 1
            assert degraded.rows_processed == row.rows_processed
            assert degraded.parallel_tasks == row.parallel_tasks
            assert degraded.partitions_processed == row.partitions_processed
            assert degraded.block_cache_hits == 0
            assert degraded.block_cache_misses == 0

    def test_fallback_visible_in_explain_analyze(self):
        with _scoring_db(4) as db:
            db.faults = FaultPlan().fail(
                "block.materialize", error=RuntimeError("kernel bug")
            )
            plan = db.explain_plan(self.AGG, analyze=True)
            [aggregate] = plan.find("aggregate")
            assert aggregate.span is not None
            strategy = aggregate.span.attributes["strategy"]
            assert strategy == "row-partitioned (fallback)"
            assert (
                "kernel bug"
                in aggregate.span.attributes["fallback_reason"]
            )
            # The failed vectorized attempt stays visible in the raw
            # trace, marked failed, and did not pair with the operator.
            failed = [
                span
                for span in plan.trace.find("aggregate")
                if span.attributes.get("failed")
            ]
            assert len(failed) == 1
            # Stage totals still reconcile with the (row-path) spans.
            metrics = plan.metrics
            assert plan.trace.total_seconds("scan") == pytest.approx(
                metrics.scan_seconds
            )

    def test_fallback_failure_propagates_typed(self):
        # When the row path fails too, the statement fails with the row
        # path's typed error — degradation retries once, not forever.
        with _scoring_db(4) as db:
            db.faults = FaultPlan().fail("engine.task", partition=1)
            with pytest.raises(PartitionExecutionError) as excinfo:
                db.execute(self.AGG)
            assert excinfo.value.partitions == [1]
            assert db._executor.last_metrics.fallbacks == 1
            assert db._executor.engine.active_tasks == 0

    def test_retries_preempt_fallback(self):
        # A flaky kernel healed by engine retries never degrades.
        with _scoring_db(4) as db:
            expected = db.execute(self.AGG)
            db.task_retries = 2
            db.faults = FaultPlan().flaky(
                "block.materialize", times=1, partition=2
            )
            result = db.execute(self.AGG)
            assert result.rows == expected.rows
            assert result.metrics.fallbacks == 0
            assert result.metrics.task_retries == 1


# ------------------------------------------- block-cache thread safety
class TestBlockCacheAccounting:
    def test_counters_exact_under_many_workers(self):
        # Satellite regression: cache hit/miss totals are assembled from
        # per-task locals merged in partition order, so they are exact
        # for every statement at any worker count.
        with _scoring_db(8) as db:
            query = "SELECT sum(x1), sum(x2) FROM x"
            first = db.execute(query).metrics
            tasks = first.parallel_tasks
            assert tasks > 1
            assert first.block_cache_misses == tasks
            assert first.block_cache_hits == 0
            for _ in range(20):
                metrics = db.execute(query).metrics
                assert metrics.block_cache_hits == tasks
                assert metrics.block_cache_misses == 0

    def test_partition_counters_still_served_for_tests(self):
        # The shared per-partition counters remain (storage-level tests
        # and EXPLAIN ANALYZE use them); per-statement metrics just no
        # longer read them.  Pinned to the thread executor: these are
        # in-process counters — under ``kind="process"`` the scan runs
        # in worker processes and the parent's partitions never touch
        # their caches at all.
        with _scoring_db(4, executor_kind="thread") as db:
            db.execute("SELECT sum(x1) FROM x")
            partitions = db.table("x").partitions
            assert sum(p.cache_misses for p in partitions) > 0


# -------------------------------------------------- insert_many atomicity
def _pk_table(db):
    db.execute(
        "CREATE TABLE t (i INTEGER PRIMARY KEY, x FLOAT)"
    )
    return db.table("t")


class TestInsertManyFaults:
    def test_validation_failure_keeps_validated_prefix(self):
        with Database(amps=4) as db:
            table = _pk_table(db)
            rows = [(0, 0.0), (1, 1.0), (2, 2.0), (1, 99.0), (4, 4.0)]
            with pytest.raises(ConstraintViolation):
                table.insert_many(rows)
            # Rows validated before the duplicate PK are kept — exactly
            # the per-row loop's behaviour; the suffix never lands.
            assert table.row_count == 3
            assert sorted(r[0] for r in table.rows()) == [0, 1, 2]

    def test_flush_failure_rolls_back_whole_batch(self):
        # Fail the flush of partition 2: partitions 0 and 1 have already
        # been extended when it trips, and must be rolled back.
        plan = FaultPlan().fail("insert.flush", partition=2)
        with Database(amps=4, faults=plan) as db:
            table = _pk_table(db)
            rows = [(i, float(i)) for i in range(20)]
            with pytest.raises(FaultInjected):
                table.insert_many(rows)
            assert table.row_count == 0
            assert all(p.row_count == 0 for p in table.partitions)

    def test_flush_rollback_releases_primary_keys(self):
        plan = FaultPlan().flaky("insert.flush", times=1, partition=0)
        with Database(amps=4, faults=plan) as db:
            table = _pk_table(db)
            rows = [(i, float(i)) for i in range(20)]
            with pytest.raises(FaultInjected):
                table.insert_many(rows)
            assert table.row_count == 0
            # Retrying the identical batch succeeds: the failed flush
            # released its staged keys — no phantom duplicates.
            assert table.insert_many(rows) == 20
            assert table.row_count == 20

    def test_sql_insert_under_flush_fault_leaves_table_unchanged(self):
        with Database(amps=4) as db:
            _pk_table(db)
            db.execute("INSERT INTO t VALUES (1, 1.0)")
            # Arm after the seed row so only the batch can trip.
            db.faults = FaultPlan().fail("insert.flush")
            with pytest.raises(FaultInjected):
                db.execute(
                    "INSERT INTO t VALUES (2, 2.0), (3, 3.0), "
                    "(4, 4.0), (5, 5.0), (6, 6.0)"
                )
            db.faults = None
            assert db.table("t").row_count == 1
            assert db.execute("SELECT i FROM t").rows == [(1,)]


# ------------------------------------------------------- close() safety
class TestCloseSafety:
    def test_close_during_in_flight_parallel_query(self):
        with _scoring_db(4) as db:
            expected = db.execute("SELECT sum(x1), count(*) FROM x").rows
            db.faults = FaultPlan().delay("engine.task", seconds=0.05)
            outcome: dict = {}

            def run():
                try:
                    outcome["rows"] = db.execute(
                        "SELECT sum(x1), count(*) FROM x"
                    ).rows
                except BaseException as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.02)  # let the query reach the pool
            db.close()  # blocks until in-flight tasks finish
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            # The in-flight statement completed correctly or failed
            # typed — never hung, never returned garbage.
            if "error" in outcome:
                assert isinstance(outcome["error"], ReproError)
            else:
                assert outcome["rows"] == expected
            assert db._executor.engine.active_tasks == 0

    def test_double_close_is_idempotent(self):
        db = _scoring_db(4)
        db.execute("SELECT count(*) FROM x")
        db.close()
        db.close()

    def test_query_after_close_recreates_pool(self):
        db = _scoring_db(4)
        before = db.execute("SELECT sum(x1), count(*) FROM x").rows
        db.close()
        assert db.execute("SELECT sum(x1), count(*) FROM x").rows == before
        assert db._executor.engine.pools_created == 2
        db.close()

    def test_context_manager_closes_after_exception(self):
        with pytest.raises(RuntimeError, match="user code"):
            with _scoring_db(4) as db:
                db.execute("SELECT count(*) FROM x")
                raise RuntimeError("user code")
        assert db._executor.engine._pool is None
