"""PCA from the summary matrices."""

import numpy as np
import pytest

from repro.core.models.pca import PCAModel
from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@pytest.fixture
def anisotropic():
    """Data with one dominant direction so components are identifiable."""
    rng = np.random.default_rng(23)
    n = 500
    t = rng.normal(size=n)
    X = np.column_stack(
        [
            5.0 * t + rng.normal(scale=0.2, size=n),
            -3.0 * t + rng.normal(scale=0.2, size=n),
            rng.normal(scale=0.5, size=n),
        ]
    )
    return X, SummaryStatistics.from_matrix(X)


class TestBuild:
    def test_orthogonality(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        assert model.orthogonality_error() < 1e-10

    def test_eigenvalues_descending(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        assert list(model.eigenvalues) == sorted(model.eigenvalues, reverse=True)

    def test_matches_numpy_eigh_on_correlation(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        reference = np.linalg.eigvalsh(np.corrcoef(X.T))[::-1]
        assert np.allclose(model.eigenvalues, reference)

    def test_covariance_mode(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=2, use_correlation=False)
        assert model.scale is None
        reference = np.linalg.eigvalsh(np.cov(X.T, bias=True))[::-1][:2]
        assert np.allclose(model.eigenvalues, reference)

    def test_k_bounds(self, anisotropic):
        _X, stats = anisotropic
        with pytest.raises(ModelError):
            PCAModel.from_summary(stats, k=0)
        with pytest.raises(ModelError):
            PCAModel.from_summary(stats, k=4)

    def test_deterministic_signs(self, anisotropic):
        _X, stats = anisotropic
        a = PCAModel.from_summary(stats, k=2)
        b = PCAModel.from_summary(stats, k=2)
        assert np.array_equal(a.components, b.components)

    def test_zero_variance_rejected(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        stats = SummaryStatistics.from_matrix(X)
        with pytest.raises(ModelError):
            PCAModel.from_summary(stats, k=1)


class TestTransform:
    def test_shape(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=2)
        assert model.transform(X).shape == (X.shape[0], 2)
        assert model.transform(X[0]).shape == (1, 2)

    def test_scores_are_decorrelated(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        scores = model.transform(X)
        score_corr = np.corrcoef(scores.T)
        off_diagonal = score_corr - np.diag(np.diag(score_corr))
        assert np.max(np.abs(off_diagonal)) < 1e-8

    def test_score_variances_equal_eigenvalues(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        scores = model.transform(X)
        assert np.allclose(scores.var(axis=0), model.eigenvalues, rtol=1e-6)

    def test_inverse_transform_round_trip(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)  # full rank: lossless
        restored = model.inverse_transform(model.transform(X))
        assert np.allclose(restored, X, atol=1e-8)

    def test_reduction_preserves_dominant_structure(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=1)
        restored = model.inverse_transform(model.transform(X))
        # One component carries most of the (standardized) variance.
        relative_error = np.linalg.norm(X - restored) / np.linalg.norm(
            X - X.mean(axis=0)
        )
        assert relative_error < 0.35

    def test_dimension_checks(self, anisotropic):
        X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=2)
        with pytest.raises(ModelError):
            model.transform(np.zeros((5, 7)))
        with pytest.raises(ModelError):
            model.inverse_transform(np.zeros((5, 3)))


class TestVarianceAccounting:
    def test_explained_ratio_sums_to_one_full_rank(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        assert model.explained_variance_ratio().sum() == pytest.approx(1.0)

    def test_dominant_component_share(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=3)
        assert model.explained_variance_ratio()[0] > 0.6

    def test_correlation_mode_partial_spectrum(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=2)
        ratios = model.explained_variance_ratio()
        assert ratios.shape == (2,)
        assert ratios.sum() < 1.0

    def test_covariance_mode_partial_spectrum_rejected(self, anisotropic):
        _X, stats = anisotropic
        model = PCAModel.from_summary(stats, k=2, use_correlation=False)
        with pytest.raises(ModelError):
            model.explained_variance_ratio()
