"""Scoring round trips: model tables, UDF vs SQL queries, scored tables."""

import numpy as np
import pytest

from repro.core.models.base import load_matrix, load_vector
from repro.core.models.kmeans import KMeansModel
from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.scoring.scorer import ModelScorer, scores_as_matrix
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.summary import AugmentedSummary, SummaryStatistics
from repro.dbms.schema import dimension_names
from repro.errors import ModelError


@pytest.fixture
def fitted(loaded_db):
    db, X, y = loaded_db
    scorer = ModelScorer(db, "x", dimension_names(4))
    regression = LinearRegressionModel.from_summary(AugmentedSummary.from_xy(X, y))
    pca = PCAModel.from_summary(SummaryStatistics.from_matrix(X), k=2)
    kmeans = KMeansModel.fit_matrix(X, k=3, seed=0)
    scorer.store_regression(regression)
    scorer.store_pca(pca)
    scorer.store_clustering(kmeans)
    return db, X, y, scorer, regression, pca, kmeans


class TestModelTables:
    def test_beta_layout(self, fitted):
        db, _X, _y, _scorer, regression, _pca, _kmeans = fitted
        beta = load_vector(db, "beta")
        assert np.allclose(beta, regression.beta)
        assert db.table("beta").schema.column_names == ("b0", "b1", "b2", "b3", "b4")

    def test_lambda_and_mu_layout(self, fitted):
        db, _X, _y, _scorer, _regression, pca, _kmeans = fitted
        lam = load_matrix(db, "lambda_")
        assert lam.shape == (2, 4)  # k rows, d columns
        effective = (pca.components / pca.scale[:, None]).T
        assert np.allclose(lam, effective)
        assert np.allclose(load_vector(db, "mu"), pca.mean)

    def test_clustering_layout(self, fitted):
        db, _X, _y, _scorer, _regression, _pca, kmeans = fitted
        assert np.allclose(load_matrix(db, "c"), kmeans.centroids)
        assert np.allclose(load_matrix(db, "r"), kmeans.radii)
        assert np.allclose(load_vector(db, "w"), kmeans.weights)

    def test_store_replaces(self, fitted):
        db, X, y, scorer, regression, _pca, _kmeans = fitted
        scorer.store_regression(regression)  # second store: no duplicate error
        assert load_vector(db, "beta").shape == (5,)

    def test_dimension_mismatch_rejected(self, fitted):
        db, X, y, scorer, _regression, _pca, _kmeans = fitted
        wrong = LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(X[:, :2], y)
        )
        with pytest.raises(ModelError, match="d="):
            scorer.store_regression(wrong)


class TestRegressionScoring:
    def test_udf_matches_model_predict(self, fitted):
        _db, X, _y, scorer, regression, _pca, _kmeans = fitted
        scores = scores_as_matrix(scorer.score_regression("udf"), 1).ravel()
        assert np.allclose(scores, regression.predict(X))

    def test_sql_matches_udf(self, fitted):
        _db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        udf = scores_as_matrix(scorer.score_regression("udf"), 1)
        sql = scores_as_matrix(scorer.score_regression("sql"), 1)
        assert np.allclose(udf, sql)

    def test_scores_into_table(self, fitted):
        db, X, _y, scorer, regression, _pca, _kmeans = fitted
        scorer.score_regression("udf", into="scored")
        stored = sorted(db.table("scored").rows(), key=lambda r: r[0])
        assert len(stored) == len(X)
        assert stored[0][1] == pytest.approx(regression.predict(X[0])[0])

    def test_into_replaces_existing(self, fitted):
        _db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        scorer.score_regression("udf", into="scored")
        scorer.score_regression("udf", into="scored")  # no duplicate error


class TestPcaScoring:
    def test_udf_matches_model_transform(self, fitted):
        _db, X, _y, scorer, _regression, pca, _kmeans = fitted
        scores = scores_as_matrix(scorer.score_pca(2, "udf"), 2)
        assert np.allclose(scores, pca.transform(X))

    def test_sql_matches_udf(self, fitted):
        _db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        udf = scores_as_matrix(scorer.score_pca(2, "udf"), 2)
        sql = scores_as_matrix(scorer.score_pca(2, "sql"), 2)
        assert np.allclose(udf, sql)

    def test_k_columns_produced(self, fitted):
        _db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        result = scorer.score_pca(2, "udf")
        assert result.columns == ["i", "f1", "f2"]


class TestClusteringScoring:
    def test_udf_matches_model_assign(self, fitted):
        _db, X, _y, scorer, _regression, _pca, kmeans = fitted
        scores = scores_as_matrix(scorer.score_clustering(3, "udf"), 1).ravel()
        assert np.array_equal(scores.astype(int), kmeans.assign(X))

    def test_sql_matches_udf(self, fitted):
        _db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        udf = scores_as_matrix(scorer.score_clustering(3, "udf"), 1)
        sql = scores_as_matrix(scorer.score_clustering(3, "sql"), 1)
        assert np.array_equal(udf, sql)

    def test_into_table_typed_integer(self, fitted):
        db, _X, _y, scorer, _regression, _pca, _kmeans = fitted
        scorer.score_clustering(3, "udf", into="assignments")
        values = db.table("assignments").column_values("j")
        assert all(isinstance(v, int) for v in values)


class TestGeneratedSqlText:
    def test_regression_udf_text(self):
        generator = ScoringSqlGenerator("x", ["x1", "x2"])
        sql = generator.regression_udf_sql()
        assert "linearregscore(t.x1, t.x2, b.b0, b.b1, b.b2)" in sql
        assert "CROSS JOIN beta b" in sql

    def test_pca_udf_calls_k_times(self):
        generator = ScoringSqlGenerator("x", ["x1"])
        sql = generator.pca_udf_sql(k=3)
        assert sql.count("fascore(") == 3
        assert sql.count("JOIN lambda_ l") == 3

    def test_clustering_expression_has_derived_table(self):
        generator = ScoringSqlGenerator("x", ["x1"])
        sql = generator.clustering_expression_sql(k=2)
        assert "FROM (SELECT" in sql  # the pivoted pass
        assert "CASE" in sql

    def test_clustering_udf_single_statement(self):
        generator = ScoringSqlGenerator("x", ["x1"])
        sql = generator.clustering_udf_sql(k=2)
        assert sql.count("SELECT") == 1
        assert sql.count("kmeansdistance(") == 2
