"""Builtin scalar and aggregate SQL functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.functions import (
    AGGREGATE_BUILTINS,
    SCALAR_BUILTINS,
    AggregateFunction,
)
from repro.errors import ExecutionError

finite_floats = st.floats(-1e6, 1e6, allow_nan=False)


class TestScalarBuiltins:
    def test_math(self):
        assert SCALAR_BUILTINS["sqrt"](16.0) == 4.0
        assert SCALAR_BUILTINS["abs"](-3) == 3
        assert SCALAR_BUILTINS["power"](2, 10) == 1024.0
        assert SCALAR_BUILTINS["floor"](2.7) == 2.0
        assert SCALAR_BUILTINS["ceil"](2.1) == 3.0
        assert SCALAR_BUILTINS["round"](2.456, 1) == 2.5
        assert SCALAR_BUILTINS["sign"](-5) == -1.0
        assert SCALAR_BUILTINS["exp"](0.0) == 1.0
        assert SCALAR_BUILTINS["ln"](math.e) == pytest.approx(1.0)

    def test_sqrt_negative(self):
        with pytest.raises(ExecutionError):
            SCALAR_BUILTINS["sqrt"](-1.0)

    def test_ln_nonpositive(self):
        with pytest.raises(ExecutionError):
            SCALAR_BUILTINS["ln"](0.0)

    def test_least_greatest(self):
        assert SCALAR_BUILTINS["least"](3, 1, 2) == 1
        assert SCALAR_BUILTINS["greatest"](3, 1, 2) == 3

    def test_coalesce(self):
        assert SCALAR_BUILTINS["coalesce"](None, None, 7) == 7
        assert SCALAR_BUILTINS["coalesce"](None, None) is None

    def test_nullif(self):
        assert SCALAR_BUILTINS["nullif"](1, 1) is None
        assert SCALAR_BUILTINS["nullif"](1, 2) == 1
        assert SCALAR_BUILTINS["nullif"](None, 2) is None

    def test_like(self):
        like = SCALAR_BUILTINS["like"]
        assert like("hello", "he%")
        assert like("hello", "h_llo")
        assert not like("hello", "H%")
        assert like("50%", "50%")  # literal text matches its own prefix

    def test_strings(self):
        assert SCALAR_BUILTINS["upper"]("ab") == "AB"
        assert SCALAR_BUILTINS["lower"]("AB") == "ab"
        assert SCALAR_BUILTINS["length"]("abc") == 3
        assert SCALAR_BUILTINS["substr"]("hello", 2, 3) == "ell"
        assert SCALAR_BUILTINS["substr"]("hello", 2) == "ello"
        assert SCALAR_BUILTINS["concat"]("a", "b") == "ab"

    def test_null_propagation(self):
        for name in ("sqrt", "abs", "upper", "length", "like"):
            args = (None,) if name != "like" else (None, "%")
            assert SCALAR_BUILTINS[name](*args) is None


def run_aggregate(name, values, merge_split=None):
    """Drive the four-phase protocol, optionally splitting accumulation
    into two partial states merged at the end (the AMP simulation)."""
    factory = AGGREGATE_BUILTINS[name]
    aggregate = factory()
    if merge_split is None:
        state = aggregate.initialize()
        for value in values:
            args = value if isinstance(value, tuple) else (value,)
            if aggregate.skips_nulls and any(a is None for a in args):
                continue
            state = aggregate.accumulate(state, args)
        return aggregate.finalize(state)
    first, second = values[:merge_split], values[merge_split:]
    state_a = aggregate.initialize()
    for value in first:
        state_a = aggregate.accumulate(
            state_a, value if isinstance(value, tuple) else (value,)
        )
    state_b = aggregate.initialize()
    for value in second:
        state_b = aggregate.accumulate(
            state_b, value if isinstance(value, tuple) else (value,)
        )
    return aggregate.finalize(aggregate.merge(state_a, state_b))


class TestAggregates:
    def test_sum(self):
        assert run_aggregate("sum", [1.0, 2.0, 3.0]) == 6.0

    def test_sum_empty_is_null(self):
        assert run_aggregate("sum", []) is None

    def test_count_skips_nulls(self):
        assert run_aggregate("count", [1, None, 3]) == 2

    def test_avg(self):
        assert run_aggregate("avg", [2.0, 4.0]) == 3.0
        assert run_aggregate("avg", []) is None

    def test_min_max(self):
        assert run_aggregate("min", [3.0, 1.0, 2.0]) == 1.0
        assert run_aggregate("max", [3.0, 1.0, 2.0]) == 3.0
        assert run_aggregate("min", []) is None

    def test_variance_matches_numpy(self):
        values = [1.0, 4.0, 2.0, 8.0, 5.0]
        assert run_aggregate("var_pop", values) == pytest.approx(
            np.var(values)
        )
        assert run_aggregate("var_samp", values) == pytest.approx(
            np.var(values, ddof=1)
        )
        assert run_aggregate("stddev_pop", values) == pytest.approx(
            np.std(values)
        )

    def test_variance_single_sample(self):
        assert run_aggregate("var_samp", [1.0]) is None
        assert run_aggregate("var_pop", [1.0]) == 0.0

    def test_corr_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 2 * x + rng.normal(size=50)
        pairs = list(zip(x.tolist(), y.tolist()))
        assert run_aggregate("corr", pairs) == pytest.approx(
            np.corrcoef(x, y)[0, 1]
        )

    def test_corr_degenerate(self):
        assert run_aggregate("corr", [(1.0, 1.0), (1.0, 2.0)]) is None

    def test_regr_slope_intercept_match_lstsq(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=40)
        y = 3.0 * x + 1.5 + rng.normal(scale=0.1, size=40)
        pairs = list(zip(y.tolist(), x.tolist()))  # (dependent, independent)
        slope, intercept = np.polyfit(x, y, 1)
        assert run_aggregate("regr_slope", pairs) == pytest.approx(slope)
        assert run_aggregate("regr_intercept", pairs) == pytest.approx(intercept)

    @pytest.mark.parametrize("name", ["sum", "avg", "min", "max", "var_pop"])
    def test_merge_equals_sequential(self, name):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        whole = run_aggregate(name, values)
        split = run_aggregate(name, values, merge_split=3)
        assert whole == pytest.approx(split)

    def test_merge_with_empty_partial(self):
        assert run_aggregate("sum", [1.0, 2.0], merge_split=0) == 3.0
        assert run_aggregate("min", [5.0], merge_split=1) == 5.0


class TestAggregateVectorPaths:
    @pytest.mark.parametrize(
        "name", ["sum", "avg", "min", "max", "var_pop", "var_samp"]
    )
    def test_vector_equals_row(self, name):
        values = [1.0, float("nan"), 2.5, -4.0, 0.0]
        clean = [None if np.isnan(v) else v for v in values]
        aggregate = AGGREGATE_BUILTINS[name]()
        vec_state = aggregate.accumulate_vector(
            aggregate.initialize(), [np.asarray(values)], len(values)
        )
        assert vec_state is not NotImplemented
        row_result = run_aggregate(name, clean)
        assert aggregate.finalize(vec_state) == pytest.approx(row_result)

    def test_count_star_vector(self):
        aggregate = AGGREGATE_BUILTINS["count"]()
        state = aggregate.accumulate_vector(aggregate.initialize(), [], 7)
        assert aggregate.finalize(state) == 7

    def test_corr_vector_equals_row(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=30), rng.normal(size=30)
        aggregate = AGGREGATE_BUILTINS["corr"]()
        state = aggregate.accumulate_vector(
            aggregate.initialize(), [x, y], 30
        )
        row = run_aggregate("corr", list(zip(x.tolist(), y.tolist())))
        assert aggregate.finalize(state) == pytest.approx(row)

    def test_base_class_vector_unsupported(self):
        class Dummy(AggregateFunction):
            def initialize(self):
                return 0

            def accumulate(self, state, args):
                return state

            def merge(self, state, other):
                return state

            def finalize(self, state):
                return state

        assert Dummy().accumulate_vector(0, [], 0) is NotImplemented

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_sum_vector_row_agree(self, values):
        aggregate = AGGREGATE_BUILTINS["sum"]()
        vec_state = aggregate.accumulate_vector(
            aggregate.initialize(), [np.asarray(values)], len(values)
        )
        assert aggregate.finalize(vec_state) == pytest.approx(
            run_aggregate("sum", values), rel=1e-9, abs=1e-6
        )

    @given(st.lists(finite_floats, min_size=2, max_size=60), st.integers(0, 60))
    @settings(max_examples=60, deadline=None)
    def test_property_merge_associative(self, values, split):
        split = min(split, len(values))
        assert run_aggregate("var_pop", values) == pytest.approx(
            run_aggregate("var_pop", values, merge_split=split),
            rel=1e-6, abs=1e-9,
        )
