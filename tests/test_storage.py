"""Partitioned storage: distribution, constraints, bulk loads, scans."""

import numpy as np
import pytest

from repro.dbms.schema import TableSchema, dataset_schema
from repro.dbms.storage import Partition, Table
from repro.dbms.types import SqlType
from repro.errors import ConstraintViolation, SchemaError


def make_table(partitions=4, with_y=False, row_scale=1.0, d=2):
    return Table(
        "x", dataset_schema(d, with_y=with_y), partitions=partitions,
        row_scale=row_scale,
    )


class TestBasics:
    def test_invalid_partitions(self):
        with pytest.raises(SchemaError):
            make_table(partitions=0)

    def test_invalid_row_scale(self):
        with pytest.raises(SchemaError):
            make_table(row_scale=0.5)

    def test_width_and_counts(self):
        table = make_table()
        assert table.width == 3
        assert table.row_count == 0
        table.insert((1, 1.0, 2.0))
        assert table.row_count == 1

    def test_nominal_rows_scaling(self):
        table = make_table(row_scale=100.0)
        table.insert_many([(i, 0.0, 0.0) for i in range(10)])
        assert table.row_count == 10
        assert table.nominal_rows == 1000.0


class TestInserts:
    def test_coercion_on_insert(self):
        table = make_table()
        table.insert(("1", "2.5", 3))
        assert table.rows() == [(1, 2.5, 3.0)]

    def test_arity_check(self):
        table = make_table()
        with pytest.raises(SchemaError, match="columns"):
            table.insert((1, 2.0))

    def test_duplicate_primary_key(self):
        table = make_table()
        table.insert((1, 0.0, 0.0))
        with pytest.raises(ConstraintViolation, match="duplicate primary key"):
            table.insert((1, 1.0, 1.0))

    def test_not_null_enforced(self):
        table = make_table()
        with pytest.raises(ConstraintViolation, match="NOT NULL"):
            table.insert((None, 0.0, 0.0))

    def test_null_allowed_in_nullable(self):
        table = make_table()
        table.insert((1, None, 2.0))
        assert table.rows() == [(1, None, 2.0)]

    def test_rows_spread_over_partitions(self):
        table = make_table(partitions=4)
        table.insert_many([(i, float(i), 0.0) for i in range(100)])
        occupied = [p.row_count for p in table.partitions if p.row_count]
        assert len(occupied) >= 3, "hash distribution should use most partitions"
        assert sum(occupied) == 100

    def test_round_robin_without_pk(self):
        schema = TableSchema.build([("v", SqlType.FLOAT)])
        table = Table("t", schema, partitions=3)
        table.insert_many([(float(i),) for i in range(9)])
        assert [p.row_count for p in table.partitions] == [3, 3, 3]


class TestBulkLoad:
    def test_bulk_load_and_scan(self):
        table = make_table()
        n = 50
        loaded = table.bulk_load_arrays(
            {
                "i": np.arange(1, n + 1),
                "x1": np.linspace(0, 1, n),
                "x2": np.zeros(n),
            }
        )
        assert loaded == n
        assert table.row_count == n
        assert sorted(r[0] for r in table.scan()) == list(range(1, n + 1))

    def test_missing_column(self):
        table = make_table()
        with pytest.raises(SchemaError, match="missing columns"):
            table.bulk_load_arrays({"i": np.arange(3), "x1": np.zeros(3)})

    def test_length_mismatch(self):
        table = make_table()
        with pytest.raises(SchemaError, match="differ in length"):
            table.bulk_load_arrays(
                {"i": np.arange(3), "x1": np.zeros(3), "x2": np.zeros(4)}
            )

    def test_duplicate_keys_in_bulk(self):
        table = make_table()
        with pytest.raises(ConstraintViolation):
            table.bulk_load_arrays(
                {"i": np.asarray([1, 1]), "x1": np.zeros(2), "x2": np.zeros(2)}
            )

    def test_bulk_then_insert_duplicate(self):
        table = make_table()
        table.bulk_load_arrays(
            {"i": np.asarray([1, 2]), "x1": np.zeros(2), "x2": np.zeros(2)}
        )
        with pytest.raises(ConstraintViolation):
            table.insert((2, 0.0, 0.0))

    def test_empty_bulk_load(self):
        table = make_table()
        assert table.bulk_load_arrays(
            {"i": np.asarray([]), "x1": np.asarray([]), "x2": np.asarray([])}
        ) == 0


class TestPartitionEdgeCases:
    """Zero-row / zero-column behaviour must not rely on caller pre-checks."""

    def test_extend_columns_empty_payload_is_noop(self):
        partition = Partition(2)
        partition.extend_columns([[], []])
        assert partition.row_count == 0

    def test_extend_columns_zero_width_partition(self):
        partition = Partition(0)
        partition.extend_columns([])
        assert partition.row_count == 0

    def test_extend_columns_wrong_column_count_rejected(self):
        partition = Partition(2)
        with pytest.raises(SchemaError, match="columns"):
            partition.extend_columns([[1.0]])
        assert partition.row_count == 0

    def test_extend_columns_ragged_lengths_rejected(self):
        partition = Partition(2)
        with pytest.raises(SchemaError, match="lengths differ"):
            partition.extend_columns([[1.0, 2.0], [3.0]])
        assert partition.row_count == 0

    def test_numeric_matrix_zero_column_projection(self):
        partition = Partition(2)
        partition.append((1.0, 2.0))
        assert partition.numeric_matrix([]).shape == (1, 0)

    def test_numeric_matrix_empty_partition_and_projection(self):
        assert Partition(2).numeric_matrix([]).shape == (0, 0)

    def test_table_numeric_matrix_zero_columns(self):
        table = make_table()
        table.insert_many([(i, float(i), 0.0) for i in range(5)])
        assert table.numeric_matrix([]).shape == (5, 0)

    def test_bulk_load_zero_rows_with_pk_is_clean(self):
        table = make_table()
        assert table.bulk_load_arrays(
            {"i": np.asarray([]), "x1": np.asarray([]), "x2": np.asarray([])}
        ) == 0
        assert table.row_count == 0
        # The PK set must be untouched so later loads still work.
        table.insert((1, 0.0, 0.0))
        assert table.row_count == 1


class TestBlockCache:
    """numeric_matrix caches per column selection, invalidated on mutation."""

    def test_cached_block_is_reused(self):
        partition = Partition(2)
        partition.extend_columns([[1.0, 2.0], [3.0, 4.0]])
        first = partition.numeric_matrix([0, 1])
        second = partition.numeric_matrix([0, 1])
        assert first is second

    def test_distinct_selections_cached_separately(self):
        partition = Partition(2)
        partition.extend_columns([[1.0], [2.0]])
        assert np.array_equal(partition.numeric_matrix([0]), [[1.0]])
        assert np.array_equal(partition.numeric_matrix([1]), [[2.0]])
        assert np.array_equal(partition.numeric_matrix([1, 0]), [[2.0, 1.0]])

    def test_append_invalidates_cache(self):
        partition = Partition(1)
        partition.append((1.0,))
        stale = partition.numeric_matrix([0])
        partition.append((2.0,))
        fresh = partition.numeric_matrix([0])
        assert stale.shape == (1, 1) and fresh.shape == (2, 1)

    def test_extend_invalidates_cache(self):
        partition = Partition(1)
        partition.append((1.0,))
        partition.numeric_matrix([0])
        partition.extend_columns([[2.0, 3.0]])
        assert partition.numeric_matrix([0]).shape == (3, 1)

    def test_null_handling_matches_reference(self):
        partition = Partition(2)
        partition.extend_columns([[1.0, None, 3.0], [None, None, 6.0]])
        block = partition.numeric_matrix([0, 1])
        assert np.isnan(block[1, 0]) and np.isnan(block[0, 1])
        assert block[2, 1] == 6.0


class TestAccessors:
    def test_column_values(self):
        table = make_table()
        table.insert_many([(i, float(i) * 2, 0.0) for i in range(1, 6)])
        assert sorted(table.column_values("x1")) == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_numeric_matrix_matches_rows(self):
        table = make_table()
        rng = np.random.default_rng(0)
        n = 40
        data = rng.normal(size=(n, 2))
        table.bulk_load_arrays(
            {"i": np.arange(n), "x1": data[:, 0], "x2": data[:, 1]}
        )
        matrix = table.numeric_matrix(["x1", "x2"])
        assert matrix.shape == (n, 2)
        # Partition striping reorders rows; compare as multisets via sums.
        assert np.allclose(np.sort(matrix[:, 0]), np.sort(data[:, 0]))

    def test_numeric_matrix_null_becomes_nan(self):
        table = make_table()
        table.insert((1, None, 2.0))
        matrix = table.numeric_matrix(["x1", "x2"])
        assert np.isnan(matrix[0, 0]) and matrix[0, 1] == 2.0

    def test_numeric_matrix_empty(self):
        assert make_table().numeric_matrix(["x1"]).shape == (0, 1)

    def test_truncate(self):
        table = make_table()
        table.insert((1, 0.0, 0.0))
        table.truncate()
        assert table.row_count == 0
        table.insert((1, 0.0, 0.0))  # PK set must be cleared too
        assert table.row_count == 1
