"""The system catalog: direct API coverage."""

import pytest

from repro.dbms.catalog import Catalog
from repro.dbms.schema import dataset_schema
from repro.dbms.sql.parser import parse_statement
from repro.dbms.udf import AggregateUdf, scalar_udf
from repro.errors import CatalogError, UdfRegistrationError


@pytest.fixture
def catalog() -> Catalog:
    return Catalog(default_partitions=4)


class _DummyAggregate(AggregateUdf):
    def initialize(self):
        return 0

    def accumulate(self, state, args):
        return state

    def merge(self, state, other):
        return state

    def finalize(self, state):
        return state


class TestTables:
    def test_create_and_lookup_case_insensitive(self, catalog):
        catalog.create_table("Customers", dataset_schema(2))
        assert catalog.has_table("CUSTOMERS")
        assert catalog.table("customers").name == "Customers"

    def test_default_partitions(self, catalog):
        table = catalog.create_table("t", dataset_schema(1))
        assert table.partition_count == 4

    def test_partition_override(self, catalog):
        table = catalog.create_table("t", dataset_schema(1), partitions=7)
        assert table.partition_count == 7

    def test_duplicate_rejected(self, catalog):
        catalog.create_table("t", dataset_schema(1))
        with pytest.raises(CatalogError):
            catalog.create_table("T", dataset_schema(1))

    def test_if_not_exists_returns_existing(self, catalog):
        first = catalog.create_table("t", dataset_schema(1))
        second = catalog.create_table(
            "t", dataset_schema(1), if_not_exists=True
        )
        assert first is second

    def test_drop(self, catalog):
        catalog.create_table("t", dataset_schema(1))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        catalog.drop_table("t", if_exists=True)

    def test_table_names_sorted(self, catalog):
        catalog.create_table("zeta", dataset_schema(1))
        catalog.create_table("alpha", dataset_schema(1))
        assert catalog.table_names() == ["alpha", "zeta"]

    def test_unknown_table(self, catalog):
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.table("ghost")


class TestViews:
    def _select(self):
        return parse_statement("SELECT 1")

    def test_create_and_read(self, catalog):
        catalog.create_view("v", self._select())
        assert catalog.has_view("v")
        assert catalog.view("V") is not None

    def test_view_cannot_shadow_table(self, catalog):
        catalog.create_table("t", dataset_schema(1))
        with pytest.raises(CatalogError):
            catalog.create_view("t", self._select())

    def test_replace_requires_flag(self, catalog):
        catalog.create_view("v", self._select())
        with pytest.raises(CatalogError):
            catalog.create_view("v", self._select())
        catalog.create_view("v", self._select(), or_replace=True)

    def test_drop_view(self, catalog):
        catalog.create_view("v", self._select())
        catalog.drop_view("v")
        assert not catalog.has_view("v")
        with pytest.raises(CatalogError):
            catalog.drop_view("v")
        catalog.drop_view("v", if_exists=True)

    def test_table_cannot_shadow_view(self, catalog):
        catalog.create_view("v", self._select())
        with pytest.raises(CatalogError):
            catalog.create_table("v", dataset_schema(1))


class TestUdfRegistry:
    def test_scalar_and_aggregate_lookup(self, catalog):
        catalog.register_scalar_udf(scalar_udf("f", lambda v: v))
        catalog.register_aggregate_udf(_DummyAggregate("g"))
        assert catalog.scalar_udf("F") is not None
        assert catalog.aggregate_udf("G") is not None
        assert catalog.is_scalar_function("f")
        assert catalog.is_aggregate("g")
        assert not catalog.is_aggregate("f")

    def test_builtins_recognized(self, catalog):
        assert catalog.is_aggregate("SUM")
        assert catalog.is_scalar_function("sqrt")

    def test_cross_kind_collision(self, catalog):
        catalog.register_scalar_udf(scalar_udf("mine", lambda v: v))
        with pytest.raises(UdfRegistrationError):
            catalog.register_aggregate_udf(_DummyAggregate("mine"))

    def test_missing_lookup_returns_none(self, catalog):
        assert catalog.scalar_udf("nope") is None
        assert catalog.aggregate_udf("nope") is None
