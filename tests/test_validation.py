"""In-DBMS train/test splitting and metric computation."""

import numpy as np
import pytest

from repro.core.models.regression import LinearRegressionModel
from repro.core.scoring.scorer import ModelScorer
from repro.core.summary import AugmentedSummary
from repro.core.validation import (
    classification_accuracy,
    confusion_matrix,
    regression_metrics,
    train_test_split,
)
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import ModelError


@pytest.fixture
def regression_db():
    rng = np.random.default_rng(91)
    n, d = 500, 3
    X = rng.normal(0, 2, size=(n, d))
    y = 1.0 + X @ np.asarray([2.0, -1.0, 0.5]) + rng.normal(0, 0.3, n)
    db = Database(amps=3)
    db.create_table("data", dataset_schema(d, with_y=True))
    columns = {"i": np.arange(1, n + 1), "y": y}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("data", columns)
    from repro.core.scoring.udfs import register_scoring_udfs

    register_scoring_udfs(db)
    return db, X, y


class TestSplit:
    def test_sizes_and_disjointness(self, regression_db):
        db, _X, _y = regression_db
        train_rows, test_rows = train_test_split(db, "data", "tr", "te")
        assert train_rows + test_rows == 500
        assert test_rows == 100  # every 5th id
        train_ids = set(db.table("tr").column_values("i"))
        test_ids = set(db.table("te").column_values("i"))
        assert not train_ids & test_ids

    def test_deterministic(self, regression_db):
        db, _X, _y = regression_db
        train_test_split(db, "data", "tr", "te")
        first = sorted(db.table("te").column_values("i"))
        train_test_split(db, "data", "tr", "te")  # re-split replaces
        assert sorted(db.table("te").column_values("i")) == first

    def test_modulus_controls_fraction(self, regression_db):
        db, _X, _y = regression_db
        _, test_rows = train_test_split(db, "data", "tr", "te", test_modulus=10)
        assert test_rows == 50

    def test_invalid_modulus(self, regression_db):
        db, _X, _y = regression_db
        with pytest.raises(ModelError):
            train_test_split(db, "data", "tr", "te", test_modulus=1)

    def test_schema_carried_over(self, regression_db):
        db, _X, _y = regression_db
        train_test_split(db, "data", "tr", "te")
        assert db.table("tr").schema.column_names == \
            db.table("data").schema.column_names
        assert db.table("tr").schema.primary_key == "i"


class TestRegressionMetrics:
    def test_full_loop(self, regression_db):
        db, _X, _y = regression_db
        train_test_split(db, "data", "tr", "te")
        X_tr = db.table("tr").numeric_matrix(dimension_names(3))
        y_tr = np.asarray(db.table("tr").column_values("y"), dtype=float)
        model = LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(X_tr, y_tr)
        )
        scorer = ModelScorer(db, "te", dimension_names(3))
        scorer.store_regression(model)
        scorer.score_regression("udf", into="te_scored")
        metrics = regression_metrics(db, "te_scored", "te")
        assert metrics.n == db.table("te").row_count
        assert metrics.rmse == pytest.approx(0.3, abs=0.12)
        assert metrics.r_squared > 0.98
        assert abs(metrics.mean_error) < 0.1

    def test_matches_numpy(self, regression_db):
        db, _X, _y = regression_db
        train_test_split(db, "data", "tr", "te")
        X_te = db.table("te").numeric_matrix(dimension_names(3))
        y_te = np.asarray(db.table("te").column_values("y"), dtype=float)
        model = LinearRegressionModel.from_summary(
            AugmentedSummary.from_xy(X_te, y_te)
        )
        scorer = ModelScorer(db, "te", dimension_names(3))
        scorer.store_regression(model)
        scorer.score_regression("udf", into="te_scored")
        metrics = regression_metrics(db, "te_scored", "te")
        predictions = model.predict(X_te)
        errors = predictions - y_te
        assert metrics.rmse == pytest.approx(np.sqrt(np.mean(errors**2)))
        assert metrics.mae == pytest.approx(np.mean(np.abs(errors)))

    def test_empty_join_rejected(self, regression_db):
        db, _X, _y = regression_db
        db.execute("CREATE TABLE s (i INTEGER PRIMARY KEY, yhat FLOAT)")
        with pytest.raises(ModelError):
            regression_metrics(db, "s", "data")


class TestConfusionMatrix:
    @pytest.fixture
    def classified(self, regression_db):
        db, _X, _y = regression_db
        db.execute("CREATE TABLE truth (i INTEGER PRIMARY KEY, label INTEGER)")
        db.execute("CREATE TABLE pred (i INTEGER PRIMARY KEY, j INTEGER)")
        rows = [(1, 1), (2, 1), (3, 2), (4, 2), (5, 2)]
        db.insert_rows("truth", rows)
        db.insert_rows("pred", [(1, 1), (2, 2), (3, 2), (4, 2), (5, 1)])
        return db

    def test_counts(self, classified):
        matrix = confusion_matrix(classified, "pred", "truth")
        assert matrix == {(1, 1): 1, (1, 2): 1, (2, 2): 2, (2, 1): 1}

    def test_accuracy(self, classified):
        matrix = confusion_matrix(classified, "pred", "truth")
        assert classification_accuracy(matrix) == pytest.approx(3 / 5)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ModelError):
            classification_accuracy({})
