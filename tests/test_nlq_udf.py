"""The aggregate nLQ UDF: variants, correctness, constraints."""

import numpy as np
import pytest

from repro.core.nlq_udf import (
    DEFAULT_MAX_D,
    NLQ_UDF_NAMES,
    NlqListUdf,
    NlqStringUdf,
    compute_nlq_udf,
    compute_nlq_udf_groups,
    nlq_call_sql,
    register_nlq_udfs,
)
from repro.core.packing import unpack_summary
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import UdfArgumentError, UdfMemoryError


@pytest.fixture
def nlq_db():
    rng = np.random.default_rng(11)
    n, d = 150, 5
    X = rng.normal(20.0, 5.0, size=(n, d))
    db = Database(amps=3)
    db.create_table("x", dataset_schema(d))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    register_nlq_udfs(db)
    return db, X


class TestCorrectness:
    @pytest.mark.parametrize("matrix_type", list(MatrixType))
    @pytest.mark.parametrize("passing", ["list", "string"])
    def test_matches_reference(self, nlq_db, matrix_type, passing):
        db, X = nlq_db
        stats = compute_nlq_udf(db, "x", dimension_names(5), matrix_type, passing)
        reference = SummaryStatistics.from_matrix(X, matrix_type)
        assert stats.allclose(reference)
        assert np.allclose(stats.mins, X.min(axis=0))
        assert np.allclose(stats.maxs, X.max(axis=0))

    def test_string_equals_list_exactly(self, nlq_db):
        db, _X = nlq_db
        via_list = compute_nlq_udf(db, "x", dimension_names(5), passing="list")
        via_string = compute_nlq_udf(db, "x", dimension_names(5), passing="string")
        assert via_list.allclose(via_string, rtol=1e-12)

    def test_empty_table(self):
        db = Database(amps=2)
        db.create_table("x", dataset_schema(3))
        register_nlq_udfs(db)
        stats = compute_nlq_udf(db, "x", dimension_names(3))
        assert stats.n == 0

    def test_null_rows_skipped(self):
        db = Database(amps=2)
        db.create_table("x", dataset_schema(2))
        db.insert_rows("x", [(1, 1.0, 2.0), (2, None, 5.0), (3, 3.0, 4.0)])
        register_nlq_udfs(db)
        stats = compute_nlq_udf(db, "x", dimension_names(2))
        reference = SummaryStatistics.from_matrix(
            np.asarray([[1.0, 2.0], [3.0, 4.0]])
        )
        assert stats.allclose(reference)

    def test_expressions_as_dimensions(self, nlq_db):
        """The augmented-regression trick: pass 1.0 and x1+x2 as dims."""
        db, X = nlq_db
        stats = compute_nlq_udf(db, "x", ["1.0", "x1 + x2"])
        Z = np.column_stack([np.ones(X.shape[0]), X[:, 0] + X[:, 1]])
        assert stats.allclose(SummaryStatistics.from_matrix(Z))


class TestGroupBy:
    def test_groups_match_per_group_reference(self, nlq_db):
        db, X = nlq_db
        groups = compute_nlq_udf_groups(
            db, "x", dimension_names(5), "(i MOD 3) + 1"
        )
        ids = np.arange(1, X.shape[0] + 1)
        for key in (1, 2, 3):
            members = X[(ids % 3) + 1 == key]
            reference = SummaryStatistics.from_matrix(
                members, MatrixType.DIAGONAL
            )
            assert groups[key].allclose(reference), key

    def test_group_by_string_variant(self, nlq_db):
        db, _X = nlq_db
        via_list = compute_nlq_udf_groups(db, "x", dimension_names(5), "i MOD 2")
        via_string = compute_nlq_udf_groups(
            db, "x", dimension_names(5), "i MOD 2", passing="string"
        )
        for key, stats in via_list.items():
            assert stats.allclose(via_string[key], rtol=1e-12)

    def test_group_totals_merge_to_grand_total(self, nlq_db):
        db, X = nlq_db
        groups = compute_nlq_udf_groups(db, "x", dimension_names(5), "i MOD 4")
        merged = None
        for stats in groups.values():
            merged = stats if merged is None else merged.merge(stats)
        assert merged.allclose(
            SummaryStatistics.from_matrix(X, MatrixType.DIAGONAL)
        )


class TestConstraints:
    def test_max_d_enforced(self):
        udf = NlqListUdf("small_nlq", max_d=4)
        state = udf.initialize()
        with pytest.raises(UdfArgumentError, match="MAX_d"):
            udf.accumulate(state, (5, 1.0, 2.0, 3.0, 4.0, 5.0))

    def test_declared_d_mismatch(self):
        udf = NlqListUdf("nlq")
        with pytest.raises(UdfArgumentError, match="declared d=3"):
            udf.accumulate(udf.initialize(), (3, 1.0, 2.0))

    def test_dimensionality_change_mid_scan(self):
        udf = NlqListUdf("nlq")
        state = udf.initialize()
        state = udf.accumulate(state, (2, 1.0, 2.0))
        with pytest.raises(UdfArgumentError, match="changed mid-scan"):
            udf.accumulate(state, (3, 1.0, 2.0, 3.0))

    def test_string_variant_rejects_numbers(self):
        udf = NlqStringUdf("nlq_s")
        with pytest.raises(UdfArgumentError, match="packed string"):
            udf.accumulate(udf.initialize(), (1.5,))

    def test_full_struct_over_max_d_blows_heap(self):
        # A full-matrix struct for MAX_d=96 exceeds one 64 KB segment.
        udf = NlqListUdf("big_nlq", MatrixType.FULL, max_d=96)
        with pytest.raises(UdfMemoryError):
            udf.initialize()

    def test_state_size_depends_on_matrix_type(self):
        diag = NlqListUdf("a_diag", MatrixType.DIAGONAL)
        tri = NlqListUdf("a_tri", MatrixType.TRIANGULAR)
        assert diag.state_value_count() < tri.state_value_count()

    def test_merge_dimension_mismatch(self):
        udf = NlqListUdf("nlq")
        state_a = udf.accumulate(udf.initialize(), (2, 1.0, 2.0))
        state_b = udf.accumulate(udf.initialize(), (3, 1.0, 2.0, 3.0))
        with pytest.raises(UdfArgumentError, match="merge"):
            udf.merge(state_a, state_b)

    def test_empty_state_finalizes_to_null(self):
        udf = NlqListUdf("nlq")
        assert udf.finalize(udf.initialize()) is None


class TestBlockPath:
    def test_block_equals_rows(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 3))
        udf = NlqListUdf("nlq")
        row_state = udf.initialize()
        for row in X:
            row_state = udf.accumulate(row_state, (3, *row.tolist()))
        block = np.column_stack([np.full(40, 3.0), X])
        block_state = udf.accumulate_block(udf.initialize(), block)
        assert unpack_summary(udf.finalize(row_state)).allclose(
            unpack_summary(udf.finalize(block_state)), rtol=1e-12
        )

    def test_block_shape_mismatch(self):
        udf = NlqListUdf("nlq")
        bad = np.column_stack([np.full(5, 4.0), np.zeros((5, 2))])
        with pytest.raises(UdfArgumentError):
            udf.accumulate_block(udf.initialize(), bad)


class TestSqlGeneration:
    def test_list_call_text(self):
        sql = nlq_call_sql("x", ["x1", "x2"], MatrixType.TRIANGULAR, "list")
        assert sql == "SELECT nlq_tri(2, x1, x2) FROM x"

    def test_string_call_text(self):
        sql = nlq_call_sql("x", ["x1", "x2"], MatrixType.FULL, "string")
        assert sql == "SELECT nlq_str_full(x1 || ',' || x2) FROM x"

    def test_group_by_text(self):
        sql = nlq_call_sql(
            "x", ["x1"], MatrixType.DIAGONAL, "list", group_by="i MOD 2"
        )
        assert "GROUP BY i MOD 2" in sql and "ORDER BY grp" in sql

    def test_registration_names(self):
        db = Database(amps=2)
        registered = register_nlq_udfs(db)
        assert set(registered) == set(NLQ_UDF_NAMES.values())
        assert all(
            db.catalog.aggregate_udf(name) is not None for name in registered
        )

    def test_cost_profiles(self):
        list_udf = NlqListUdf("a1", MatrixType.TRIANGULAR)
        list_udf._observed_d = 8
        profile = list_udf.cost_per_row(9)
        assert profile.list_params == 9
        assert profile.arith_ops == 8 * 3 + 36
        string_udf = NlqStringUdf("a2", MatrixType.DIAGONAL)
        string_udf._observed_d = 8
        string_profile = string_udf.cost_per_row(1)
        assert string_profile.string_chars > 0
        assert string_profile.arith_ops == 8 * 4

    def test_default_max_d_is_64(self):
        assert DEFAULT_MAX_D == 64
