"""The Warehouse-Miner-style client: end-to-end build and score."""

import numpy as np
import pytest

from repro.core.summary import MatrixType, SummaryStatistics
from repro.twm.miner import WarehouseMiner


@pytest.fixture(scope="module")
def miner():
    miner = WarehouseMiner(amps=4)
    miner.load_synthetic("x", n=600, d=4, with_y=True, k=3, seed=13)
    return miner


def reference_matrix(miner, table="x"):
    return miner.db.table(table).numeric_matrix(miner.dimensions_of(table))


class TestSetup:
    def test_udfs_registered(self, miner):
        for name in ("nlq_tri", "nlq_str_diag", "nlq_block"):
            assert miner.db.catalog.aggregate_udf(name) is not None
        for name in ("linearregscore", "clusterscore"):
            assert miner.db.catalog.scalar_udf(name) is not None

    def test_dimensions_of_excludes_id_and_y(self, miner):
        assert miner.dimensions_of("x") == ["x1", "x2", "x3", "x4"]


class TestSummaries:
    def test_udf_and_sql_methods_agree(self, miner):
        via_udf = miner.summarize("x", method="udf")
        via_sql = miner.summarize("x", method="sql")
        assert via_udf.allclose(via_sql, rtol=1e-12)

    def test_matches_reference(self, miner):
        stats = miner.summarize("x")
        reference = SummaryStatistics.from_matrix(reference_matrix(miner))
        assert stats.allclose(reference)

    def test_string_passing(self, miner):
        stats = miner.summarize("x", passing="string")
        assert stats.allclose(miner.summarize("x"))

    def test_diagonal_type(self, miner):
        stats = miner.summarize("x", matrix_type=MatrixType.DIAGONAL)
        assert stats.Q[0, 1] == 0.0

    def test_unknown_method(self, miner):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            miner.summarize("x", method="carrier-pigeon")

    def test_high_d_switches_to_blockwise(self):
        wide = WarehouseMiner(amps=3)
        wide.load_synthetic("hd", n=120, d=70, k=2)
        stats = wide.summarize("hd")
        reference = SummaryStatistics.from_matrix(reference_matrix(wide, "hd"))
        assert stats.allclose(reference)


class TestSubModels:
    def test_summarize_groups_partition_the_data(self, miner):
        groups = miner.summarize_groups("x", "i MOD 3")
        assert set(groups) == {0, 1, 2}
        total = sum(stats.n for stats in groups.values())
        assert total == miner.db.table("x").row_count

    def test_group_summaries_merge_to_whole(self, miner):
        from repro.core.summary import MatrixType

        groups = miner.summarize_groups(
            "x", "i MOD 2", matrix_type=MatrixType.TRIANGULAR
        )
        merged = None
        for stats in groups.values():
            merged = stats if merged is None else merged.merge(stats)
        whole = miner.summarize("x")
        assert merged.allclose(whole)

    def test_sub_models_per_group(self, miner):
        models = miner.sub_models("x", "i MOD 2", technique="correlation")
        assert set(models) == {0, 1}
        X = reference_matrix(miner)
        ids = np.asarray(miner.db.table("x").column_values("i"))
        # Per-group model equals a model built on just that group's rows.
        # (Storage striping reorders rows, so select by id parity.)
        members = X[ids % 2 == 0]
        expected = np.corrcoef(members.T)
        assert np.allclose(models[0].rho, expected)

    def test_sub_models_pca(self, miner):
        models = miner.sub_models("x", "i MOD 3", technique="pca", k=2)
        assert len(models) == 3
        assert all(model.k == 2 for model in models.values())

    def test_sub_models_unknown_technique(self, miner):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            miner.sub_models("x", "i MOD 2", technique="kmeans")

    def test_sub_models_skips_degenerate_groups(self, miner):
        # Grouping by the id itself gives single-row groups: correlation
        # is undefined for all of them, so the dict comes back empty
        # rather than raising.
        models = miner.sub_models("x", "i", technique="correlation")
        assert models == {}

    def test_profile(self, miner):
        profiles = miner.profile("x")
        X = reference_matrix(miner)
        assert profiles["x1"].mean == pytest.approx(X[:, 0].mean())
        assert profiles["x2"].maximum == pytest.approx(X[:, 1].max())


class TestModels:
    def test_correlation(self, miner):
        model = miner.correlation("x")
        X = reference_matrix(miner)
        assert np.allclose(model.rho, np.corrcoef(X.T))
        assert model.dimension_names == ["x1", "x2", "x3", "x4"]

    def test_linear_regression_udf_and_sql(self, miner):
        via_udf = miner.linear_regression("x")
        via_sql = miner.linear_regression("x", method="sql")
        assert np.allclose(via_udf.beta, via_sql.beta)
        assert via_udf.r_squared() > 0.9

    def test_pca(self, miner):
        model = miner.pca("x", k=2)
        assert model.k == 2 and model.d == 4
        assert model.orthogonality_error() < 1e-10

    def test_factor_analysis(self, miner):
        model = miner.factor_analysis("x", k=2)
        assert model.loadings.shape == (4, 2)

    def test_gaussian_mixture(self, miner):
        model = miner.gaussian_mixture("x", k=3, seed=1)
        assert model.weights.sum() == pytest.approx(1.0)


class TestKMeansInDatabase:
    def test_converges_and_matches_in_memory_quality(self, miner):
        X = reference_matrix(miner)
        db_model = miner.kmeans("x", k=3, max_iterations=12, seed=2)
        from repro.core.models.kmeans import KMeansModel

        memory_model = KMeansModel.fit_matrix(X, k=3, seed=2)
        db_sse = db_model.within_cluster_sse(X)
        memory_sse = memory_model.within_cluster_sse(X)
        assert db_sse <= memory_sse * 1.3

    def test_weights_normalized(self, miner):
        model = miner.kmeans("x", k=2, max_iterations=6, seed=0)
        assert model.weights.sum() == pytest.approx(1.0)

    def test_sql_method_matches_udf_method(self, miner):
        """The pure-SQL iteration (CASE nearest-centroid + plain GROUP BY
        summaries, no UDFs) must walk the identical centroid path."""
        via_udf = miner.kmeans("x", k=3, max_iterations=4, seed=1, method="udf")
        via_sql = miner.kmeans("x", k=3, max_iterations=4, seed=1, method="sql")
        assert np.allclose(via_udf.centroids, via_sql.centroids)
        assert np.allclose(via_udf.radii, via_sql.radii)
        assert np.allclose(via_udf.weights, via_sql.weights)

    def test_unknown_method_rejected(self, miner):
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="method"):
            miner.kmeans("x", k=2, method="quantum")

    def test_k_larger_than_rows_rejected(self):
        from repro.errors import ModelError

        tiny = WarehouseMiner(amps=2)
        tiny.load_synthetic("t", n=3, d=2, k=2)
        with pytest.raises(ModelError):
            tiny.kmeans("t", k=10)


class TestScoring:
    def test_full_round_trip(self, miner):
        regression = miner.linear_regression("x")
        scorer = miner.scorer("x")
        scorer.store_regression(regression)
        result = scorer.score_regression("udf")
        X = reference_matrix(miner)
        from repro.core.scoring.scorer import scores_as_matrix

        scores = scores_as_matrix(result, 1).ravel()
        assert np.allclose(np.sort(scores), np.sort(regression.predict(X)))

    def test_train_then_score_new_data(self, miner):
        """The paper's scenario: build on one table, score another."""
        model = miner.kmeans("x", k=2, max_iterations=6, seed=4)
        miner.load_synthetic("fresh", n=100, d=4, k=3, seed=99)
        scorer = miner.scorer("fresh")
        scorer.store_clustering(model, centroid_table="c2")
        result = scorer.score_clustering(2, centroid_table="c2")
        labels = {row[1] for row in result.rows}
        assert labels <= {1, 2}
        assert len(result) == 100
