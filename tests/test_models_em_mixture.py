"""EM clustering: mixtures of diagonal Gaussians."""

import numpy as np
import pytest

from repro.core.models.em_mixture import GaussianMixtureModel
from repro.errors import ModelError


@pytest.fixture
def mixture_data():
    rng = np.random.default_rng(51)
    means = np.asarray([[0.0, 0.0], [15.0, 5.0]])
    sigmas = np.asarray([[1.0, 2.0], [2.0, 1.0]])
    X = np.vstack(
        [
            means[0] + rng.normal(size=(300, 2)) * sigmas[0],
            means[1] + rng.normal(size=(200, 2)) * sigmas[1],
        ]
    )
    return X, means, sigmas


class TestFit:
    def test_recovers_means(self, mixture_data):
        X, means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(
            X, k=2, seed=3, tolerance=1e-12, max_iterations=500
        )
        found = model.means[np.argsort(model.means[:, 0])]
        assert np.allclose(found, means, atol=0.5)

    def test_recovers_variances(self, mixture_data):
        X, _means, sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(
            X, k=2, seed=3, tolerance=1e-12, max_iterations=500
        )
        order = np.argsort(model.means[:, 0])
        assert np.allclose(model.variances[order], sigmas**2, rtol=0.4)

    def test_recovers_weights(self, mixture_data):
        X, _means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        assert model.weights.sum() == pytest.approx(1.0)
        assert np.allclose(sorted(model.weights), [0.4, 0.6], atol=0.05)

    def test_log_likelihood_monotone_over_iterations(self, mixture_data):
        """EM's defining property: the likelihood never decreases."""
        X, _means, _sigmas = mixture_data
        previous = -np.inf
        for iterations in (1, 2, 5, 20):
            model = GaussianMixtureModel.fit_matrix(
                X, k=2, max_iterations=iterations, tolerance=0.0, seed=3
            )
            assert model.log_likelihood >= previous - 1e-6
            previous = model.log_likelihood

    def test_more_components_fit_better(self, mixture_data):
        X, _means, _sigmas = mixture_data
        one = GaussianMixtureModel.fit_matrix(X, k=1, seed=3)
        two = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        assert two.log_likelihood > one.log_likelihood

    def test_k_bounds(self, mixture_data):
        X, _means, _sigmas = mixture_data
        with pytest.raises(ModelError):
            GaussianMixtureModel.fit_matrix(X, k=0)

    def test_variance_floor_applied(self):
        # Duplicate points would collapse a variance to zero without the floor.
        X = np.tile(np.asarray([[1.0, 2.0]]), (30, 1))
        X[::2] += 1.0
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=0)
        assert np.all(model.variances > 0)


class TestScoring:
    def test_responsibilities_are_distributions(self, mixture_data):
        X, _means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        responsibilities = model.responsibilities(X)
        assert responsibilities.shape == (len(X), 2)
        assert np.allclose(responsibilities.sum(axis=1), 1.0)
        assert np.all(responsibilities >= 0)

    def test_predict_separates_components(self, mixture_data):
        X, _means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        labels = model.predict(X)
        assert set(labels) == {1, 2}
        first = labels[:300]
        accuracy = max(
            (first == 1).mean(), (first == 2).mean()
        )
        assert accuracy > 0.97

    def test_score_is_total_log_likelihood(self, mixture_data):
        X, _means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        assert model.score(X) == pytest.approx(model.log_likelihood, rel=1e-6)

    def test_dimension_check(self, mixture_data):
        X, _means, _sigmas = mixture_data
        model = GaussianMixtureModel.fit_matrix(X, k=2, seed=3)
        with pytest.raises(ModelError):
            model.predict(np.zeros((3, 5)))

    def test_kmeans_agreement_on_separated_data(self, mixture_data):
        """On well-separated blobs EM and K-means agree almost everywhere
        (the paper treats them as two drivers of the same statistics)."""
        from repro.core.models.kmeans import KMeansModel

        X, _means, _sigmas = mixture_data
        em_labels = GaussianMixtureModel.fit_matrix(X, k=2, seed=3).predict(X)
        km_labels = KMeansModel.fit_matrix(X, k=2, seed=3).assign(X)
        agreement = max(
            (em_labels == km_labels).mean(),
            (em_labels != km_labels).mean(),  # label permutation
        )
        assert agreement > 0.95
