"""Crash-safe durability: WAL codec, checkpoints, recovery, crashes.

Covers the durability layer bottom-up:

* the record codec — CRC detection, torn-tail versus mid-log corruption,
  LSN monotonicity;
* logging semantics — one record per statement (an UPDATE's truncate +
  re-insert replay atomically), direct-API commits, fsync-mode counters;
* recovery — checkpoint restore + WAL-suffix replay, stale-record
  skipping, torn-tail truncation, typed refusal on untrustworthy state;
* deterministic crash injection at ``wal.append`` / ``wal.fsync`` /
  ``checkpoint.write`` with the committed-prefix invariant.

The *randomized* crash schedules live in the chaos suite
(``tests/test_chaos.py``); this file pins every regime explicitly.
"""

import json

import numpy as np
import pytest

from repro.core.models.kmeans import KMeansModel
from repro.dbms import open_durable
from repro.dbms.faults import FaultPlan, FaultSpec
from repro.dbms.persistence import database_fingerprint
from repro.dbms.wal import (
    MANIFEST_NAME,
    WAL_NAME,
    WriteAheadLog,
    encode_record,
    read_wal,
)
from repro.errors import (
    ConstraintViolation,
    RecoveryError,
    SimulatedCrash,
)
from repro.serving import ModelRegistry
from repro.serving.registry import REGISTRY_TABLE


@pytest.fixture
def root(tmp_path):
    return tmp_path / "durable"


def _crash_spec(site: str, at_record: int = 0, torn_bytes: int = 0):
    """A FaultSpec that kills the session at the Nth hit of *site*."""
    return FaultSpec(
        site=site,
        kind="error",
        error=SimulatedCrash(torn_bytes=torn_bytes),
        times=1,
        skip_first=at_record,
    )


# ----------------------------------------------------------------- codec
class TestCodec:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        ops1 = [{"op": "insert", "name": "t", "rows": [[1, 0.5], [2, None]]}]
        ops2 = [{"op": "truncate", "name": "t"}]
        path.write_bytes(encode_record(1, ops1) + encode_record(2, ops2))
        records, good, torn = read_wal(path)
        assert [(r.lsn, r.ops) for r in records] == [(1, ops1), (2, ops2)]
        assert good == path.stat().st_size and torn == 0

    def test_missing_file_is_empty(self, tmp_path):
        assert read_wal(tmp_path / "absent.log") == ([], 0, 0)

    def test_torn_tail_is_truncatable(self, tmp_path):
        path = tmp_path / "wal.log"
        intact = encode_record(1, [{"op": "truncate", "name": "t"}])
        torn = encode_record(2, [{"op": "truncate", "name": "t"}])[:11]
        path.write_bytes(intact + torn)
        records, good, torn_bytes = read_wal(path)
        assert [r.lsn for r in records] == [1]
        assert good == len(intact) and torn_bytes == 11

    def test_bit_flip_in_payload_is_detected(self, tmp_path):
        path = tmp_path / "wal.log"
        record = bytearray(
            encode_record(1, [{"op": "insert", "name": "t", "rows": [[7]]}])
        )
        record[-3] ^= 0x10  # flip one payload bit
        path.write_bytes(bytes(record))
        records, good, torn_bytes = read_wal(path)
        assert records == [] and good == 0 and torn_bytes == len(record)

    def test_mid_log_corruption_is_typed(self, tmp_path):
        path = tmp_path / "wal.log"
        first = bytearray(encode_record(1, [{"op": "truncate", "name": "t"}]))
        first[-1] ^= 0xFF
        second = encode_record(2, [{"op": "truncate", "name": "t"}])
        path.write_bytes(bytes(first) + second)
        with pytest.raises(RecoveryError, match="not a torn tail"):
            read_wal(path)

    def test_lsn_gap_is_typed(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(
            encode_record(1, [{"op": "truncate", "name": "t"}])
            + encode_record(3, [{"op": "truncate", "name": "t"}])
        )
        with pytest.raises(RecoveryError, match="LSN gap"):
            read_wal(path)

    def test_writer_tracks_durable_offset(self, tmp_path):
        from repro.dbms.metrics import DurabilityMetrics

        wal = WriteAheadLog(tmp_path / "wal.log", DurabilityMetrics())
        wal.append([{"op": "truncate", "name": "t"}])
        assert wal.durable_offset == 0 and wal.records_since_sync == 1
        wal.sync()
        assert wal.durable_offset == wal.path.stat().st_size
        assert wal.records_since_sync == 0
        wal.append([{"op": "truncate", "name": "t"}])
        wal.crash()
        # The unsynced second record is gone; the synced first survives.
        records, _, _ = read_wal(wal.path)
        assert [r.lsn for r in records] == [1]


# ------------------------------------------------------------- lifecycle
class TestDurableLifecycle:
    def test_bootstrap_layout(self, root):
        db = open_durable(root)
        db.close()
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["checkpoint"] == "checkpoint-000000"
        assert manifest["lsn"] == 0
        assert (root / "checkpoint-000000" / "catalog.json").exists()
        assert (root / WAL_NAME).exists()

    def test_refuses_unmanifested_leftovers(self, root):
        root.mkdir(parents=True)
        (root / WAL_NAME).write_bytes(b"anything")
        with pytest.raises(RecoveryError, match="no MANIFEST"):
            open_durable(root)

    def test_bad_fsync_mode(self, root):
        with pytest.raises(ValueError, match="fsync_mode"):
            open_durable(root, fsync_mode="sometimes")

    def test_full_round_trip_all_modes(self, root):
        for mode in ("always", "batch", "off"):
            directory = root / mode
            db = open_durable(directory, fsync_mode=mode)
            db.execute(
                "CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL, s VARCHAR)"
            )
            db.insert_rows(
                "t", [(i, i * 0.125, f"row-{i}") for i in range(20)]
            )
            db.execute("UPDATE t SET x = x * 3 WHERE id < 10")
            db.execute("DELETE FROM t WHERE id = 19")
            db.execute("CREATE VIEW big AS SELECT id FROM t WHERE x > 1")
            expected = database_fingerprint(db)
            db.close()

            recovered = open_durable(directory)
            assert database_fingerprint(recovered) == expected
            assert recovered.durability.recoveries == 1
            # Clean close fsyncs, so even "off" replays everything.
            assert recovered.durability.recovery_replayed_records > 0
            recovered.close()

    def test_recovered_session_keeps_logging(self, root):
        db = open_durable(root)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(1,)])
        db.close()
        second = open_durable(root)
        second.insert_rows("t", [(2,)])
        expected = database_fingerprint(second)
        second.close()
        third = open_durable(root)
        assert database_fingerprint(third) == expected
        third.close()

    def test_bulk_load_replays_striped_layout(self, root):
        db = open_durable(root)
        db.execute("CREATE TABLE t (id INTEGER, x REAL)")
        db.load_columns(
            "t", {"id": np.arange(50), "x": np.linspace(0, 1, 50)}
        )
        layout = [p.row_count for p in db.table("t")._partitions]
        expected = database_fingerprint(db)
        db.close()
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        # bulk loads replay through bulk_load_arrays, reproducing the
        # contiguous striping — not round-robin insert routing.
        assert [
            p.row_count for p in recovered.table("t")._partitions
        ] == layout
        recovered.close()

    def test_drop_table_and_view_replay(self, root):
        db = open_durable(root)
        db.execute("CREATE TABLE keep (id INTEGER)")
        db.execute("CREATE TABLE gone (id INTEGER)")
        db.execute("CREATE VIEW v AS SELECT id FROM keep")
        db.execute("DROP TABLE gone")
        db.execute("DROP VIEW v")
        expected = database_fingerprint(db)
        db.close()
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        assert not recovered.catalog.has_table("gone")
        assert not recovered.catalog.has_view("v")
        recovered.close()


# --------------------------------------------------- statement atomicity
class TestStatementAtomicity:
    def test_update_is_one_record(self, root):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        db.insert_rows("t", [(i, float(i)) for i in range(6)])
        before = len(read_wal(root / WAL_NAME)[0])
        db.execute("UPDATE t SET x = x + 1 WHERE id < 3")
        records, _, _ = read_wal(root / WAL_NAME)
        assert len(records) == before + 1
        # ... and that one record carries the whole truncate + re-insert.
        ops = [op["op"] for op in records[-1].ops]
        assert ops == ["truncate", "insert"]
        db.close()

    def test_delete_is_one_record(self, root):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        db.insert_rows("t", [(i, float(i)) for i in range(6)])
        before = len(read_wal(root / WAL_NAME)[0])
        db.execute("DELETE FROM t WHERE id >= 4")
        records, _, _ = read_wal(root / WAL_NAME)
        assert len(records) == before + 1
        db.close()

    def test_multi_statement_script_one_record_each(self, root):
        db = open_durable(root, fsync_mode="always")
        db.execute(
            "CREATE TABLE t (id INTEGER); "
            "INSERT INTO t VALUES (1), (2); "
            "DELETE FROM t WHERE id = 1"
        )
        records, _, _ = read_wal(root / WAL_NAME)
        assert [[op["op"] for op in r.ops] for r in records] == [
            ["create_table"],
            ["insert"],
            ["truncate", "insert"],
        ]
        db.close()

    def test_failed_statement_logs_applied_prefix(self, root):
        """A statement that fails mid-way logs exactly the mutations it
        actually applied — recovered state equals crashed-session memory."""
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.insert_rows("t", [(1,), (2,), (3,)])
        with pytest.raises(ConstraintViolation):
            # Row 4 inserts, the duplicate 1 then fails validation —
            # matching per-row semantics, the valid prefix stays.
            db.insert_rows("t", [(4,), (1,)])
        expected = database_fingerprint(db)
        db.close()
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 4
        recovered.close()


# ------------------------------------------------------------ fsync modes
class TestFsyncModes:
    def _commit_n(self, db, n):
        db.execute("CREATE TABLE t (id INTEGER)")
        for i in range(n):
            db.insert_rows("t", [(i,)])

    def test_always_syncs_per_commit(self, root):
        db = open_durable(root, fsync_mode="always")
        self._commit_n(db, 5)
        # create_table + 5 inserts = 6 commit records, 6 fsyncs.
        assert db.durability.wal_records == 6
        assert db.durability.fsyncs == 6
        db.close()

    def test_batch_syncs_every_n_records(self, root):
        db = open_durable(root, fsync_mode="batch", wal_batch_records=4)
        self._commit_n(db, 6)  # 7 records -> fsync at 4, 3 pending
        assert db.durability.fsyncs == 1
        assert db._wal.records_since_sync == 3
        db.close()  # close drains the rest

    def test_off_only_syncs_at_close(self, root):
        db = open_durable(root, fsync_mode="off")
        self._commit_n(db, 6)
        assert db.durability.fsyncs == 0
        db.close()

    def test_metrics_round_trip(self, root):
        from repro.dbms.metrics import DurabilityMetrics

        db = open_durable(root, fsync_mode="always")
        self._commit_n(db, 2)
        snapshot = db.durability.to_dict()
        assert DurabilityMetrics.from_dict(snapshot) == db.durability
        with pytest.raises(ValueError, match="unknown"):
            DurabilityMetrics.from_dict({"bogus": 1})
        db.close()


# ------------------------------------------------------------ checkpoints
class TestCheckpoints:
    def test_checkpoint_truncates_wal_and_gc_old(self, root):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(i,) for i in range(8)])
        assert (root / WAL_NAME).stat().st_size > 0
        db.checkpoint()
        assert (root / WAL_NAME).stat().st_size == 0
        dirs = sorted(
            p.name for p in root.iterdir() if p.name.startswith("checkpoint-")
        )
        assert dirs == ["checkpoint-000001"]
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["checkpoint"] == "checkpoint-000001"
        # One insert_rows call is one commit record: create + batch = 2.
        assert manifest["lsn"] == 2
        db.close()
        recovered = open_durable(root)
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 8
        assert recovered.durability.recovery_replayed_records == 0
        recovered.close()

    def test_auto_checkpoint_every_n_records(self, root):
        db = open_durable(
            root, fsync_mode="always", checkpoint_every_records=3
        )
        db.execute("CREATE TABLE t (id INTEGER)")
        for i in range(7):
            db.insert_rows("t", [(i,)])
        assert db.durability.checkpoints >= 2
        db.close()
        recovered = open_durable(root)
        assert recovered.execute("SELECT count(*) FROM t").scalar() == 7
        recovered.close()

    def test_stale_wal_records_skipped(self, root, monkeypatch):
        """A crash between manifest swap and WAL truncation leaves
        records the checkpoint already contains; recovery skips them."""
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        expected = database_fingerprint(db)
        monkeypatch.setattr(WriteAheadLog, "reset", lambda self: None)
        db.checkpoint()  # manifest now at lsn 2, WAL still holds 1..2
        monkeypatch.undo()
        db._wal.close()
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        assert recovered.durability.recovery_skipped_records == 2
        assert recovered.durability.recovery_replayed_records == 0
        recovered.close()

    def test_manifest_pointing_nowhere_is_typed(self, root):
        db = open_durable(root)
        db.close()
        (root / MANIFEST_NAME).write_text(
            json.dumps(
                {"format": 1, "checkpoint": "checkpoint-000042", "lsn": 0}
            )
        )
        with pytest.raises(RecoveryError, match="missing checkpoint"):
            open_durable(root)

    def test_garbage_manifest_is_typed(self, root):
        db = open_durable(root)
        db.close()
        (root / MANIFEST_NAME).write_text("not json {")
        with pytest.raises(RecoveryError, match="unreadable manifest"):
            open_durable(root)


# --------------------------------------------------------- crash injection
class TestCrashInjection:
    @pytest.mark.parametrize("at_record", [0, 3, 7])
    def test_always_mode_loses_nothing_committed(self, root, at_record):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        committed = [database_fingerprint(db)]
        db.faults = FaultPlan(
            [_crash_spec("wal.append", at_record=at_record)], seed=0
        )
        with pytest.raises(SimulatedCrash):
            for i in range(10):
                db.insert_rows("t", [(i, i * 0.25)])
                committed.append(database_fingerprint(db))
        assert db.crashed
        # The crash fired on append number at_record (after the faults
        # were armed), so exactly that many inserts committed durably.
        assert len(committed) == at_record + 1
        recovered = open_durable(root)
        # "always" fsyncs every commit: the recovered state is exactly
        # the LAST committed prefix — zero loss window.
        assert database_fingerprint(recovered) == committed[-1]
        recovered.close()

    def test_poisoned_session_rejects_everything(self, root):
        db = open_durable(root, fsync_mode="always")
        db.faults = FaultPlan([_crash_spec("wal.append")], seed=0)
        with pytest.raises(SimulatedCrash):
            db.execute("CREATE TABLE t (id INTEGER)")
        for attempt in (
            lambda: db.execute("SELECT 1"),
            lambda: db.insert_rows("t", [(1,)]),
            lambda: db.checkpoint(),
        ):
            with pytest.raises(RecoveryError, match="reopen"):
                attempt()
        db.close()  # close after crash is a clean no-op

    def test_batch_mode_crash_drops_unsynced_tail(self, root):
        db = open_durable(root, fsync_mode="batch", wal_batch_records=100)
        empty = database_fingerprint(db)
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        for i in range(5):
            db.insert_rows("t", [(i,)])
        db.faults = FaultPlan([_crash_spec("wal.append")], seed=0)
        with pytest.raises(SimulatedCrash):
            db.insert_rows("t", [(99,)])
        recovered = open_durable(root)
        # The batch threshold (100) was never reached, so nothing was
        # fsynced: recovery lands on the empty bootstrap prefix — an
        # honest loss window, never a torn middle.
        assert database_fingerprint(recovered) == empty
        assert recovered.durability.recovery_replayed_records == 0
        recovered.close()

    @pytest.mark.parametrize("torn_bytes", [1, 9, 40])
    def test_torn_write_is_truncated(self, root, torn_bytes):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.insert_rows("t", [(1,)])
        expected = database_fingerprint(db)
        db.faults = FaultPlan(
            [_crash_spec("wal.append", torn_bytes=torn_bytes)], seed=0
        )
        with pytest.raises(SimulatedCrash):
            db.insert_rows("t", [(2,)])
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        assert recovered.durability.recovery_truncated_bytes == torn_bytes
        recovered.close()

    def test_fsync_site_crash(self, root):
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        expected = database_fingerprint(db)
        db.faults = FaultPlan([_crash_spec("wal.fsync")], seed=0)
        with pytest.raises(SimulatedCrash):
            db.insert_rows("t", [(1,)])
        # The record was appended but never fsynced — it is lost.
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        recovered.close()

    @pytest.mark.parametrize("stage_hits", [0, 1])
    def test_checkpoint_crash_is_atomic(self, root, stage_hits):
        """Dying at either checkpoint stage (snapshot write or manifest
        swap) leaves the OLD checkpoint authoritative."""
        db = open_durable(root, fsync_mode="always")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.insert_rows("t", [(1,), (2,)])
        expected = database_fingerprint(db)
        db.faults = FaultPlan(
            [_crash_spec("checkpoint.write", at_record=stage_hits)], seed=0
        )
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        recovered = open_durable(root)
        assert database_fingerprint(recovered) == expected
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["checkpoint"] == "checkpoint-000000"
        # Recovery garbage-collected any half-written snapshot dir.
        assert sorted(
            p.name for p in root.iterdir() if p.name.startswith("checkpoint")
        ) == ["checkpoint-000000"]
        recovered.close()

    def test_registry_and_promotion_survive_crash(self, root):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 2))
        db = open_durable(root, fsync_mode="always")
        registry = ModelRegistry(db)
        registry.register("churn", KMeansModel.fit_matrix(X, 2, seed=1))
        registry.register("churn", KMeansModel.fit_matrix(X, 3, seed=2))
        registry.promote("churn", 2)
        db.faults = FaultPlan([_crash_spec("wal.append")], seed=0)
        with pytest.raises(SimulatedCrash):
            db.execute("CREATE TABLE junk (id INTEGER)")
        recovered = open_durable(root)
        recovered_registry = ModelRegistry(recovered)
        versions = recovered_registry.list("churn")  # newest first
        assert [v.version for v in versions] == [2, 1]
        assert [v.promoted for v in versions] == [True, False]
        # The promoted binding actually serves: components are intact.
        model = recovered_registry.get("churn")
        assert model.version == 2
        for table in versions[0].tables:
            assert recovered.catalog.has_table(table)
        scores = model.score_rows(X[:5])
        assert len(scores) == 5
        recovered.close()
