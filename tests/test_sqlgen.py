"""SQL generation for the summary matrices (the plain-SQL route)."""

import numpy as np
import pytest

from repro.core.sqlgen import NlqSqlGenerator
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names


@pytest.fixture
def gen_db():
    rng = np.random.default_rng(21)
    n, d = 120, 4
    X = rng.normal(5.0, 2.0, size=(n, d))
    db = Database(amps=3)
    db.create_table("x", dataset_schema(d))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    return db, X, NlqSqlGenerator("x", dimension_names(d))


class TestQueryTexts:
    def test_count_sql(self, gen_db):
        _db, _X, generator = gen_db
        assert generator.count_sql() == "SELECT sum(1.0) AS n FROM x"

    def test_linear_sum_forms(self, gen_db):
        _db, _X, generator = gen_db
        assert generator.linear_sum_sql() == (
            "SELECT sum(x1), sum(x2), sum(x3), sum(x4) FROM x"
        )
        statements = generator.linear_sum_statements()
        assert len(statements) == 4
        assert statements[0] == "SELECT 1 AS a, sum(x1) AS s FROM x"

    def test_q_entry_counts(self, gen_db):
        _db, _X, generator = gen_db
        assert len(generator.q_entry_statements(MatrixType.FULL)) == 16
        assert len(generator.q_entry_statements(MatrixType.TRIANGULAR)) == 10
        assert len(generator.q_entry_statements(MatrixType.DIAGONAL)) == 4

    def test_long_query_term_count(self, gen_db):
        """The paper's 1 + d + d² terms, with NULL placeholders keeping
        the width constant across matrix types."""
        _db, _X, generator = gen_db
        d = 4
        for matrix_type in MatrixType:
            sql = generator.long_query_sql(matrix_type)
            # count top-level select terms = commas + 1 before FROM
            select_list = sql[len("SELECT ") : sql.index(" FROM")]
            assert select_list.count(",") + 1 == 1 + d + d * d

    def test_long_query_null_placeholders(self, gen_db):
        _db, _X, generator = gen_db
        triangular = generator.long_query_sql(MatrixType.TRIANGULAR)
        assert triangular.count("null") == 6  # upper triangle of 4x4
        diagonal = generator.long_query_sql(MatrixType.DIAGONAL)
        assert diagonal.count("null") == 12


class TestExecution:
    @pytest.mark.parametrize("matrix_type", list(MatrixType))
    def test_long_query_matches_reference(self, gen_db, matrix_type):
        db, X, generator = gen_db
        stats = generator.compute(db, matrix_type)
        assert stats.allclose(SummaryStatistics.from_matrix(X, matrix_type))

    def test_per_entry_route_matches(self, gen_db):
        db, X, generator = gen_db
        stats = generator.compute_per_entry(db)
        assert stats.allclose(SummaryStatistics.from_matrix(X))

    def test_per_entry_diagonal(self, gen_db):
        db, X, generator = gen_db
        stats = generator.compute_per_entry(db, MatrixType.DIAGONAL)
        assert np.allclose(
            np.diag(stats.Q), (X * X).sum(axis=0)
        )

    def test_groupby_route_matches(self, gen_db):
        db, X, generator = gen_db
        groups = generator.compute_groups(db, "i MOD 2")
        ids = np.arange(1, X.shape[0] + 1)
        for key in (0, 1):
            members = X[ids % 2 == key]
            assert groups[key].allclose(
                SummaryStatistics.from_matrix(members, MatrixType.DIAGONAL)
            )

    def test_groupby_triangular(self, gen_db):
        db, X, generator = gen_db
        groups = generator.compute_groups(
            db, "i MOD 2", MatrixType.TRIANGULAR
        )
        ids = np.arange(1, X.shape[0] + 1)
        members = X[ids % 2 == 0]
        assert groups[0].allclose(SummaryStatistics.from_matrix(members))

    def test_empty_table(self):
        db = Database(amps=2)
        db.create_table("e", dataset_schema(2))
        generator = NlqSqlGenerator("e", dimension_names(2))
        stats = generator.compute(db)
        assert stats.n == 0

    def test_sql_route_equals_udf_route(self, gen_db):
        from repro.core.nlq_udf import compute_nlq_udf, register_nlq_udfs

        db, _X, generator = gen_db
        register_nlq_udfs(db)
        sql_stats = generator.compute(db)
        udf_stats = compute_nlq_udf(db, "x", dimension_names(4))
        assert sql_stats.allclose(udf_stats, rtol=1e-12)

    def test_simulated_time_long_query_beats_per_entry(self, gen_db):
        """The paper's point for the single-statement form: one scan
        instead of d(d+1)/2 + d + 1 scans."""
        db, _X, generator = gen_db
        db.reset_clock()
        generator.compute(db)
        long_time = db.simulated_time
        db.reset_clock()
        generator.compute_per_entry(db)
        per_entry_time = db.simulated_time
        assert long_time < per_entry_time
