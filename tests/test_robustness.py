"""Robustness and failure injection: the engine under hostile input."""

import numpy as np
import pytest

from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.dbms.udf import AggregateUdf, scalar_udf
from repro.errors import (
    ExecutionError,
    ReproError,
    SqlSyntaxError,
    UdfArgumentError,
)


class _ExplodingAggregate(AggregateUdf):
    """Fails after accumulating a set number of rows."""

    def __init__(self, name: str, explode_after: int) -> None:
        super().__init__(name)
        self._remaining = explode_after

    def initialize(self):
        return 0.0

    def accumulate(self, state, args):
        self._remaining -= 1
        if self._remaining < 0:
            raise UdfArgumentError("aggregate exploded mid-scan")
        return state + float(args[0])

    def merge(self, state, other):
        return state + other

    def finalize(self, state):
        return state


@pytest.fixture
def small_db(db: Database) -> Database:
    db.execute("CREATE TABLE t (i INTEGER PRIMARY KEY, v FLOAT)")
    db.insert_rows("t", [(i, float(i)) for i in range(1, 21)])
    return db


class TestUdfFailureInjection:
    def test_exploding_aggregate_propagates(self, small_db):
        small_db.register_udf(_ExplodingAggregate("boom", explode_after=5))
        with pytest.raises(UdfArgumentError, match="exploded"):
            small_db.execute("SELECT boom(v) FROM t")

    def test_engine_usable_after_udf_failure(self, small_db):
        small_db.register_udf(_ExplodingAggregate("boom", explode_after=5))
        with pytest.raises(UdfArgumentError):
            small_db.execute("SELECT boom(v) FROM t")
        # The next statement runs normally.
        assert small_db.execute("SELECT count(*) FROM t").scalar() == 20

    def test_scalar_udf_exception_propagates(self, small_db):
        def bad(value):
            raise ValueError("scalar kaboom")

        small_db.register_udf(scalar_udf("kaboom", bad, arity=1))
        with pytest.raises(ValueError, match="kaboom"):
            small_db.execute("SELECT kaboom(v) FROM t")

    def test_nested_guard_released_after_failure(self, small_db):
        inner = scalar_udf("inner_u", lambda v: v)

        def calls_inner(value):
            return inner(value)

        small_db.register_udf(scalar_udf("outer_u", calls_inner, arity=1))
        small_db.register_udf(inner)
        with pytest.raises(UdfArgumentError):
            small_db.execute("SELECT outer_u(v) FROM t")
        # The guard must not be stuck "inside a UDF".
        assert len(small_db.execute("SELECT inner_u(v) FROM t")) == 20


class TestHostileSql:
    def test_deeply_nested_parentheses(self, small_db):
        # Each nesting level walks the full precedence chain, so ~60
        # levels is already far beyond anything a generator emits.
        depth = 60
        expression = "(" * depth + "v" + ")" * depth
        result = small_db.execute(f"SELECT sum({expression}) FROM t")
        assert result.scalar() == 210.0

    def test_pathological_nesting_fails_cleanly(self, small_db):
        # Past the interpreter's recursion limit the parser must raise,
        # not corrupt state.
        depth = 5000
        expression = "(" * depth + "v" + ")" * depth
        with pytest.raises(RecursionError):
            small_db.execute(f"SELECT {expression} FROM t")
        assert small_db.execute("SELECT count(*) FROM t").scalar() == 20

    def test_very_wide_select_list(self, small_db):
        terms = ", ".join(f"sum(v * {k})" for k in range(1, 401))
        result = small_db.execute(f"SELECT {terms} FROM t")
        assert len(result.columns) == 400
        assert result.rows[0][0] == 210.0

    def test_long_in_list(self, small_db):
        values = ", ".join(str(k) for k in range(1000))
        result = small_db.execute(f"SELECT count(*) FROM t WHERE i IN ({values})")
        assert result.scalar() == 20

    def test_garbage_input(self, small_db):
        for garbage in ("SELEC 1", ");DROP TABLE t", "\x00", "🙂"):
            with pytest.raises((SqlSyntaxError, ReproError)):
                small_db.execute(garbage)
        assert small_db.catalog.has_table("t")

    def test_division_by_zero_in_aggregate_argument(self, small_db):
        small_db.execute("INSERT INTO t VALUES (99, 0.0)")
        with pytest.raises(ExecutionError):
            small_db.execute("SELECT sum(1.0 / v) FROM t")

    def test_self_referential_view_cycle(self, small_db):
        small_db.execute("CREATE VIEW v1 AS SELECT i FROM t")
        small_db.execute("CREATE OR REPLACE VIEW v1 AS SELECT i FROM v1")
        with pytest.raises(RecursionError):
            small_db.execute("SELECT count(*) FROM v1")


class TestNumericalEdges:
    def test_huge_and_tiny_values_in_summary(self):
        from repro.core.summary import SummaryStatistics

        X = np.asarray([[1e12, 1e-12], [2e12, 3e-12], [-1e12, 2e-12]])
        stats = SummaryStatistics.from_matrix(X)
        assert np.isfinite(stats.Q).all()
        assert np.allclose(stats.covariance(), np.cov(X.T, bias=True))

    def test_packing_survives_extreme_floats(self):
        from repro.core.packing import pack_vector, unpack_vector

        values = np.asarray([1e-300, 1e300, -1e300, 5e-324])
        assert np.array_equal(unpack_vector(pack_vector(values)), values)

    def test_summary_of_identical_points(self):
        from repro.core.summary import SummaryStatistics
        from repro.errors import ModelError

        X = np.tile([[3.0, 4.0]], (50, 1))
        stats = SummaryStatistics.from_matrix(X)
        assert np.allclose(stats.variances(), 0.0)
        with pytest.raises(ModelError):
            stats.correlation()

    def test_regression_near_singular_warns_via_error(self):
        from repro.core.models.regression import LinearRegressionModel
        from repro.core.summary import AugmentedSummary
        from repro.errors import ModelError

        rng = np.random.default_rng(0)
        base = rng.normal(size=100)
        X = np.column_stack([base, base * (1 + 1e-14)])  # numerically collinear
        y = base + rng.normal(size=100)
        try:
            model = LinearRegressionModel.from_summary(
                AugmentedSummary.from_xy(X, y)
            )
            # If numpy managed to solve it, predictions must be finite.
            assert np.isfinite(model.predict(X)).all()
        except ModelError:
            pass  # equally acceptable: flagged as singular
