"""UPDATE statement semantics."""

import pytest

from repro.dbms.database import Database
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.errors import ConstraintViolation, PlanningError, SqlSyntaxError


@pytest.fixture
def accounts(db: Database) -> Database:
    db.execute(
        "CREATE TABLE accounts (i INTEGER PRIMARY KEY, balance FLOAT, "
        "status VARCHAR)"
    )
    db.execute(
        "INSERT INTO accounts VALUES "
        "(1, 100.0, 'open'), (2, -50.0, 'open'), (3, 0.0, 'closed')"
    )
    return db


class TestParsing:
    def test_basic(self):
        statement = parse_statement("UPDATE t SET a = 1 WHERE b > 2")
        assert isinstance(statement, ast.Update)
        assert statement.assignments[0][0] == "a"
        assert statement.where is not None

    def test_multiple_assignments(self):
        statement = parse_statement("UPDATE t SET a = 1, b = a + 1")
        assert len(statement.assignments) == 2

    def test_missing_set_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("UPDATE t a = 1")

    def test_missing_equals_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("UPDATE t SET a 1")


class TestExecution:
    def test_update_all_rows(self, accounts):
        accounts.execute("UPDATE accounts SET balance = balance * 2")
        assert sorted(
            accounts.execute("SELECT balance FROM accounts").column("balance")
        ) == [-100.0, 0.0, 200.0]

    def test_update_with_where(self, accounts):
        accounts.execute(
            "UPDATE accounts SET status = 'frozen' WHERE balance < 0"
        )
        result = accounts.execute(
            "SELECT i FROM accounts WHERE status = 'frozen'"
        )
        assert result.column("i") == [2]

    def test_assignments_see_old_values(self, accounts):
        """SET a = b, b = a must swap, not cascade."""
        accounts.execute("CREATE TABLE p (i INTEGER PRIMARY KEY, a FLOAT, b FLOAT)")
        accounts.execute("INSERT INTO p VALUES (1, 1.0, 2.0)")
        accounts.execute("UPDATE p SET a = b, b = a")
        assert accounts.execute("SELECT a, b FROM p").rows == [(2.0, 1.0)]

    def test_update_with_scalar_udf(self, accounts):
        from repro.dbms.udf import scalar_udf

        accounts.register_udf(
            scalar_udf("clampzero", lambda v: max(v, 0.0), arity=1)
        )
        accounts.execute("UPDATE accounts SET balance = clampzero(balance)")
        assert min(
            accounts.execute("SELECT balance FROM accounts").column("balance")
        ) == 0.0

    def test_null_predicate_leaves_row(self, accounts):
        accounts.execute("INSERT INTO accounts VALUES (4, NULL, 'open')")
        accounts.execute("UPDATE accounts SET status = 'x' WHERE balance > 0")
        status = accounts.execute(
            "SELECT status FROM accounts WHERE i = 4"
        ).scalar()
        assert status == "open"

    def test_unknown_column_rejected(self, accounts):
        with pytest.raises(PlanningError):
            accounts.execute("UPDATE accounts SET nope = 1")

    def test_type_coercion_on_update(self, accounts):
        accounts.execute("UPDATE accounts SET balance = 7 WHERE i = 1")
        value = accounts.execute(
            "SELECT balance FROM accounts WHERE i = 1"
        ).scalar()
        assert value == 7.0 and isinstance(value, float)

    def test_pk_update_collision_rejected(self, accounts):
        with pytest.raises(ConstraintViolation):
            accounts.execute("UPDATE accounts SET i = 1 WHERE i = 2")

    def test_update_charges_time(self, accounts):
        accounts.reset_clock()
        accounts.execute("UPDATE accounts SET balance = 0.0")
        assert accounts.simulated_time > 0

    def test_paper_workflow_reassign_clusters(self, accounts):
        """The incremental K-means pattern the paper cites: store the
        nearest-centroid subscript back into the data table."""
        accounts.execute(
            "UPDATE accounts SET status = CASE WHEN balance >= 0 "
            "THEN 'cluster1' ELSE 'cluster2' END"
        )
        counts = accounts.execute(
            "SELECT status, count(*) FROM accounts GROUP BY status ORDER BY status"
        )
        assert counts.rows == [("cluster1", 2), ("cluster2", 1)]
