"""Shared-scan batch execution: rewrite decisions, parity, metrics.

:meth:`Database.execute_batch` runs N single-table aggregate statements
over ONE partition-parallel scan when the rewrite pass
(:mod:`repro.dbms.sql.rewrite`) proves they share it.  The contract
under test: **each statement's result is bit-identical to executing it
serially**, at any worker count, with the scan charged (and counted)
once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.core.nlq_udf import nlq_call_sql, register_nlq_udfs
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.dbms.sql.parser import parse_statement
from repro.dbms.sql.rewrite import plan_batch
from repro.errors import SqlSyntaxError

N_ROWS, D = 120, 3
DIMS = dimension_names(D)

#: single-table aggregate statements over x — every pair batchable
POOL = [
    "SELECT count(*) FROM x",
    "SELECT sum(x1), avg(x2) FROM x",
    nlq_call_sql("x", DIMS),
    nlq_call_sql("x", ["x1", "x2"]),
    "SELECT sum(x1 + x2), count(*) FROM x GROUP BY i MOD 3 ORDER BY 1",
    "SELECT sum(x1) FROM x WHERE x2 > 50.0",
    "SELECT min(x3), max(x1) FROM x",
    "SELECT avg(x3) FROM x WHERE x1 > 50.0 GROUP BY i MOD 2 ORDER BY 1",
]


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(23)
    X = rng.normal(50.0, 10.0, size=(N_ROWS, D))
    columns = {"i": np.arange(1, N_ROWS + 1)}
    for index, name in enumerate(DIMS):
        columns[name] = X[:, index]
    return columns


def _fresh_db(dataset, workers: int = 4) -> Database:
    db = Database(amps=4, executor_workers=workers)
    db.create_table("x", dataset_schema(D))
    db.load_columns("x", dataset)
    register_nlq_udfs(db)
    return db


# ------------------------------------------------------------------ parity
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(POOL) - 1),
        min_size=2,
        max_size=5,
    ),
    workers=st.sampled_from([1, 2, 4]),
)
@example(picks=[2, 2, 2, 3], workers=4)  # build_all_models' shape
@example(picks=[0, 1, 4, 5], workers=1)  # mixed grand/grouped/filtered
@example(picks=[5, 7], workers=2)        # WHERE-only batch
@settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_batch_matches_serial_bit_for_bit(dataset, picks, workers):
    """execute_batch([s1..sN]) == [execute(s1)..execute(sN)] — the
    whole contract, for any statement mix at any worker count."""
    batch = [POOL[index] for index in picks]
    with _fresh_db(dataset, workers=workers) as db:
        batched = [result.rows for result in db.execute_batch(batch)]
        serial = [db.execute(sql).rows for sql in batch]
    assert batched == serial


def test_batch_identical_across_worker_counts(dataset):
    batch = [nlq_call_sql("x", DIMS), "SELECT sum(x1), count(*) FROM x"]
    reference = None
    for workers in (1, 2, 4):
        with _fresh_db(dataset, workers=workers) as db:
            rows = [result.rows for result in db.execute_batch(batch)]
        if reference is None:
            reference = rows
        assert rows == reference


# ------------------------------------------------------------ decisions
def test_consolidated_decision_and_duplicate_elimination(dataset):
    with _fresh_db(dataset) as db:
        same = nlq_call_sql("x", DIMS)
        db.execute_batch([same, same, same, nlq_call_sql("x", ["x1"])])
        decision = db._executor.last_batch_decision
    assert decision.consolidated
    assert decision.table == "x"
    assert decision.distinct == [0, 3]
    assert decision.assignment == [0, 0, 0, 1]
    assert any("scan consolidation" in note for note in decision.notes)
    assert any("duplicate" in note for note in decision.notes)


def test_refusal_on_mixed_tables_falls_back_to_serial(dataset):
    with _fresh_db(dataset) as db:
        db.execute("CREATE TABLE other (i INTEGER PRIMARY KEY, v FLOAT)")
        db.execute("INSERT INTO other VALUES (1, 2.5)")
        batch = ["SELECT count(*) FROM x", "SELECT sum(v) FROM other"]
        results = db.execute_batch(batch)
        decision = db._executor.last_batch_decision
        serial = [db.execute(sql).rows for sql in batch]
    assert not decision.consolidated
    assert "table" in decision.reason
    assert [result.rows for result in results] == serial


def test_refusal_on_single_statement_and_non_aggregate(dataset):
    with _fresh_db(dataset) as db:
        db.execute_batch(["SELECT count(*) FROM x"])
        single = db._executor.last_batch_decision
        batch = ["SELECT i, x1 FROM x ORDER BY i", "SELECT count(*) FROM x"]
        results = db.execute_batch(batch)
        projection = db._executor.last_batch_decision
        serial = [db.execute(sql).rows for sql in batch]
        assert [result.rows for result in results] == serial
    assert not single.consolidated
    assert not projection.consolidated


def test_non_select_statement_is_rejected(dataset):
    with _fresh_db(dataset) as db:
        with pytest.raises(ValueError, match="SELECT"):
            db.execute_batch(
                ["SELECT count(*) FROM x", "DROP TABLE x"]
            )
        with pytest.raises(SqlSyntaxError):
            db.execute_batch(["SELECT count(*) FROM"])


def test_plan_batch_where_notes(dataset):
    with _fresh_db(dataset) as db:
        shared = plan_batch(db.catalog, [
            parse_statement("SELECT sum(x1) FROM x WHERE x2 > 50.0"),
            parse_statement("SELECT count(*) FROM x WHERE x2 > 50.0"),
        ])
        mixed = plan_batch(db.catalog, [
            parse_statement("SELECT sum(x1) FROM x WHERE x2 > 50.0"),
            parse_statement("SELECT count(*) FROM x"),
        ])
    assert shared.consolidated
    assert any("predicate pushed" in note for note in shared.notes)
    assert mixed.consolidated
    assert any("late filters" in note for note in mixed.notes)


# -------------------------------------------------------------- metrics
def test_batch_metrics_count_one_scan(dataset):
    batch = [
        nlq_call_sql("x", DIMS),
        nlq_call_sql("x", DIMS),
        "SELECT sum(x1), count(*) FROM x",
        "SELECT avg(x2) FROM x GROUP BY i MOD 3 ORDER BY 1",
    ]
    with _fresh_db(dataset) as db:
        partitions = sum(
            1 for p in db.table("x").partitions if p.row_count
        )
        results = db.execute_batch(batch)
    metrics = results[0].metrics
    assert metrics.statements_batched == 4
    # 3 distinct accumulator passes rode 1 physical scan: 3 saved.
    assert metrics.scans_saved == 3
    # Physical rows are read once, not once per statement.
    assert metrics.rows_processed == N_ROWS
    assert metrics.rows_scanned == N_ROWS
    assert metrics.parallel_tasks == partitions
    assert metrics.fallbacks == 0
    assert all(result.metrics is metrics for result in results)


def test_serial_execution_reports_no_batching(dataset):
    with _fresh_db(dataset) as db:
        result = db.execute("SELECT count(*) FROM x")
    assert result.metrics.statements_batched == 0
    assert result.metrics.scans_saved == 0


def test_batch_charges_one_scan(dataset):
    """Simulated cost: N-statement batch pays for one scan of x plus
    per-statement aggregate work — strictly cheaper than N scans."""
    batch = ["SELECT sum(x1) FROM x", "SELECT sum(x2) FROM x",
             "SELECT sum(x3) FROM x"]
    with _fresh_db(dataset) as db:
        serial = sum(db.execute(sql).simulated_seconds for sql in batch)
        db.reset_clock()
        results = db.execute_batch(batch)
    batched = results[0].simulated_seconds
    assert all(
        result.simulated_seconds == batched for result in results
    )
    assert batched < serial


# -------------------------------------------------------- explain_batch
def test_explain_batch_shows_one_scan(dataset):
    batch = [
        nlq_call_sql("x", DIMS),
        "SELECT sum(x1), count(*) FROM x",
        "SELECT avg(x2) FROM x GROUP BY i MOD 3 ORDER BY 1",
    ]
    with _fresh_db(dataset) as db:
        plan = db.explain_batch(batch)
    assert plan.root.operator == "batch"
    assert len(plan.scans) == 1
    shared = plan.find("shared-scan")
    assert len(shared) == 2
    assert all(node.estimated_seconds == 0.0 for node in shared)
    text = "\n".join(plan.render())
    assert "scan consolidation" in text
    assert "shared-scan" in text


def test_explain_batch_refused_shows_per_statement_scans(dataset):
    with _fresh_db(dataset) as db:
        db.execute("CREATE TABLE other (i INTEGER PRIMARY KEY, v FLOAT)")
        plan = db.explain_batch(
            ["SELECT count(*) FROM x", "SELECT sum(v) FROM other"]
        )
    assert len(plan.scans) == 2
    assert not plan.find("shared-scan")


def test_explain_analyze_batch_attaches_trace(dataset):
    batch = [nlq_call_sql("x", DIMS), "SELECT count(*) FROM x"]
    with _fresh_db(dataset) as db:
        plan = db.explain_batch(batch, analyze=True)
    assert plan.analyze
    assert plan.trace is not None
    assert plan.metrics is not None
    assert plan.metrics.statements_batched == 2


# -------------------------------------------------- summary-cache riders
def test_cached_statement_drops_out_of_the_shared_scan(dataset):
    sql = nlq_call_sql("x", DIMS)
    with _fresh_db(dataset) as db:
        db.summary_cache_enabled = True
        warm = db.execute(sql).rows  # populate the cache
        results = db.execute_batch([sql, "SELECT count(*) FROM x"])
        metrics = results[0].metrics
        serial_count = db.execute("SELECT count(*) FROM x").rows
    assert results[0].rows == warm
    assert results[1].rows == serial_count
    # The nlq statement was served from cache (its own scan saved), and
    # the count still consolidated — nothing double-counted.
    assert metrics.scans_saved >= 1
    assert metrics.summary_cache_hits >= 1
