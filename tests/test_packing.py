"""String packing of vectors and (n, L, Q) payloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.packing import (
    pack_summary,
    pack_vector,
    payload_value_count,
    unpack_summary,
    unpack_vector,
    vector_char_cost,
)
from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import PackingError

finite = st.floats(-1e12, 1e12, allow_nan=False)


class TestVectorPacking:
    def test_round_trip(self):
        values = np.asarray([1.5, -2.25, 0.0, 1e-9])
        assert np.array_equal(unpack_vector(pack_vector(values)), values)

    def test_exact_floats(self):
        values = np.asarray([0.1, 1 / 3, np.pi])
        assert np.array_equal(unpack_vector(pack_vector(values)), values)

    def test_length_check(self):
        with pytest.raises(PackingError, match="entries"):
            unpack_vector("1.0,2.0", expected_d=3)

    def test_unpack_determines_d(self):
        assert unpack_vector("1,2,3").shape == (3,)

    def test_malformed(self):
        with pytest.raises(PackingError):
            unpack_vector("1.0,abc")
        with pytest.raises(PackingError):
            unpack_vector("")
        with pytest.raises(PackingError):
            unpack_vector(12.5)  # type: ignore[arg-type]

    def test_char_cost_scales_with_d(self):
        assert vector_char_cost(64) == 8 * vector_char_cost(8)

    @given(arrays(np.float64, st.integers(1, 32), elements=finite))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, values):
        assert np.array_equal(unpack_vector(pack_vector(values)), values)


class TestSummaryPacking:
    @pytest.mark.parametrize("matrix_type", list(MatrixType))
    def test_round_trip(self, matrix_type):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(25, 4))
        stats = SummaryStatistics.from_matrix(X, matrix_type)
        recovered = unpack_summary(pack_summary(stats))
        assert recovered.matrix_type is matrix_type
        assert recovered.allclose(stats)
        assert np.array_equal(recovered.mins, stats.mins)
        assert np.array_equal(recovered.maxs, stats.maxs)

    def test_round_trip_without_extrema(self):
        stats = SummaryStatistics(2.0, np.ones(2), np.eye(2), MatrixType.FULL)
        recovered = unpack_summary(pack_summary(stats))
        assert recovered.mins is None and recovered.maxs is None
        assert recovered.allclose(stats)

    def test_triangular_payload_restores_symmetry(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 3))
        stats = SummaryStatistics.from_matrix(X, MatrixType.TRIANGULAR)
        recovered = unpack_summary(pack_summary(stats))
        assert np.allclose(recovered.Q, recovered.Q.T)
        assert np.allclose(recovered.Q, X.T @ X)

    def test_malformed_payloads(self):
        with pytest.raises(PackingError, match="sections"):
            unpack_summary("1;2;3")
        with pytest.raises(PackingError, match="header"):
            unpack_summary("x;0;1.0;1.0;1.0")
        with pytest.raises(PackingError):
            unpack_summary(None)  # type: ignore[arg-type]

    def test_wrong_row_count_detected(self):
        stats = SummaryStatistics(
            2.0, np.ones(2), np.eye(2), MatrixType.FULL
        )
        payload = pack_summary(stats)
        sections = payload.split(";")
        sections[4] = sections[4].split("|")[0]  # drop a Q row
        with pytest.raises(PackingError, match="rows"):
            unpack_summary(";".join(sections))

    def test_payload_value_count(self):
        assert payload_value_count(4, MatrixType.DIAGONAL) == 3 + 4 + 4 + 8
        assert payload_value_count(4, MatrixType.TRIANGULAR) == 3 + 4 + 10 + 8
        assert payload_value_count(4, MatrixType.FULL) == 3 + 4 + 16 + 8

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 20), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
        ),
        st.sampled_from(list(MatrixType)),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, X, matrix_type):
        stats = SummaryStatistics.from_matrix(X, matrix_type)
        recovered = unpack_summary(pack_summary(stats))
        assert recovered.allclose(stats, rtol=0)  # bit-exact via repr
