"""K-means clustering on per-cluster summary statistics."""

import numpy as np
import pytest

from repro.core.models.kmeans import KMeansModel
from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import ModelError


@pytest.fixture
def blobs():
    """Three well-separated clusters."""
    rng = np.random.default_rng(41)
    centers = np.asarray([[0.0, 0.0], [20.0, 0.0], [0.0, 20.0]])
    X = np.vstack(
        [center + rng.normal(scale=1.0, size=(100, 2)) for center in centers]
    )
    return X, centers


class TestFitMatrix:
    def test_recovers_centers(self, blobs):
        X, centers = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        # Match each true center to its nearest recovered centroid.
        for center in centers:
            nearest = np.min(
                np.linalg.norm(model.centroids - center, axis=1)
            )
            assert nearest < 1.0

    def test_weights_sum_to_one(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        assert model.weights.sum() == pytest.approx(1.0)
        assert np.allclose(model.weights, 1 / 3, atol=0.05)

    def test_radii_match_cluster_variances(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        labels = model.assign(X)
        for j in range(1, 4):
            members = X[labels == j]
            assert np.allclose(
                model.radii[j - 1], members.var(axis=0), rtol=0.05
            )

    def test_inertia_decreases_with_k(self, blobs):
        X, _ = blobs
        coarse = KMeansModel.fit_matrix(X, k=2, seed=0)
        fine = KMeansModel.fit_matrix(X, k=3, seed=0)
        assert fine.within_cluster_sse(X) < coarse.within_cluster_sse(X)

    def test_k_bounds(self, blobs):
        X, _ = blobs
        with pytest.raises(ModelError):
            KMeansModel.fit_matrix(X, k=0)
        with pytest.raises(ModelError):
            KMeansModel.fit_matrix(X, k=len(X) + 1)

    def test_k_equals_one(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=1)
        assert np.allclose(model.centroids[0], X.mean(axis=0), atol=1e-6)


class TestFromGroupSummaries:
    def test_equations(self, blobs):
        """C_j = L_j/N_j, R_j = Q_j/N_j − (L_j/N_j)², W_j = N_j/n."""
        X, _ = blobs
        labels = KMeansModel.fit_matrix(X, k=3, seed=0).assign(X)
        groups = {
            j: SummaryStatistics.from_matrix(X[labels == j], MatrixType.DIAGONAL)
            for j in (1, 2, 3)
        }
        model = KMeansModel.from_group_summaries(groups, k=3)
        for j in (1, 2, 3):
            members = X[labels == j]
            assert np.allclose(model.centroids[j - 1], members.mean(axis=0))
            assert np.allclose(model.radii[j - 1], members.var(axis=0))
            assert model.weights[j - 1] == pytest.approx(len(members) / len(X))

    def test_empty_cluster_keeps_previous_centroid(self, blobs):
        X, _ = blobs
        groups = {1: SummaryStatistics.from_matrix(X, MatrixType.DIAGONAL)}
        previous = np.asarray([[0.0, 0.0], [99.0, 99.0]])
        model = KMeansModel.from_group_summaries(groups, k=2, previous_centroids=previous)
        assert np.array_equal(model.centroids[1], previous[1])
        assert model.weights[1] == 0.0

    def test_empty_cluster_without_fallback_rejected(self, blobs):
        X, _ = blobs
        groups = {1: SummaryStatistics.from_matrix(X, MatrixType.DIAGONAL)}
        with pytest.raises(ModelError, match="empty"):
            KMeansModel.from_group_summaries(groups, k=2)

    def test_no_groups_no_fallback(self):
        with pytest.raises(ModelError):
            KMeansModel.from_group_summaries({}, k=2)


class TestIncremental:
    def test_one_pass_reasonable(self, blobs):
        """The incremental one-scan variant gets a good (if suboptimal)
        solution, as the paper's discussion assumes."""
        X, _ = blobs
        rng = np.random.default_rng(0)
        shuffled = X[rng.permutation(len(X))]
        full = KMeansModel.fit_matrix(shuffled, k=3, seed=0)
        one_pass = KMeansModel.fit_incremental(shuffled, k=3, seed=0)
        assert one_pass.iterations == 1
        assert one_pass.within_cluster_sse(shuffled) < 3.0 * full.within_cluster_sse(
            shuffled
        )

    def test_weights_normalized(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_incremental(X, k=3, seed=1)
        assert model.weights.sum() == pytest.approx(1.0)


class TestScoring:
    def test_distances_shape_and_nonnegative(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        distances = model.distances(X)
        assert distances.shape == (len(X), 3)
        assert np.all(distances >= 0)

    def test_assign_is_one_based_argmin(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        labels = model.assign(X)
        assert labels.min() >= 1 and labels.max() <= 3
        assert np.array_equal(labels, np.argmin(model.distances(X), axis=1) + 1)

    def test_assignment_accuracy(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=3, seed=0)
        labels = model.assign(X)
        # Well-separated blobs: each block of 100 rows gets one label.
        for start in (0, 100, 200):
            block = labels[start : start + 100]
            assert (block == np.bincount(block).argmax()).mean() > 0.95

    def test_dimension_check(self, blobs):
        X, _ = blobs
        model = KMeansModel.fit_matrix(X, k=2, seed=0)
        with pytest.raises(ModelError):
            model.distances(np.zeros((2, 5)))
