"""The benchmark harness itself (not the full sweeps)."""

import pytest

from repro.bench.calibration import within_factor
from repro.bench.harness import (
    ExperimentResult,
    format_table,
    nlq_sql_seconds,
    nlq_udf_seconds,
    run_experiment,
    scaled_dataset,
)
from repro.core.summary import MatrixType


class TestScaledDataset:
    def test_nominal_vs_physical(self):
        data = scaled_dataset(100_000.0, 4, physical_rows=100)
        assert data.db.table("x").row_count == 100
        assert data.db.table("x").nominal_rows == pytest.approx(100_000.0)
        assert data.nominal_rows == 100_000.0

    def test_physical_capped_at_n(self):
        data = scaled_dataset(50.0, 2, physical_rows=320)
        assert data.db.table("x").row_count == 50

    def test_clock_reset_after_load(self):
        data = scaled_dataset(10_000.0, 3)
        assert data.db.simulated_time == 0.0

    def test_udfs_ready(self):
        data = scaled_dataset(1_000.0, 2)
        assert data.db.catalog.aggregate_udf("nlq_tri") is not None


class TestTimedActions:
    def test_udf_seconds_scale_invariant(self):
        """Simulated time must not depend on the physical sample size."""
        small = nlq_udf_seconds(scaled_dataset(200_000.0, 4, physical_rows=64))
        large = nlq_udf_seconds(scaled_dataset(200_000.0, 4, physical_rows=512))
        assert small == pytest.approx(large, rel=1e-9)

    def test_sql_seconds_scale_invariant(self):
        small = nlq_sql_seconds(scaled_dataset(200_000.0, 4, physical_rows=64))
        large = nlq_sql_seconds(scaled_dataset(200_000.0, 4, physical_rows=512))
        assert small == pytest.approx(large, rel=1e-9)

    def test_matrix_type_ordering(self):
        data = scaled_dataset(400_000.0, 8)
        diag = nlq_udf_seconds(data, MatrixType.DIAGONAL)
        tri = nlq_udf_seconds(data, MatrixType.TRIANGULAR)
        full = nlq_udf_seconds(data, MatrixType.FULL)
        assert diag < tri < full


class TestHarnessPlumbing:
    def test_format_table(self):
        result = ExperimentResult(
            "t", "demo", ["a", "b"], [(1, 2.5), (10, 20.0)], notes="hi"
        )
        text = format_table(result)
        assert "demo" in text and "2.5" in text and "note: hi" in text

    def test_column_accessor(self):
        result = ExperimentResult("t", "demo", ["a", "b"], [(1, 2), (3, 4)])
        assert result.column("b") == [2, 4]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table99")

    def test_within_factor(self):
        assert within_factor(10, 10, 1.1)
        assert within_factor(5, 10, 2.0)
        assert not within_factor(4, 10, 2.0)
        assert not within_factor(0, 10, 2.0)

    def test_registry_complete(self):
        from repro.bench.experiments import EXPERIMENTS

        expected = {f"table{i}" for i in range(1, 7)} | {
            f"figure{i}" for i in range(1, 7)
        }
        assert set(EXPERIMENTS) == expected


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "figure6" in output

    def test_run_with_csv(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "table3", "--csv", str(tmp_path)]) == 0
        csv_text = (tmp_path / "table3.csv").read_text()
        assert csv_text.splitlines()[0].startswith("d,correlation")
        assert "table3" in capsys.readouterr().out
