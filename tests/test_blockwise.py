"""Block-partitioned (n, L, Q) for d beyond MAX_d (Table 6)."""

import numpy as np
import pytest

from repro.core.blockwise import (
    NlqBlockUdf,
    blockwise_call_count,
    blockwise_sql,
    compute_nlq_blockwise,
    dimension_blocks,
)
from repro.core.summary import SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import UdfArgumentError


def make_db(n=60, d=10, amps=3, seed=9):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    db = Database(amps=amps)
    db.create_table("x", dataset_schema(d))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = X[:, index]
    db.load_columns("x", columns)
    db.register_udf(NlqBlockUdf())
    return db, X


class TestPartitioning:
    def test_dimension_blocks(self):
        blocks = dimension_blocks(10, block=4)
        assert [list(b) for b in blocks] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9],
        ]

    def test_call_counts_match_paper(self):
        assert blockwise_call_count(64) == 1
        assert blockwise_call_count(128) == 4
        assert blockwise_call_count(256) == 16
        assert blockwise_call_count(512) == 64
        assert blockwise_call_count(1024) == 256

    def test_invalid_d(self):
        with pytest.raises(UdfArgumentError):
            dimension_blocks(0)

    def test_sql_is_single_statement(self):
        sql = blockwise_sql("x", dimension_names(10), block=4)
        assert sql.count("SELECT") == 1
        assert sql.count("nlq_block(") == 9


class TestCorrectness:
    def test_assembles_full_summary(self):
        db, X = make_db(d=10)
        stats = compute_nlq_blockwise(db, "x", dimension_names(10), block=4)
        reference = SummaryStatistics.from_matrix(X)
        assert stats.n == reference.n
        assert np.allclose(stats.L, reference.L)
        assert np.allclose(stats.Q, reference.Q)

    def test_single_block_case(self):
        db, X = make_db(d=3)
        stats = compute_nlq_blockwise(db, "x", dimension_names(3), block=64)
        assert stats.allclose(SummaryStatistics.from_matrix(X))

    def test_uneven_blocks(self):
        db, X = make_db(d=7)
        stats = compute_nlq_blockwise(db, "x", dimension_names(7), block=3)
        assert np.allclose(stats.Q, X.T @ X)

    def test_empty_table(self):
        db = Database(amps=2)
        db.create_table("e", dataset_schema(5))
        db.register_udf(NlqBlockUdf())
        stats = compute_nlq_blockwise(db, "e", dimension_names(5), block=2)
        assert stats.n == 0


class TestBlockUdf:
    def test_row_block_equivalence(self):
        rng = np.random.default_rng(2)
        Xa, Xb = rng.normal(size=(20, 3)), rng.normal(size=(20, 2))
        udf = NlqBlockUdf()
        row_state = udf.initialize()
        for a_row, b_row in zip(Xa, Xb):
            row_state = udf.accumulate(
                row_state, (3, 2, *a_row.tolist(), *b_row.tolist())
            )
        block = np.column_stack([np.full(20, 3.0), np.full(20, 2.0), Xa, Xb])
        block_state = udf.accumulate_block(udf.initialize(), block)
        assert np.allclose(row_state.Qab, block_state.Qab)
        assert np.allclose(row_state.La, block_state.La)
        assert row_state.n == block_state.n

    def test_bad_arity(self):
        udf = NlqBlockUdf()
        with pytest.raises(UdfArgumentError):
            udf.accumulate(udf.initialize(), (2, 2, 1.0, 2.0, 3.0))

    def test_block_too_large(self):
        udf = NlqBlockUdf(max_d=2)
        with pytest.raises(UdfArgumentError, match="MAX_d"):
            udf.accumulate(udf.initialize(), (3, 1, 1.0, 2.0, 3.0, 4.0))

    def test_empty_finalize(self):
        udf = NlqBlockUdf()
        assert udf.finalize(udf.initialize()) is None


class TestTiming:
    def test_time_proportional_to_calls(self):
        """The Table 6 claim at miniature scale: one statement, cost
        proportional to the number of block calls."""
        db, _X = make_db(d=8)
        db.reset_clock()
        db.execute(blockwise_sql("x", dimension_names(8), block=8))  # 1 call
        one_call = db.simulated_time
        db.reset_clock()
        db.execute(blockwise_sql("x", dimension_names(8), block=4))  # 4 calls
        four_calls = db.simulated_time
        assert 2.5 < four_calls / one_call < 5.5
