"""The parallel partition-execution engine and its invariants.

Covers the PartitionEngine itself (deterministic result order, error
propagation), the repo's stated aggregation invariants — ``merge(split)
== whole`` for every registered aggregate UDF and builtin, parallel
execution bit-identical to serial — DISTINCT partial-state merging, and
the wall-clock QueryMetrics record.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nlq_udf import (
    NLQ_UDF_NAMES,
    compute_nlq_udf_groups,
    register_nlq_udfs,
)
from repro.core.packing import unpack_summary
from repro.core.summary import MatrixType
from repro.dbms.database import Database
from repro.dbms.engine import PartitionEngine
from repro.dbms.functions import AGGREGATE_BUILTINS
from repro.dbms.metrics import QueryMetrics
from repro.dbms.schema import dataset_schema, dimension_names
from repro.errors import PartitionExecutionError


# ---------------------------------------------------------------- the engine
class TestPartitionEngine:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            PartitionEngine(0)

    def test_serial_runs_inline(self):
        thread_names = []
        engine = PartitionEngine(1)
        results = engine.map(
            [lambda i=i: (thread_names.append(threading.current_thread().name), i)[1]
             for i in range(5)]
        )
        assert results == [0, 1, 2, 3, 4]
        assert all(name == threading.main_thread().name for name in thread_names)

    def test_parallel_results_in_submission_order(self):
        engine = PartitionEngine(4)

        def make(index: int, delay: float):
            def task():
                time.sleep(delay)
                return index
            return task

        # Later tasks finish first; results must still come back ordered.
        tasks = [make(i, delay=(8 - i) * 0.005) for i in range(8)]
        assert engine.map(tasks) == list(range(8))

    def test_parallel_uses_worker_threads(self):
        engine = PartitionEngine(4)
        names = engine.map(
            [lambda: threading.current_thread().name for _ in range(8)]
        )
        assert all(name.startswith("repro-amp") for name in names)

    def test_task_errors_propagate_serial(self):
        # Serial execution re-raises the task's error as-is (seed
        # behaviour — typed SQL errors pass through untouched).
        engine = PartitionEngine(1)

        def boom():
            raise RuntimeError("partition exploded")

        with pytest.raises(RuntimeError, match="partition exploded"):
            engine.map([lambda: 1, boom, lambda: 3])

    def test_task_errors_aggregate_in_parallel(self):
        # Parallel execution wraps failures in PartitionExecutionError
        # with per-partition attribution; the deterministic first error
        # (lowest failing partition) is both first_error and __cause__.
        engine = PartitionEngine(4)

        def boom():
            raise RuntimeError("partition exploded")

        with pytest.raises(PartitionExecutionError) as excinfo:
            engine.map([lambda: 1, boom, lambda: 3])
        error = excinfo.value
        assert error.partitions == [1]
        assert isinstance(error.first_error, RuntimeError)
        assert str(error.first_error) == "partition exploded"
        assert error.__cause__ is error.first_error
        engine.close()


# ------------------------------------------------- merge(split) == whole
def _accumulate_all(aggregate, rows):
    state = aggregate.initialize()
    for args in rows:
        state = aggregate.accumulate(state, args)
    return state


def _split_merge_finalize(aggregate, rows, partition_count):
    """Round-robin rows over partitions, accumulate partials, merge in
    partition order, finalize."""
    partials = []
    for p in range(partition_count):
        partials.append(_accumulate_all(aggregate, rows[p::partition_count]))
    merged = partials[0]
    for partial in partials[1:]:
        merged = aggregate.merge(merged, partial)
    return aggregate.finalize(merged)


finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _close(left, right):
    if left is None or right is None:
        return left == right
    # rel=1e-7, not 1e-9: variance-style aggregates over large near-equal
    # values (e.g. three floats around 4.2e5) lose ~1e-9 relative digits
    # to catastrophic cancellation depending on the split, which is float
    # associativity, not a merge bug — real merge bugs are off by orders
    # of magnitude.
    return left == pytest.approx(right, rel=1e-7, abs=1e-9)


class TestMergeSplitInvariant:
    """merge over any 1/2/20-way split must equal whole-data aggregation."""

    @pytest.mark.parametrize("name", sorted(AGGREGATE_BUILTINS))
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(finite_floats, min_size=1, max_size=60))
    def test_builtin_aggregates(self, name, values):
        factory = AGGREGATE_BUILTINS[name]
        two_arg = factory().arity == 2
        if two_arg:
            rows = [(v, float(i % 7) - 3.0) for i, v in enumerate(values)]
        else:
            rows = [(v,) for v in values]
        whole = factory()
        expected = whole.finalize(_accumulate_all(whole, rows))
        for partition_count in (1, 2, 20):
            aggregate = factory()
            got = _split_merge_finalize(aggregate, rows, partition_count)
            assert _close(got, expected), (name, partition_count)

    @pytest.mark.parametrize("udf_name", sorted(NLQ_UDF_NAMES.values()))
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 80),
        d=st.integers(1, 6),
    )
    def test_every_registered_aggregate_udf(self, udf_name, seed, n, d):
        udfs = register_nlq_udfs(Database(amps=4))
        rng = np.random.default_rng(seed)
        X = rng.normal(0.0, 10.0, size=(n, d))
        if udf_name.startswith("nlq_str"):
            rows = [(",".join(repr(float(v)) for v in x),) for x in X]
        else:
            rows = [(d, *map(float, x)) for x in X]

        whole_udf = udfs[udf_name]
        expected = unpack_summary(
            whole_udf.finalize(_accumulate_all(whole_udf, rows))
        )
        for partition_count in (1, 2, 20):
            payload = _split_merge_finalize(udfs[udf_name], rows, partition_count)
            got = unpack_summary(payload)
            assert got.n == expected.n
            assert np.allclose(got.L, expected.L, rtol=1e-9, atol=1e-9)
            assert np.allclose(got.Q, expected.Q, rtol=1e-9, atol=1e-9)
            assert np.array_equal(got.mins, expected.mins)
            assert np.array_equal(got.maxs, expected.maxs)


# -------------------------------------------- parallel == serial, bitwise
def _loaded_nlq_db(n: int = 400, d: int = 4, amps: int = 20) -> Database:
    db = Database(amps=amps)
    rng = np.random.default_rng(11)
    db.create_table("x", dataset_schema(d))
    columns = {"i": np.arange(1, n + 1)}
    for index, name in enumerate(dimension_names(d)):
        columns[name] = rng.normal(25.0, 8.0, n)
    db.load_columns("x", columns)
    register_nlq_udfs(db)
    return db


def _payload(db: Database, sql: str):
    return db.execute(sql).scalar()


class TestParallelSerialBitIdentity:
    """executor_workers > 1 must not change a single output bit."""

    @pytest.mark.parametrize(
        "sql",
        [
            # vector path, grand aggregate (the paper's one-scan nLQ)
            "SELECT nlq_tri(4, x1, x2, x3, x4) FROM x",
            "SELECT nlq_full(4, x1, x2, x3, x4) FROM x",
            # row path: string-packed variant has no block support
            "SELECT nlq_str_tri(x1 || ',' || x2 || ',' || x3 || ',' || x4) FROM x",
            # row path: WHERE disables the vector fast path
            "SELECT nlq_diag(4, x1, x2, x3, x4) FROM x WHERE i > 37",
        ],
    )
    def test_nlq_payloads_bit_identical(self, sql):
        db = _loaded_nlq_db()
        db.executor_workers = 1
        serial = _payload(db, sql)
        db.executor_workers = 4
        parallel = _payload(db, sql)
        assert isinstance(serial, str)
        assert parallel == serial  # exact packed-string equality

    def test_groupby_submodels_bit_identical(self):
        db = _loaded_nlq_db()
        sql = (
            "SELECT i MOD 5 AS grp, nlq_diag(4, x1, x2, x3, x4) FROM x "
            "GROUP BY i MOD 5 ORDER BY grp"
        )
        db.executor_workers = 1
        serial = db.execute(sql).rows
        db.executor_workers = 4
        parallel = db.execute(sql).rows
        assert parallel == serial

    def test_groupby_submodels_decode_identically(self):
        db = _loaded_nlq_db()
        db.executor_workers = 1
        serial = compute_nlq_udf_groups(
            db, "x", dimension_names(4), "i MOD 3", MatrixType.DIAGONAL
        )
        db.executor_workers = 4
        parallel = compute_nlq_udf_groups(
            db, "x", dimension_names(4), "i MOD 3", MatrixType.DIAGONAL
        )
        assert set(serial) == set(parallel)
        for key, stats in serial.items():
            assert np.array_equal(stats.Q, parallel[key].Q)
            assert np.array_equal(stats.L, parallel[key].L)

    def test_builtin_aggregates_bit_identical(self):
        db = _loaded_nlq_db()
        sql = (
            "SELECT sum(x1), avg(x2), min(x3), max(x4), count(*), "
            "var_pop(x1), corr(x1, x2) FROM x"
        )
        db.executor_workers = 1
        serial = db.execute(sql).rows
        db.executor_workers = 4
        parallel = db.execute(sql).rows
        assert parallel == serial

    def test_group_key_order_matches_serial(self):
        """No ORDER BY: group keys appear in scan-first-appearance
        order, which must survive parallel execution."""
        db = _loaded_nlq_db()
        sql = "SELECT i MOD 7, count(*) FROM x GROUP BY i MOD 7"
        db.executor_workers = 1
        serial = db.execute(sql).rows
        db.executor_workers = 4
        parallel = db.execute(sql).rows
        assert parallel == serial


# ------------------------------------------------------ DISTINCT merging
class TestDistinctMerge:
    """DISTINCT aggregates now merge partial states across partitions."""

    @pytest.fixture
    def dup_db(self) -> Database:
        db = Database(amps=8)
        db.execute(
            "CREATE TABLE s (id VARCHAR PRIMARY KEY, grp INTEGER, v FLOAT)"
        )
        # String PKs hash-route rows, spreading duplicate v values
        # across many partitions.
        rows = [
            (f"row-{i}", i % 3, float(i % 5)) for i in range(60)
        ]
        db.insert_rows("s", rows)
        return db

    @pytest.mark.parametrize("workers", [1, 4])
    def test_count_distinct(self, dup_db, workers):
        dup_db.executor_workers = workers
        assert dup_db.execute("SELECT count(DISTINCT v) FROM s").scalar() == 5

    @pytest.mark.parametrize("workers", [1, 4])
    def test_sum_and_avg_distinct(self, dup_db, workers):
        dup_db.executor_workers = workers
        row = dup_db.execute(
            "SELECT sum(DISTINCT v), avg(DISTINCT v) FROM s"
        ).first()
        assert row == (10.0, 2.0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_distinct_with_group_by(self, dup_db, workers):
        dup_db.executor_workers = workers
        result = dup_db.execute(
            "SELECT grp, count(DISTINCT v), count(*) FROM s "
            "GROUP BY grp ORDER BY grp"
        )
        assert result.rows == [(0, 5, 20), (1, 5, 20), (2, 5, 20)]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_distinct_mixed_with_plain_aggregates(self, dup_db, workers):
        dup_db.executor_workers = workers
        row = dup_db.execute(
            "SELECT count(DISTINCT v), sum(v), count(*) FROM s"
        ).first()
        assert row == (5, sum(float(i % 5) for i in range(60)), 60)

    def test_distinct_parallel_matches_serial(self, dup_db):
        sql = "SELECT grp, sum(DISTINCT v) FROM s GROUP BY grp ORDER BY grp"
        dup_db.executor_workers = 1
        serial = dup_db.execute(sql).rows
        dup_db.executor_workers = 4
        assert dup_db.execute(sql).rows == serial


# -------------------------------------------------------------- metrics
class TestQueryMetrics:
    def test_attached_to_every_result(self, db):
        db.execute("CREATE TABLE t (v FLOAT)")
        result = db.execute("SELECT * FROM t")
        assert isinstance(result.metrics, QueryMetrics)
        assert result.metrics.workers == 1
        assert result.metrics.total_seconds >= 0.0

    def test_aggregate_stages_populated(self):
        db = _loaded_nlq_db(n=300)
        result = db.execute("SELECT nlq_tri(4, x1, x2, x3, x4) FROM x")
        metrics = result.metrics
        assert metrics.rows_processed == 300
        assert metrics.partitions_processed == 20
        assert metrics.parallel_tasks == 20
        assert metrics.groups == 1
        assert metrics.total_seconds > 0.0
        assert set(metrics.stage_seconds) == {
            "scan", "accumulate", "merge", "finalize",
        }
        assert all(value >= 0.0 for value in metrics.stage_seconds.values())

    def test_where_clause_counts_folded_rows_only(self):
        db = _loaded_nlq_db(n=200)
        result = db.execute("SELECT count(*) FROM x WHERE i <= 50")
        assert result.scalar() == 50
        assert result.metrics.rows_processed == 50

    def test_groupby_group_count(self):
        db = _loaded_nlq_db(n=100)
        result = db.execute("SELECT i MOD 4, count(*) FROM x GROUP BY i MOD 4")
        assert result.metrics.groups == 4

    def test_parallel_worker_count_recorded(self):
        db = _loaded_nlq_db(n=100)
        db.executor_workers = 3
        result = db.execute("SELECT sum(x1) FROM x")
        assert result.metrics.workers == 3

    def test_as_dict_round_trip(self):
        db = _loaded_nlq_db(n=50)
        metrics = db.execute("SELECT sum(x1) FROM x").metrics
        payload = metrics.as_dict()
        assert payload["rows_processed"] == 50
        assert payload["workers"] == 1
