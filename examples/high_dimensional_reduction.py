"""Dimensionality reduction at d beyond the UDF's MAX_d.

The aggregate UDF's state is sized statically for 64 dimensions (the
64 KB heap segment).  For wider data sets the paper partitions Q into
64x64 blocks, one UDF call per block, all submitted in one statement
over a single synchronized scan (Table 6).  This example runs that path
on a 150-dimensional data set, then builds PCA and maximum-likelihood
factor analysis from the assembled summary and compresses the data to
10 dimensions.

Run:  python examples/high_dimensional_reduction.py
"""

import numpy as np

from repro import WarehouseMiner
from repro.core.blockwise import blockwise_call_count
from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.models.pca import PCAModel
from repro.core.scoring.scorer import scores_as_matrix

D, K, N = 150, 10, 4_000

miner = WarehouseMiner()
miner.load_synthetic("wide", n=N, d=D, k=8, seed=31)
print(f"data set: n={N}, d={D} "
      f"(> MAX_d=64, so Q needs {blockwise_call_count(D)} block calls)")

# summarize() switches to the blockwise route automatically above MAX_d.
miner.db.reset_clock()
stats = miner.summarize("wide")
print(f"blockwise (n, L, Q) in one statement: "
      f"{miner.db.simulated_time:.1f} simulated seconds")

# --- PCA ----------------------------------------------------------------------
pca = PCAModel.from_summary(stats, k=K)
explained = pca.explained_variance_ratio().sum()
print(f"\nPCA: {K} of {D} components capture {explained:.1%} of the variance")
print(f"orthogonality error: {pca.orthogonality_error():.2e}")

# --- factor analysis ------------------------------------------------------------
fa = FactorAnalysisModel.from_summary(stats, k=K, max_iterations=80)
X = miner.db.table("wide").numeric_matrix(miner.dimensions_of("wide"))
S = stats.covariance()
fit = np.linalg.norm(fa.implied_covariance() - S) / np.linalg.norm(S)
print(f"\nML factor analysis: {fa.iterations} EM iterations, "
      f"covariance fit error {fit:.1%}")
top = np.argsort(fa.communalities())[::-1][:5]
print(f"dimensions best explained by the common factors: "
      f"{[f'x{i + 1}' for i in top]}")

# --- score: reduce the table inside the DBMS ------------------------------------
scorer = miner.scorer("wide")
scorer.store_pca(pca)
result = scorer.score_pca(K, "udf", into="wide_reduced")
reduced = scores_as_matrix(
    miner.db.execute(f"SELECT {', '.join(['i', *[f'f{j}' for j in range(1, K + 1)]])} "
                     "FROM wide_reduced"),
    K,
)
assert np.allclose(reduced, pca.transform(X), atol=1e-8)
print(f"\nreduced table 'wide_reduced': {miner.db.table('wide_reduced').row_count} "
      f"rows x {K} coordinates (was {D})")
reconstruction = pca.inverse_transform(reduced)
relative_error = np.linalg.norm(X - reconstruction) / np.linalg.norm(
    X - X.mean(axis=0)
)
print(f"reconstruction error from {K} components: {relative_error:.1%}")
