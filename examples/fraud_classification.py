"""Fraud classification from sufficient statistics.

The paper's related work cites gathering sufficient statistics for
classification from SQL databases [9]; this example shows the same
GROUP BY aggregate query that drives clustering also training two
classifiers — Gaussian Naive Bayes (diagonal Q per class) and linear
discriminant analysis (triangular Q per class) — with *one scan each*
over the labeled table.  The feature table itself is derived from
normalized account/transaction tables with the Section 3.6 dataset
builder.

Run:  python examples/fraud_classification.py
"""

import numpy as np

from repro import WarehouseMiner
from repro.core.dataset_builder import DatasetBuilder

rng = np.random.default_rng(1337)
miner = WarehouseMiner()
db = miner.db

# --- normalized sources ---------------------------------------------------------
db.execute(
    "CREATE TABLE accounts (i INTEGER PRIMARY KEY, age_days FLOAT, "
    "is_fraud INTEGER)"
)
db.execute(
    "CREATE TABLE activity (aid INTEGER PRIMARY KEY, acct INTEGER, "
    "amount FLOAT, hour FLOAT, foreign_ip INTEGER)"
)

N = 800
accounts = []
activity = []
aid = 0
for i in range(1, N + 1):
    fraud = int(rng.random() < 0.25)
    age = float(rng.uniform(2, 40)) if fraud else float(rng.uniform(30, 2000))
    accounts.append((i, age, fraud))
    for _ in range(int(rng.integers(2, 9))):
        aid += 1
        if fraud:
            amount = float(rng.gamma(6.0, 80.0))
            hour = float(rng.uniform(0, 6))         # night-time activity
            foreign = int(rng.random() < 0.7)
        else:
            amount = float(rng.gamma(3.0, 30.0))
            hour = float(rng.uniform(7, 23))
            foreign = int(rng.random() < 0.05)
        activity.append((aid, i, amount, hour, foreign))
db.insert_rows("accounts", accounts)
db.insert_rows("activity", activity)

# --- derive the labeled feature table (joins + flags + metrics) -----------------
builder = DatasetBuilder("accounts", "i")
builder.add_property("age_days", "accounts", "age_days")
builder.add_metric("total_amount", "activity", "sum", "amount", join_column="acct")
builder.add_metric("txn_count", "activity", "count", "amount", join_column="acct")
builder.add_metric("avg_hour", "activity", "avg", "hour", join_column="acct")
builder.add_flag("any_foreign", "activity", "foreign_ip = 1", join_column="acct")
builder.add_property("label", "accounts", "is_fraud")
features = builder.materialize(db, "train")
dims = [name for name in features if name != "label"]
print(f"derived labeled table 'train': {db.table('train').row_count} accounts, "
      f"features = {dims}")

# --- train both classifiers, one GROUP BY scan each -----------------------------
db.reset_clock()
nb = miner.naive_bayes("train", "label", dims)
nb_time = db.simulated_time
db.reset_clock()
lda = miner.lda("train", "label", dims)
lda_time = db.simulated_time
print(f"\nNaive Bayes trained in {nb_time:.2f} simulated s "
      f"(diagonal Q per class)")
print(f"LDA trained in {lda_time:.2f} simulated s (triangular Q per class)")

print("\nper-class means (fraud vs legit):")
for index, name in enumerate(dims):
    legit = nb.means[nb.classes.index(0)][index]
    fraud = nb.means[nb.classes.index(1)][index]
    print(f"  {name:>13}: legit {legit:9.1f}   fraud {fraud:9.1f}")

# --- evaluate on fresh accounts --------------------------------------------------
X = db.table("train").numeric_matrix(dims)
labels = np.asarray(db.table("train").column_values("label"), dtype=int)
print(f"\ntraining accuracy: NB {nb.accuracy(X, labels):.1%}, "
      f"LDA {lda.accuracy(X, labels):.1%}")

proba = nb.predict_proba(X)
fraud_column = nb.classes.index(1)
suspicious = np.argsort(proba[:, fraud_column])[::-1][:5]
print("\nhighest fraud posteriors:")
ids = db.table("train").column_values("i")
for row in suspicious:
    print(f"  account {ids[row]:4d}: P(fraud) = {proba[row, fraud_column]:.3f} "
          f"(truth: {'fraud' if labels[row] else 'legit'})")

agreement = np.mean(nb.predict(X) == lda.predict(X))
print(f"\nNB/LDA decision agreement: {agreement:.1%}")

# --- score inside the DBMS and evaluate with SQL ---------------------------------
from repro.core.validation import classification_accuracy, confusion_matrix

scorer = miner.scorer("train", dims)
scorer.store_naive_bayes(nb)
scorer.score_naive_bayes(nb, into="predictions")

db.execute("CREATE TABLE truth (i INTEGER PRIMARY KEY, label INTEGER)")
db.execute("INSERT INTO truth SELECT i, cast_int(label) FROM train")
matrix = confusion_matrix(db, "predictions", "truth", prediction_column="label")
print("\nin-DBMS confusion matrix {(truth, predicted): count}:")
for key in sorted(matrix):
    print(f"  {key}: {matrix[key]}")
print(f"in-DBMS scoring accuracy: {classification_accuracy(matrix):.1%}")
print(f"total simulated DBMS time: {db.simulated_time:.2f}s")
