"""In-DBMS analytics vs. export-and-analyze: the paper's headline result.

Compares four routes to the same correlation model on the same data:

  1. plain SQL queries inside the DBMS (the 1 + d + d² "long" query),
  2. the aggregate UDF inside the DBMS (one scan, list passing),
  3. the aggregate UDF with string packing (the constrained variant),
  4. exporting the table via ODBC and scanning it with the external
     C++-style workstation tool.

All four produce numerically identical summaries; the simulated times
show why the paper concludes export times alone can rule out external
analysis.  The data set is stored at a reduced physical size but costed
at the nominal scale (see DESIGN.md, timing methodology).

Run:  python examples/in_dbms_vs_export.py
"""

import tempfile
from pathlib import Path

from repro.bench.harness import scaled_dataset
from repro.core.models.correlation import CorrelationModel
from repro.core.nlq_udf import compute_nlq_udf, nlq_call_sql
from repro.core.sqlgen import NlqSqlGenerator
from repro.external.cpp_tool import CppAnalysisTool
from repro.external.workstation import model_build_seconds
from repro.odbc.export import OdbcExporter

N_NOMINAL = 500_000
D = 32

data = scaled_dataset(N_NOMINAL, D, physical_rows=1000)
db, dims = data.db, data.dimensions
print(f"data set: n={N_NOMINAL:,} (nominal), d={D}\n")

results = {}

# 1. plain SQL
generator = NlqSqlGenerator("x", dims)
sql_stats = generator.compute(db)
results["SQL (long query)"] = db.execute(
    generator.long_query_sql()
).simulated_seconds

# 2. aggregate UDF, list passing
udf_stats = compute_nlq_udf(db, "x", dims)
results["UDF (list)"] = db.execute(nlq_call_sql("x", dims)).simulated_seconds

# 3. aggregate UDF, string packing
results["UDF (string)"] = db.execute(
    nlq_call_sql("x", dims, passing="string")
).simulated_seconds

# 4. export + external tool
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "x.csv"
    export = OdbcExporter().export_table(db, "x", path)
    scale = data.nominal_rows / db.table("x").row_count
    scan = CppAnalysisTool().compute_nlq(path, columns=dims, row_scale=scale)
results["C++ scan (after export)"] = scan.simulated_seconds
results["  ...the ODBC export itself"] = export.simulated_seconds

# All summaries agree exactly.
assert sql_stats.allclose(udf_stats)
assert sql_stats.allclose(scan.stats, rtol=1e-9)
model = CorrelationModel.from_summary(udf_stats)
build = model_build_seconds("correlation", D)

print(f"{'route':<28}{'simulated seconds':>18}")
print("-" * 46)
for label, seconds in results.items():
    print(f"{label:<28}{seconds:>18.1f}")
print("-" * 46)
print(f"{'model build from (n, L, Q)':<28}{build:>18.1f}")
print(
    f"\nexport alone costs "
    f"{results['  ...the ODBC export itself'] / results['UDF (list)']:.0f}x "
    "the in-DBMS UDF — the paper's argument in one number."
)
print(f"correlation matrix is {model.d}x{model.d}; all routes agreed exactly.")
