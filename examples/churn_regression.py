"""Churn-spend regression with a train/test workflow.

Demonstrates the paper's "standard train and test approach" (Section
3.5): the model is built from one scan over the training table, stored
in BETA, and applied to a *new* table with the scoring UDF — all inside
the DBMS.  Also shows step-wise feature selection running on the
summary alone: zero additional scans.

Run:  python examples/churn_regression.py
"""

import numpy as np

from repro import WarehouseMiner
from repro.core.models.regression import stepwise_select
from repro.core.scoring.scorer import scores_as_matrix
from repro.core.summary import AugmentedSummary

rng = np.random.default_rng(404)
miner = WarehouseMiner()
db = miner.db


def make_customer_table(name: str, n: int) -> np.ndarray:
    """Customer features -> next-quarter spend with a known structure:
    only three of the six features actually matter."""
    tenure = rng.uniform(1, 120, n)
    monthly_spend = rng.gamma(4.0, 25.0, n)
    complaints = rng.poisson(1.0, n).astype(float)
    age = rng.uniform(18, 80, n)               # irrelevant
    zip_digit = rng.integers(0, 10, n).astype(float)   # irrelevant
    promo_flag = rng.integers(0, 2, n).astype(float)   # irrelevant
    spend_next = (
        50.0
        + 0.8 * monthly_spend
        + 0.4 * tenure
        - 30.0 * complaints
        + rng.normal(0, 12.0, n)
    )
    db.execute(
        f"CREATE TABLE {name} (i INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT, "
        "x3 FLOAT, x4 FLOAT, x5 FLOAT, x6 FLOAT, y FLOAT)"
    )
    X = np.column_stack(
        [tenure, monthly_spend, complaints, age, zip_digit, promo_flag]
    )
    db.load_columns(
        name,
        {
            "i": np.arange(1, n + 1),
            "x1": tenure, "x2": monthly_spend, "x3": complaints,
            "x4": age, "x5": zip_digit, "x6": promo_flag,
            "y": spend_next,
        },
    )
    return np.column_stack([X, spend_next])


train = make_customer_table("train", 5_000)
test = make_customer_table("test", 1_500)
print("train: 5000 rows, test: 1500 rows, d=6 features")

# --- fit from one scan over the training table --------------------------------
model = miner.linear_regression("train")
print(f"\nfull model R² (train) = {model.r_squared():.4f}")
print("coefficients (true: x1=0.4, x2=0.8, x3=-30, x4..x6=0):")
for index, value in enumerate(model.coefficients, start=1):
    print(f"  x{index}: {value:+8.3f}  (t = {model.t_statistics()[index]:+6.1f})")

# --- step-wise selection on the summary: zero extra scans ----------------------
dims = miner.dimensions_of("train")
stats = miner.summarize("train", ["1.0", *dims, "y"])
selected_model, selected = stepwise_select(
    AugmentedSummary(stats), min_improvement=1e-3
)
print(f"\nstep-wise selection kept dimensions "
      f"{[f'x{i + 1}' for i in selected]} "
      f"with R² = {selected_model.r_squared():.4f}")

# --- score the held-out table inside the DBMS ----------------------------------
scorer = miner.scorer("test")
scorer.store_regression(model)
result = scorer.score_regression("udf", into="test_scored")
predictions = scores_as_matrix(db.execute("SELECT i, yhat FROM test_scored"), 1).ravel()

actual = test[np.argsort(np.arange(1, 1501)), -1]
errors = predictions - actual
print(f"\nheld-out RMSE = {np.sqrt(np.mean(errors ** 2)):.2f} "
      f"(noise sd was 12.0)")
print(f"held-out R² = {1 - errors.var() / actual.var():.4f}")

# --- the scored table is queryable like any other ------------------------------
at_risk = db.execute(
    "SELECT count(*) FROM test_scored WHERE yhat < 0"
)
print(f"customers predicted to have negative spend: {at_risk.scalar()}")
print(f"total simulated DBMS time: {db.simulated_time:.2f}s")
