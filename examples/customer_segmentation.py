"""Customer segmentation: building X from normalized tables, then
clustering — the paper's Section 3.6 scenario.

In a real warehouse the data set X(i, x1..xd) rarely exists: it is
*derived* from normalized tables by denormalizing properties (joins),
turning categorical attributes into binary flags (CASE), and computing
metrics with aggregations (sum/count).  This example builds such a
customer data set from accounts and transactions, materializes it, runs
GROUP-BY-driven K-means on it, and profiles the resulting segments.

Run:  python examples/customer_segmentation.py
"""

import numpy as np

from repro import WarehouseMiner

rng = np.random.default_rng(2024)
miner = WarehouseMiner()
db = miner.db

# --- normalized source tables -------------------------------------------------
db.execute(
    "CREATE TABLE customers (cid INTEGER PRIMARY KEY, state VARCHAR, "
    "segment_truth INTEGER, tenure_months INTEGER)"
)
db.execute(
    "CREATE TABLE transactions (tid INTEGER PRIMARY KEY, cid INTEGER, "
    "amount FLOAT, kind VARCHAR)"
)

N_CUSTOMERS = 600
states = ["tx", "ca", "ny"]
rows = []
for cid in range(1, N_CUSTOMERS + 1):
    truth = int(rng.integers(0, 3))  # hidden behavioural segment
    rows.append(
        (cid, states[int(rng.integers(0, 3))], truth, int(rng.integers(1, 120)))
    )
db.insert_rows("customers", rows)

# Spending behaviour depends on the hidden segment: savers, spenders,
# and complainers generate different transaction mixes.
spend_mean = {0: 20.0, 1: 120.0, 2: 60.0}
complaint_rate = {0: 0.05, 1: 0.10, 2: 0.60}
transactions = []
tid = 0
for cid, _state, truth, _tenure in rows:
    for _ in range(int(rng.integers(3, 12))):
        tid += 1
        if rng.random() < complaint_rate[truth]:
            transactions.append((tid, cid, 0.0, "complaint"))
        else:
            amount = max(float(rng.normal(spend_mean[truth], 10.0)), 1.0)
            transactions.append((tid, cid, amount, "purchase"))
db.insert_rows("transactions", transactions)

# --- derive X: joins + CASE flags + aggregations ------------------------------
# (The three feature kinds of Section 3.6: properties, binary flags, metrics.)
db.execute(
    """
    CREATE VIEW customer_features AS
    SELECT
        c.cid AS i,
        sum(CASE WHEN t.kind = 'purchase' THEN t.amount ELSE 0.0 END) AS x1,
        sum(CASE WHEN t.kind = 'purchase' THEN 1.0 ELSE 0.0 END)     AS x2,
        sum(CASE WHEN t.kind = 'complaint' THEN 1.0 ELSE 0.0 END)    AS x3,
        c.tenure_months + 0.0                                        AS x4,
        CASE WHEN c.state = 'tx' THEN 1.0 ELSE 0.0 END               AS x5
    FROM customers c JOIN transactions t ON t.cid = c.cid
    GROUP BY c.cid, c.tenure_months,
             CASE WHEN c.state = 'tx' THEN 1.0 ELSE 0.0 END
    """
)

# Materialize the view into the canonical layout (the paper's "X exists
# as a table" case, which makes repeated scans cheap).
db.execute(
    "CREATE TABLE x (i INTEGER PRIMARY KEY, x1 FLOAT, x2 FLOAT, x3 FLOAT, "
    "x4 FLOAT, x5 FLOAT)"
)
db.execute("INSERT INTO x SELECT i, x1, x2, x3, x4, x5 FROM customer_features")
print(f"derived X: {db.table('x').row_count} customers x 5 features")

# --- summary + correlation sanity check ---------------------------------------
correlation = miner.correlation("x")
print("\nfeature correlations with total spend (x1):")
for name in ("x2", "x3", "x4", "x5"):
    print(f"  {name}: {correlation.coefficient('x1', name):+.3f}")

# --- cluster and score ---------------------------------------------------------
kmeans = miner.kmeans("x", k=3, max_iterations=12, seed=3)
scorer = miner.scorer("x")
scorer.store_clustering(kmeans)
scorer.score_clustering(3, "udf", into="x_segments")

# --- profile the segments with plain SQL over the scored table -----------------
profile = db.execute(
    """
    SELECT s.j, count(*) AS customers, avg(x.x1) AS avg_spend,
           avg(x.x3) AS avg_complaints
    FROM x_segments s JOIN x ON x.i = s.i
    GROUP BY s.j ORDER BY avg_spend DESC
    """
)
print("\nsegment profile (cluster, size, avg spend, avg complaints):")
for j, count, spend, complaints in profile.rows:
    print(f"  segment {j}: {count:4d} customers, "
          f"spend {spend:8.1f}, complaints {complaints:.2f}")

# --- how well did unsupervised clustering recover the hidden segments? --------
truth = dict(
    (cid, seg) for cid, _s, seg, _t in rows
)
assignments = {row[0]: row[1] for row in db.table("x_segments").rows()}
# Majority-vote mapping from cluster to hidden segment.
votes: dict[int, dict[int, int]] = {}
for cid, cluster in assignments.items():
    votes.setdefault(cluster, {}).setdefault(truth[cid], 0)
    votes[cluster][truth[cid]] += 1
mapping = {cluster: max(v, key=v.get) for cluster, v in votes.items()}
accuracy = np.mean(
    [mapping[cluster] == truth[cid] for cid, cluster in assignments.items()]
)
print(f"\nsegment recovery accuracy vs hidden truth: {accuracy:.1%}")
print(f"total simulated DBMS time: {db.simulated_time:.2f}s")
