"""Quickstart: the paper's workflow in a dozen lines.

One table scan computes the sufficient statistics (n, L, Q); all four
statistical models are built from them without touching the data again;
scoring runs inside the DBMS through scalar UDFs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import WarehouseMiner

miner = WarehouseMiner()

# A synthetic data set in the paper's layout X(i, x1..xd, y):
# a mixture of Gaussians plus 15% uniform noise, with a linear target.
sample = miner.load_synthetic("x", n=20_000, d=8, with_y=True, k=4, seed=7)
print(f"loaded {sample.n} rows, d={sample.d}")

# --- one scan: the summary matrices -----------------------------------------
stats = miner.summarize("x")  # aggregate UDF, single table scan
print(f"\nn = {stats.n:.0f}")
print(f"L[:4] = {np.round(stats.L[:4], 1)}")
print(f"Q diagonal[:4] = {np.round(np.diag(stats.Q)[:4], 1)}")

# --- models from (n, L, Q), no further scans ---------------------------------
correlation = miner.correlation("x")
strongest = correlation.strongest_pairs(top=3)
print("\nstrongest correlations (a, b, rho):")
for a, b, rho in strongest:
    print(f"  x{a + 1} ~ x{b + 1}: {rho:+.3f}")

regression = miner.linear_regression("x")
print(f"\nregression R² = {regression.r_squared():.4f}")
print(f"true β recovered within {np.max(np.abs(regression.coefficients - sample.true_beta)):.3f}")

pca = miner.pca("x", k=3)
print(f"\nPCA: top-3 components explain "
      f"{pca.explained_variance_ratio().sum():.1%} of the variance")

kmeans = miner.kmeans("x", k=4)
print(f"k-means: converged in {kmeans.iterations} scans, "
      f"weights = {np.round(kmeans.weights, 2)}")

# --- scoring: a single scan with scalar UDFs ---------------------------------
scorer = miner.scorer("x")
scorer.store_regression(regression)
scorer.store_clustering(kmeans)
predictions = scorer.score_regression("udf")
clusters = scorer.score_clustering(4, "udf", into="x_clustered")
print(f"\nscored {len(predictions)} rows "
      f"(simulated DBMS time: {predictions.simulated_seconds:.2f}s)")
print(f"cluster assignments written to table 'x_clustered' "
      f"({miner.db.table('x_clustered').row_count} rows)")
