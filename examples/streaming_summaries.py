"""Always-fresh models on a growing table: incremental (n, L, Q).

Because the summary matrices are additive — the same property that lets
the paper's aggregate UDF merge per-AMP partial states — they can be
maintained *incrementally* as a warehouse table grows: each refresh
scans only the rows appended since the last one, then every model is
rebuilt from the updated summary in milliseconds.  This example
simulates a week of daily loads and keeps a correlation matrix, a
regression and a PCA current the whole time, comparing the incremental
cost against recomputing from scratch each day.

Run:  python examples/streaming_summaries.py
"""

import numpy as np

from repro import WarehouseMiner
from repro.core.incremental import IncrementalSummary
from repro.core.models.correlation import CorrelationModel
from repro.core.models.pca import PCAModel
from repro.core.nlq_udf import compute_nlq_udf
from repro.core.summary import SummaryStatistics
from repro.dbms.schema import dataset_schema, dimension_names

D = 6
DAILY_ROWS = 3_000
DAYS = 7

rng = np.random.default_rng(77)
miner = WarehouseMiner()
db = miner.db
db.create_table("events", dataset_schema(D))
dims = dimension_names(D)

summary = IncrementalSummary(db, "events", dims)
next_id = 1
incremental_cost = 0.0
full_recompute_cost = 0.0

print(f"{'day':>4} {'rows':>7} {'new':>6} {'incr s':>8} {'full s':>8} "
      f"{'rho(x1,x2)':>11}")
for day in range(1, DAYS + 1):
    # The day's load: correlated activity whose strength drifts by day.
    base = rng.normal(size=DAILY_ROWS)
    drift = 0.5 + 0.07 * day
    block = rng.normal(size=(DAILY_ROWS, D))
    block[:, 0] = base
    block[:, 1] = drift * base + np.sqrt(1 - drift**2) * block[:, 1]
    columns = {"i": np.arange(next_id, next_id + DAILY_ROWS)}
    for index, name in enumerate(dims):
        columns[name] = block[:, index]
    db.load_columns("events", columns)
    next_id += DAILY_ROWS

    # Incremental refresh: O(new rows).
    db.reset_clock()
    stats = summary.refresh()
    day_incremental = db.simulated_time
    incremental_cost += day_incremental

    # The naive alternative: full UDF rescan of the whole table.
    db.reset_clock()
    full_stats = compute_nlq_udf(db, "events", dims)
    day_full = db.simulated_time
    full_recompute_cost += day_full
    assert stats.allclose(full_stats), "incremental drifted from the truth"

    # Models rebuild from the summary in negligible time.
    correlation = CorrelationModel.from_summary(stats, dims)
    PCAModel.from_summary(stats, k=3)
    print(f"{day:>4} {int(stats.n):>7} {DAILY_ROWS:>6} "
          f"{day_incremental:>8.2f} {day_full:>8.2f} "
          f"{correlation.coefficient('x1', 'x2'):>11.3f}")

print(f"\nweek total: incremental {incremental_cost:.1f}s vs "
      f"full recompute {full_recompute_cost:.1f}s "
      f"({full_recompute_cost / incremental_cost:.1f}x)")
print("the drifting x1~x2 correlation is visible day by day, and the "
      "incremental summary never diverged from a full rescan.")
