"""The pivot primitive: key-value detail tables → the wide X layout.

The paper's related work cites the SQL/MX knowledge-discovery primitives
[5], which include *pivot* — turning a tall ``(id, key, value)`` table
into one row per id with one column per key — precisely the
transformation warehouses need when attributes are stored
entity-attribute-value style before the analysis matrix X(i, x1..xd) can
exist.

The generated SQL is the classic CASE-based pivot:

    SELECT id,
           max(CASE WHEN key = 'k1' THEN value END) AS k1,
           ...
    FROM tall GROUP BY id

one scan regardless of the number of pivoted columns, with an optional
aggregate other than ``max`` for ids carrying duplicate keys.
"""

from __future__ import annotations

from typing import Sequence

from repro.dbms.database import Database, QueryResult
from repro.dbms.schema import validate_identifier
from repro.errors import PlanningError


def discover_keys(
    db: Database, table: str, key_column: str, limit: int = 1000
) -> list[str]:
    """The distinct key values of a tall table (sorted), for callers who
    don't know the attribute universe up front."""
    result = db.execute(
        f"SELECT {key_column} FROM {table} "
        f"GROUP BY {key_column} ORDER BY {key_column} LIMIT {limit}"
    )
    keys = [row[0] for row in result.rows if row[0] is not None]
    if not keys:
        raise PlanningError(f"table {table!r} has no key values to pivot")
    return [str(key) for key in keys]


def pivot_sql(
    table: str,
    id_column: str,
    key_column: str,
    value_column: str,
    keys: Sequence[str],
    aggregate: str = "max",
    column_names: Sequence[str] | None = None,
) -> str:
    """Generate the CASE-based pivot SELECT.

    *keys* are the attribute values to become columns; *column_names*
    overrides the output column identifiers (defaults to the keys, which
    must then be valid identifiers).
    """
    if not keys:
        raise PlanningError("no keys to pivot")
    if aggregate.lower() not in ("max", "min", "sum", "avg", "count"):
        raise PlanningError(f"unsupported pivot aggregate {aggregate!r}")
    if column_names is None:
        column_names = [str(key) for key in keys]
    if len(column_names) != len(keys):
        raise PlanningError(
            f"{len(column_names)} column names for {len(keys)} keys"
        )
    seen: set[str] = set()
    for name in column_names:
        validate_identifier(name, "pivot column name")
        if name.lower() in seen:
            raise PlanningError(f"duplicate pivot column {name!r}")
        seen.add(name.lower())
    items = [f"{id_column} AS {id_column}"]
    for key, name in zip(keys, column_names):
        escaped = str(key).replace("'", "''")
        items.append(
            f"{aggregate}(CASE WHEN {key_column} = '{escaped}' "
            f"THEN {value_column} END) AS {name}"
        )
    return (
        f"SELECT {', '.join(items)} FROM {table} "
        f"GROUP BY {id_column} ORDER BY {id_column}"
    )


def pivot(
    db: Database,
    table: str,
    id_column: str,
    key_column: str,
    value_column: str,
    keys: Sequence[str] | None = None,
    aggregate: str = "max",
    column_names: Sequence[str] | None = None,
    into: str | None = None,
) -> QueryResult:
    """Run the pivot; optionally materialize into a wide table.

    With ``into`` the result lands in a new table whose id column is the
    primary key and whose value columns are FLOAT — ready to be the
    paper's X.
    """
    if keys is None:
        keys = discover_keys(db, table, key_column)
    sql = pivot_sql(
        table, id_column, key_column, value_column, keys, aggregate,
        column_names,
    )
    if into is None:
        return db.execute(sql)
    if column_names is None:
        column_names = [str(key) for key in keys]
    if db.catalog.has_table(into):
        db.drop_table(into)
    columns = ", ".join(
        [f"{id_column} INTEGER PRIMARY KEY"]
        + [f"{name} FLOAT" for name in column_names]
    )
    db.execute(f"CREATE TABLE {into} ({columns})")
    return db.execute(f"INSERT INTO {into} {sql}")
