"""Train/test workflows evaluated inside the DBMS.

The paper's Section 3.5 frames scoring as "the standard train and test
approach": build on one data set, apply to another, measure error.  This
module keeps the whole loop in the database:

* :func:`train_test_split` — deterministic in-DB split via a modular
  hash of the point id (two INSERT..SELECT statements, no export);
* :func:`regression_metrics` — RMSE / MAE / R² computed by *one
  aggregate query* joining the scored table to the truth: the error
  sums are just more sufficient statistics;
* :func:`confusion_matrix` — classification cross-tabulation via a
  GROUP BY over the same join.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbms.database import Database
from repro.errors import ModelError


def train_test_split(
    db: Database,
    source: str,
    train_name: str,
    test_name: str,
    test_modulus: int = 5,
    id_column: str = "i",
) -> tuple[int, int]:
    """Split *source* into two tables: ids with ``i MOD m = 0`` go to the
    test table (a 1/m holdout), the rest to training.

    Deterministic and reproducible — the same split every run, with no
    data leaving the DBMS.  Returns (train rows, test rows).
    """
    if test_modulus < 2:
        raise ModelError(f"test modulus must be >= 2, got {test_modulus}")
    table = db.table(source)
    columns = ", ".join(table.schema.column_names)
    ddl_columns = ", ".join(
        str(column) for column in table.schema.columns
    )
    pk = f", PRIMARY KEY ({table.schema.primary_key})" \
        if table.schema.primary_key else ""
    for name in (train_name, test_name):
        if db.catalog.has_table(name):
            db.drop_table(name)
        db.execute(f"CREATE TABLE {name} ({ddl_columns}{pk})")
    db.execute(
        f"INSERT INTO {test_name} SELECT {columns} FROM {source} "
        f"WHERE {id_column} MOD {test_modulus} = 0"
    )
    db.execute(
        f"INSERT INTO {train_name} SELECT {columns} FROM {source} "
        f"WHERE {id_column} MOD {test_modulus} <> 0"
    )
    train_rows = db.table(train_name).row_count
    test_rows = db.table(test_name).row_count
    if train_rows == 0 or test_rows == 0:
        raise ModelError(
            f"degenerate split: {train_rows} train / {test_rows} test rows"
        )
    return train_rows, test_rows


@dataclass(frozen=True)
class RegressionMetrics:
    """Error statistics of a scored table against the truth."""

    n: int
    rmse: float
    mae: float
    r_squared: float
    mean_error: float


def regression_metrics(
    db: Database,
    scored_table: str,
    truth_table: str,
    prediction_column: str = "yhat",
    truth_column: str = "y",
    id_column: str = "i",
) -> RegressionMetrics:
    """One aggregate query over the scored↔truth join.

    The five sums it gathers — n, Σe, Σe², Σ|e|, plus Σy and Σy² for the
    total variance — are themselves sufficient statistics, so the whole
    evaluation is a single scan.
    """
    sql = (
        f"SELECT count(*), "
        f"sum(s.{prediction_column} - t.{truth_column}), "
        f"sum((s.{prediction_column} - t.{truth_column}) * "
        f"(s.{prediction_column} - t.{truth_column})), "
        f"sum(abs(s.{prediction_column} - t.{truth_column})), "
        f"sum(t.{truth_column}), "
        f"sum(t.{truth_column} * t.{truth_column}) "
        f"FROM {scored_table} s JOIN {truth_table} t "
        f"ON t.{id_column} = s.{id_column}"
    )
    n, sum_e, sum_e2, sum_abs, sum_y, sum_y2 = db.execute(sql).first()
    if not n:
        raise ModelError("no matching rows between scored and truth tables")
    n = int(n)
    total_variance = sum_y2 / n - (sum_y / n) ** 2
    if total_variance <= 0:
        raise ModelError("truth column has zero variance; R² undefined")
    mse = sum_e2 / n
    return RegressionMetrics(
        n=n,
        rmse=float(np.sqrt(mse)),
        mae=float(sum_abs / n),
        r_squared=float(1.0 - mse / total_variance),
        mean_error=float(sum_e / n),
    )


def confusion_matrix(
    db: Database,
    scored_table: str,
    truth_table: str,
    prediction_column: str = "j",
    truth_column: str = "label",
    id_column: str = "i",
) -> dict[tuple[int, int], int]:
    """Cross-tabulate (truth, prediction) with one GROUP BY query.

    Returns ``{(truth, predicted): count}``.
    """
    sql = (
        f"SELECT t.{truth_column}, s.{prediction_column}, count(*) "
        f"FROM {scored_table} s JOIN {truth_table} t "
        f"ON t.{id_column} = s.{id_column} "
        f"GROUP BY t.{truth_column}, s.{prediction_column}"
    )
    result = db.execute(sql)
    if not result.rows:
        raise ModelError("no matching rows between scored and truth tables")
    return {
        (int(truth), int(predicted)): int(count)
        for truth, predicted, count in result.rows
    }


def classification_accuracy(
    matrix: "dict[tuple[int, int], int]"
) -> float:
    """Accuracy from a confusion matrix."""
    total = sum(matrix.values())
    if total == 0:
        raise ModelError("empty confusion matrix")
    correct = sum(
        count for (truth, predicted), count in matrix.items()
        if truth == predicted
    )
    return correct / total
