"""Incremental maintenance of the summary matrices.

Because (n, L, Q) are additive — the merge invariant the partition-
parallel UDF already relies on — they can be maintained *incrementally*
as a table grows: scan only the rows appended since the last refresh and
merge their partial summary into the running one.  The paper leaves this
as future work ("other statistical techniques can benefit from the same
approach"); it is what makes always-fresh models practical on append-
heavy warehouse tables.

:class:`IncrementalSummary` tracks a per-partition watermark (partitions
are append-only in this engine), so ``refresh()`` reads each partition's
suffix only.  The cost model is charged for exactly the new rows — an
n-row table that grew by k rows costs O(k), not O(n).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.udf import RowCost
from repro.errors import ModelError


class IncrementalSummary:
    """A continuously maintainable (n, L, Q) over one table."""

    def __init__(
        self,
        db: Database,
        table: str,
        dimensions: Sequence[str],
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> None:
        self._db = db
        self._table_name = table
        self.dimensions = list(dimensions)
        self.matrix_type = matrix_type
        table_obj = db.table(table)
        self._positions = [
            table_obj.schema.position_of(name) for name in self.dimensions
        ]
        self._watermarks = [0] * table_obj.partition_count
        self._stats = SummaryStatistics.zeros(len(self.dimensions), matrix_type)
        self._refreshes = 0

    # ------------------------------------------------------------ properties
    @property
    def stats(self) -> SummaryStatistics:
        """The summary as of the last refresh (call :meth:`refresh` first
        for an up-to-date value)."""
        return self._stats

    @property
    def refresh_count(self) -> int:
        return self._refreshes

    def pending_rows(self) -> int:
        """Rows appended since the last refresh."""
        table = self._db.table(self._table_name)
        if table.partition_count != len(self._watermarks):
            raise ModelError("table was rebuilt; create a new IncrementalSummary")
        return sum(
            partition.row_count - mark
            for partition, mark in zip(table.partitions, self._watermarks)
        )

    def is_fresh(self) -> bool:
        return self.pending_rows() == 0

    # --------------------------------------------------------------- refresh
    def refresh(self) -> SummaryStatistics:
        """Fold all appended rows into the summary; O(new rows) only."""
        table = self._db.table(self._table_name)
        if table.partition_count != len(self._watermarks):
            raise ModelError("table was rebuilt; create a new IncrementalSummary")
        d = len(self.dimensions)
        new_rows = 0
        delta = SummaryStatistics.zeros(d, self.matrix_type)
        for index, partition in enumerate(table.partitions):
            mark = self._watermarks[index]
            count = partition.row_count
            if count < mark:
                raise ModelError(
                    "table shrank (delete/truncate); incremental state is "
                    "invalid — create a new IncrementalSummary"
                )
            if count == mark:
                continue
            block = np.empty((count - mark, d))
            for out, position in enumerate(self._positions):
                column = partition.column(position)[mark:]
                block[:, out] = np.asarray(
                    [np.nan if v is None else v for v in column], dtype=float
                )
            # Match the aggregate UDF: skip rows with any NULL dimension.
            keep = ~np.isnan(block).any(axis=1)
            delta = delta.merge(
                SummaryStatistics.from_matrix(block[keep], self.matrix_type)
            )
            new_rows += count - mark
            self._watermarks[index] = count
        if new_rows:
            scale = table.row_scale
            cost = self._db.cost
            cost.charge_scan(new_rows * scale, len(self.dimensions))
            profile = RowCost(
                list_params=d + 1,
                arith_ops=3 * d + self.matrix_type.update_ops(d),
            )
            cost.charge_udf_rows(
                new_rows * scale,
                list_params=profile.list_params,
                arith_ops=profile.arith_ops,
            )
            self._stats = self._stats.merge(delta)
        self._refreshes += 1
        return self._stats

    def reset(self) -> None:
        """Forget everything and start from an empty summary."""
        table = self._db.table(self._table_name)
        self._watermarks = [0] * table.partition_count
        self._stats = SummaryStatistics.zeros(
            len(self.dimensions), self.matrix_type
        )
        self._refreshes = 0
