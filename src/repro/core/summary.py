"""Summary matrices: the sufficient statistics (n, L, Q).

This is the paper's central observation (Section 3.2): the row count

    n,
    L = Σ xᵢ          (d × 1, the linear sum of points)          [Eq. 1]
    Q = X Xᵀ = Σ xᵢxᵢᵀ (d × d, the quadratic sum of points)      [Eq. 2]

are sufficient to build the correlation matrix, the covariance matrix,
the linear-regression normal equations, and the per-cluster statistics
of K-means/EM — so after one table scan the data set X is never needed
again (except the residual scan in regression).

:class:`SummaryStatistics` is the in-memory representation shared by all
three computation routes (plain SQL, the aggregate UDF, and the external
C++-style tool); all routes must produce equal instances on the same
data (tests enforce this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


class MatrixType(enum.Enum):
    """Which part of Q the scan maintains (paper, Section 3.4).

    * ``DIAGONAL`` — only Σ Xa² (enough for K-means/EM clustering);
    * ``TRIANGULAR`` — the lower triangle (Q is symmetric; enough for
      correlation, PCA/FA and regression — the default);
    * ``FULL`` — all d² entries (querying / visualization).
    """

    DIAGONAL = 0
    TRIANGULAR = 1
    FULL = 2

    @property
    def code(self) -> int:
        """Numeric code used when the type is passed through SQL."""
        return self.value

    @classmethod
    def from_code(cls, code: int) -> "MatrixType":
        return cls(int(code))

    def update_ops(self, d: int) -> int:
        """Multiply-adds per row to maintain Q for this type."""
        if self is MatrixType.DIAGONAL:
            return d
        if self is MatrixType.TRIANGULAR:
            return d * (d + 1) // 2
        return d * d


@dataclass
class SummaryStatistics:
    """The sufficient statistics of one data set (or one group).

    ``Q`` is always stored as a dense symmetric d × d matrix; for a
    DIAGONAL computation the off-diagonal entries are zero (and must not
    be read).  ``mins``/``maxs`` are the per-dimension extrema the
    paper's UDF also tracks for outlier detection and histograms.
    """

    n: float
    L: np.ndarray
    Q: np.ndarray
    matrix_type: MatrixType = MatrixType.TRIANGULAR
    mins: np.ndarray | None = None
    maxs: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.L = np.asarray(self.L, dtype=float).reshape(-1)
        self.Q = np.asarray(self.Q, dtype=float)
        d = self.d
        if self.Q.shape != (d, d):
            raise ModelError(
                f"Q has shape {self.Q.shape}, expected ({d}, {d}) to match L"
            )

    # -------------------------------------------------------------- basics
    @property
    def d(self) -> int:
        return int(self.L.shape[0])

    @classmethod
    def zeros(
        cls, d: int, matrix_type: MatrixType = MatrixType.TRIANGULAR
    ) -> "SummaryStatistics":
        return cls(
            n=0.0,
            L=np.zeros(d),
            Q=np.zeros((d, d)),
            matrix_type=matrix_type,
            mins=np.full(d, np.inf),
            maxs=np.full(d, -np.inf),
        )

    @classmethod
    def from_matrix(
        cls,
        X: np.ndarray,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> "SummaryStatistics":
        """One-pass computation from an (n × d) matrix — the reference
        implementation every other route is checked against."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ModelError(f"expected a 2-D matrix, got shape {X.shape}")
        n, d = X.shape
        L = X.sum(axis=0) if n else np.zeros(d)
        if matrix_type is MatrixType.DIAGONAL:
            Q = np.diag((X * X).sum(axis=0)) if n else np.zeros((d, d))
        else:
            Q = X.T @ X if n else np.zeros((d, d))
        mins = X.min(axis=0) if n else np.full(d, np.inf)
        maxs = X.max(axis=0) if n else np.full(d, -np.inf)
        return cls(float(n), L, Q, matrix_type, mins, maxs)

    def merge(self, other: "SummaryStatistics") -> "SummaryStatistics":
        """Combine two partial summaries (the UDF's phase-3 merge)."""
        if self.d != other.d:
            raise ModelError(
                f"cannot merge summaries of dimension {self.d} and {other.d}"
            )
        if self.matrix_type is not other.matrix_type:
            raise ModelError("cannot merge summaries of different matrix types")
        mins = maxs = None
        if self.mins is not None and other.mins is not None:
            mins = np.minimum(self.mins, other.mins)
        if self.maxs is not None and other.maxs is not None:
            maxs = np.maximum(self.maxs, other.maxs)
        return SummaryStatistics(
            n=self.n + other.n,
            L=self.L + other.L,
            Q=self.Q + other.Q,
            matrix_type=self.matrix_type,
            mins=mins,
            maxs=maxs,
        )

    def allclose(self, other: "SummaryStatistics", rtol: float = 1e-9) -> bool:
        """Numeric equality between two computation routes."""
        if self.d != other.d:
            return False
        return (
            np.isclose(self.n, other.n, rtol=rtol)
            and np.allclose(self.L, other.L, rtol=rtol)
            and np.allclose(self.Q, other.Q, rtol=rtol)
        )

    # ---------------------------------------------------------- derivations
    def mean(self) -> np.ndarray:
        """µ = L / n."""
        self._require_rows()
        return self.L / self.n

    def covariance(self) -> np.ndarray:
        """V = Q/n − L·Lᵀ/n²  (population covariance; paper, Section 3.2)."""
        self._require_cross_products()
        self._require_rows()
        n = self.n
        return self.Q / n - np.outer(self.L, self.L) / (n * n)

    def variances(self) -> np.ndarray:
        """Per-dimension population variance (valid for any matrix type)."""
        self._require_rows()
        n = self.n
        return np.diag(self.Q) / n - (self.L / n) ** 2

    def correlation(self) -> np.ndarray:
        """ρ_ab = (n·Q_ab − L_a·L_b) / (√(n·Q_aa − L_a²) √(n·Q_bb − L_b²))."""
        self._require_cross_products()
        self._require_rows()
        n = self.n
        numerator = n * self.Q - np.outer(self.L, self.L)
        scale = n * np.diag(self.Q) - self.L**2
        if np.any(scale <= 0):
            degenerate = [int(a) for a in np.flatnonzero(scale <= 0)]
            raise ModelError(
                f"zero-variance dimensions {degenerate}; correlation undefined"
            )
        denominator = np.sqrt(np.outer(scale, scale))
        return numerator / denominator

    def sub(self, indices: "list[int] | np.ndarray") -> "SummaryStatistics":
        """The summary restricted to a subset of dimensions.

        This is what makes step-wise regression / feature selection free
        once (n, L, Q) exist: sub-summaries need no further scans.
        """
        indices = np.asarray(indices, dtype=int)
        mins = self.mins[indices] if self.mins is not None else None
        maxs = self.maxs[indices] if self.maxs is not None else None
        return SummaryStatistics(
            n=self.n,
            L=self.L[indices],
            Q=self.Q[np.ix_(indices, indices)],
            matrix_type=self.matrix_type,
            mins=mins,
            maxs=maxs,
        )

    # ----------------------------------------------------------- validation
    def _require_rows(self) -> None:
        if self.n <= 0:
            raise ModelError("summary has no rows")

    def _require_cross_products(self) -> None:
        if self.matrix_type is MatrixType.DIAGONAL:
            raise ModelError(
                "this derivation needs cross-products; the summary was "
                "computed with a DIAGONAL Q (clustering mode)"
            )


@dataclass
class AugmentedSummary:
    """The regression layout: summaries of z = (1, x₁..x_d, y).

    The paper's Q′ = Z Zᵀ (Section 3.2) contains X Xᵀ, X Yᵀ and Y Yᵀ as
    blocks; with the leading constant dimension it also contains n and L,
    so β and R² need nothing else.
    """

    stats: SummaryStatistics

    def __post_init__(self) -> None:
        if self.stats.matrix_type is MatrixType.DIAGONAL:
            raise ModelError("regression needs cross-products (triangular/full Q)")
        if self.stats.d < 3:
            raise ModelError(
                "augmented summary needs at least (1, x1, y) — d >= 3"
            )

    @classmethod
    def from_xy(cls, X: np.ndarray, y: np.ndarray) -> "AugmentedSummary":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ModelError("X and y row counts differ")
        Z = np.column_stack([np.ones(X.shape[0]), X, y])
        return cls(SummaryStatistics.from_matrix(Z, MatrixType.FULL))

    @property
    def d(self) -> int:
        """Number of independent dimensions (excluding the 1s column and y)."""
        return self.stats.d - 2

    @property
    def n(self) -> float:
        return self.stats.n

    def xtx(self) -> np.ndarray:
        """The (d+1) × (d+1) block X Xᵀ including the intercept row."""
        return self.stats.Q[: self.d + 1, : self.d + 1]

    def xty(self) -> np.ndarray:
        """The (d+1) × 1 block X Yᵀ."""
        return self.stats.Q[: self.d + 1, self.d + 1]

    def yty(self) -> float:
        """Y Yᵀ = Σ yᵢ²."""
        return float(self.stats.Q[self.d + 1, self.d + 1])

    def sum_y(self) -> float:
        return float(self.stats.L[self.d + 1])
