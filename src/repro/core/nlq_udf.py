"""The aggregate UDF that computes (n, L, Q) in one table scan.

This is the paper's Section 3.4.  Because Teradata UDF parameters cannot
be arrays, there are two parameter-passing variants:

* :class:`NlqListUdf` — the point is passed as an explicit list of
  scalar parameters, ``nlq_tri(d, x1, ..., xd)``.  Fast (values land on
  the run-time stack) but bounded by the engine's parameter limit.
* :class:`NlqStringUdf` — the point is packed into one string,
  ``nlq_str_tri(x1 || ',' || x2 || ...)``; the UDF's unpacking routine
  determines ``d``.  Costs O(d) pack/parse per row, which the paper
  found to outweigh even the O(d²) update arithmetic at high ``d``.

Each variant comes in three matrix types (diagonal / triangular / full
Q), fixed at creation so the aggregate state struct can be sized the way
the paper's C struct is: statically, for ``MAX_d`` dimensions, allocated
before the first row arrives.  The 64 KB heap-segment check therefore
uses the static size, and a GROUP BY over many groups spills once
``groups × state size`` exceeds the segment (Table 5's jump at k=32 with
the diagonal struct).

The four run-time stages map to :meth:`initialize` / :meth:`accumulate`
(or the vectorized :meth:`accumulate_block`) / :meth:`merge` /
:meth:`finalize`, which packs the result into one long string (UDFs
cannot return arrays either) — decode it with
:func:`repro.core.packing.unpack_summary`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.packing import (
    pack_summary,
    unpack_vector,
    vector_char_cost,
)
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.udf import AggregateUdf, RowCost
from repro.errors import UdfArgumentError

#: the paper's static struct bound; d=64 keeps the full struct inside 64 KB
DEFAULT_MAX_D = 64


class _NlqState:
    """The aggregate's heap struct: n, L, Q (+ per-dimension extrema).

    Arrays are lazily shaped on the first row (the C struct is static;
    we size on first use but *account* statically — see
    ``state_value_count``).
    """

    __slots__ = ("d", "n", "L", "Q", "mins", "maxs", "diagonal")

    def __init__(self, diagonal: bool) -> None:
        self.d: int | None = None
        self.n = 0.0
        self.L: np.ndarray | None = None
        self.Q: np.ndarray | None = None
        self.mins: np.ndarray | None = None
        self.maxs: np.ndarray | None = None
        self.diagonal = diagonal

    def shape_for(self, d: int) -> None:
        if self.d is None:
            self.d = d
            self.L = np.zeros(d)
            self.Q = np.zeros(d) if self.diagonal else np.zeros((d, d))
            self.mins = np.full(d, np.inf)
            self.maxs = np.full(d, -np.inf)
        elif self.d != d:
            raise UdfArgumentError(
                f"point dimensionality changed mid-scan: {self.d} -> {d}"
            )


class _NlqUdfBase(AggregateUdf):
    """Shared machinery of the two parameter-passing variants."""

    def __init__(
        self,
        name: str,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
        max_d: int = DEFAULT_MAX_D,
    ) -> None:
        super().__init__(name)
        self.matrix_type = matrix_type
        self.max_d = max_d
        #: dimensionality seen during the last scan (used for costing).
        #: Written from concurrent engine workers, which is benign:
        #: every partition of one scan observes the same d (a change
        #: mid-scan raises), so the race is last-writer-wins over equal
        #: values.
        self._observed_d = 0

    # --------------------------------------------------------------- phases
    def initialize(self) -> _NlqState:
        # The C struct is allocated up front at its static MAX_d size;
        # the heap segment must fit it before any row is read.
        self.ensure_state_fits(self.state_value_count())
        return _NlqState(self.matrix_type is MatrixType.DIAGONAL)

    def _update(self, state: _NlqState, x: np.ndarray) -> None:
        d = x.shape[0]
        if d > self.max_d:
            raise UdfArgumentError(
                f"UDF {self.name!r} was compiled with MAX_d={self.max_d} "
                f"but received a {d}-dimensional point; partition the "
                "computation across calls (repro.core.blockwise)"
            )
        if d == 0:
            raise UdfArgumentError(f"UDF {self.name!r} received an empty point")
        state.shape_for(d)
        self._observed_d = d
        state.n += 1.0
        state.L += x
        if state.diagonal:
            state.Q += x * x
        else:
            # The triangular optimization halves the multiply-adds; the
            # stored result is the same symmetric matrix either way, so
            # the cost model (not the storage) carries the difference.
            state.Q += np.outer(x, x)
        np.minimum(state.mins, x, out=state.mins)
        np.maximum(state.maxs, x, out=state.maxs)

    def _update_block(self, state: _NlqState, X: np.ndarray) -> None:
        rows, d = X.shape
        if d > self.max_d:
            raise UdfArgumentError(
                f"UDF {self.name!r} was compiled with MAX_d={self.max_d} "
                f"but received {d}-dimensional points"
            )
        if rows == 0:
            return
        state.shape_for(d)
        self._observed_d = d
        state.n += float(rows)
        state.L += X.sum(axis=0)
        if state.diagonal:
            state.Q += (X * X).sum(axis=0)
        else:
            state.Q += X.T @ X
        np.minimum(state.mins, X.min(axis=0), out=state.mins)
        np.maximum(state.maxs, X.max(axis=0), out=state.maxs)

    def merge(self, state: _NlqState, other: _NlqState) -> _NlqState:
        if other.d is None:
            return state
        if state.d is None:
            return other
        if state.d != other.d:
            raise UdfArgumentError(
                f"cannot merge partial states of dimension {state.d} and {other.d}"
            )
        state.n += other.n
        state.L += other.L
        state.Q += other.Q
        np.minimum(state.mins, other.mins, out=state.mins)
        np.maximum(state.maxs, other.maxs, out=state.maxs)
        return state

    def finalize(self, state: _NlqState) -> str | None:
        if state.d is None:
            return None
        Q = np.diag(state.Q) if state.diagonal else state.Q
        stats = SummaryStatistics(
            n=state.n,
            L=state.L,
            Q=Q,
            matrix_type=self.matrix_type,
            mins=state.mins,
            maxs=state.maxs,
        )
        return pack_summary(stats)

    def state_from_stats(self, stats: SummaryStatistics) -> _NlqState:
        """Synthesize a finished aggregate state from an existing summary.

        This is how the summary-matrix cache serves a statement without
        scanning: the cached :class:`SummaryStatistics` is loaded into a
        fresh state, and the ordinary :meth:`finalize` then produces the
        exact payload a scan would have.  ``n == 0`` maps to the
        unshaped state, whose finalize returns NULL like an empty scan.
        """
        state = self.initialize()
        if stats.n == 0:
            return state
        state.shape_for(stats.d)
        self._observed_d = stats.d
        state.n = float(stats.n)
        state.L = stats.L.copy()
        state.Q = np.diag(stats.Q).copy() if state.diagonal else stats.Q.copy()
        if stats.mins is not None:
            state.mins = stats.mins.copy()
        if stats.maxs is not None:
            state.maxs = stats.maxs.copy()
        return state

    # -------------------------------------------------------------- costing
    def state_value_count(self) -> int:
        """Static struct size in 8-byte values: d and n, L[MAX_d], the Q
        storage for this matrix type, and the two extrema vectors."""
        q_values = self.max_d if self.matrix_type is MatrixType.DIAGONAL \
            else self.max_d * self.max_d
        return 3 + self.max_d + q_values + 2 * self.max_d

    def _arith_ops(self) -> int:
        d = self._observed_d or self.max_d
        # L update (d) + Q update (type-dependent) + extrema (2d).
        return d + self.matrix_type.update_ops(d) + 2 * d


class NlqListUdf(_NlqUdfBase):
    """List-passing variant: ``nlq_*(d, x1, ..., xd)``.

    ``d`` must be passed because the UDF's parameter list is declared at
    compile time (paper, Section 3.4); the engine's vectorized block path
    is available since every parameter is numeric.
    """

    supports_block = True
    #: eligible for the database's summary-matrix cache: a grand
    #: ``nlq_*(d, x1, ..., xd)`` call is exactly a (table, columns,
    #: matrix type) summary, so its payload can be served from cache
    summary_cacheable = True

    def accumulate(self, state: _NlqState, args: Sequence[Any]) -> _NlqState:
        if len(args) < 2:
            raise UdfArgumentError(
                f"UDF {self.name!r} needs (d, x1, ..., xd); got {len(args)} args"
            )
        d = int(args[0])
        values = args[1:]
        if len(values) != d:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared d={d} but received "
                f"{len(values)} point values"
            )
        self._update(state, np.asarray([float(v) for v in values]))
        return state

    def accumulate_block(self, state: _NlqState, block: np.ndarray) -> _NlqState:
        if block.shape[0] == 0:
            return state
        d = int(block[0, 0])
        if block.shape[1] - 1 != d:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared d={d} but received "
                f"{block.shape[1] - 1} point values"
            )
        self._update_block(state, block[:, 1:])
        return state

    def cost_per_row(self, arg_count: int) -> RowCost:
        return RowCost(list_params=arg_count, arith_ops=self._arith_ops())


class NlqStringUdf(_NlqUdfBase):
    """String-passing variant: ``nlq_str_*(packed_point)``.

    One parameter regardless of ``d`` — which is the whole appeal when
    the engine caps parameter counts — but each row pays the float→text
    cast at the call site and the text→float parse inside the UDF.
    """

    arity = 1
    supports_block = False

    def accumulate(self, state: _NlqState, args: Sequence[Any]) -> _NlqState:
        (packed,) = args
        if not isinstance(packed, str):
            raise UdfArgumentError(
                f"UDF {self.name!r} expects a packed string point, got "
                f"{type(packed).__name__}"
            )
        self._update(state, unpack_vector(packed))
        return state

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = self._observed_d or self.max_d
        return RowCost(
            list_params=1,
            string_chars=vector_char_cost(d),
            arith_ops=self._arith_ops(),
        )


#: registration names for the six variants
NLQ_UDF_NAMES = {
    (MatrixType.DIAGONAL, "list"): "nlq_diag",
    (MatrixType.TRIANGULAR, "list"): "nlq_tri",
    (MatrixType.FULL, "list"): "nlq_full",
    (MatrixType.DIAGONAL, "string"): "nlq_str_diag",
    (MatrixType.TRIANGULAR, "string"): "nlq_str_tri",
    (MatrixType.FULL, "string"): "nlq_str_full",
}


def register_nlq_udfs(
    db: Database, max_d: int = DEFAULT_MAX_D
) -> dict[str, _NlqUdfBase]:
    """Register all six nLQ UDF variants on *db*; returns them by name."""
    registered: dict[str, _NlqUdfBase] = {}
    for (matrix_type, passing), name in NLQ_UDF_NAMES.items():
        udf_class = NlqListUdf if passing == "list" else NlqStringUdf
        udf = udf_class(name, matrix_type, max_d)
        db.register_udf(udf)
        registered[name] = udf
    return registered


def compute_nlq_udf(
    db: Database,
    table: str,
    dimensions: Sequence[str],
    matrix_type: MatrixType = MatrixType.TRIANGULAR,
    passing: str = "list",
) -> SummaryStatistics:
    """Run the aggregate UDF on *table* and decode its packed payload.

    The UDF variants must already be registered (see
    :func:`register_nlq_udfs`)."""
    from repro.core.packing import unpack_summary

    payload = db.execute(
        nlq_call_sql(table, dimensions, matrix_type, passing)
    ).scalar()
    if payload is None:
        return SummaryStatistics.zeros(len(dimensions), matrix_type)
    return unpack_summary(payload)


def compute_nlq_udf_groups(
    db: Database,
    table: str,
    dimensions: Sequence[str],
    group_by: str,
    matrix_type: MatrixType = MatrixType.DIAGONAL,
    passing: str = "list",
) -> "dict[object, SummaryStatistics]":
    """Per-group (n, L, Q) through the aggregate UDF with GROUP BY."""
    from repro.core.packing import unpack_summary

    result = db.execute(
        nlq_call_sql(table, dimensions, matrix_type, passing, group_by=group_by)
    )
    groups: dict[object, SummaryStatistics] = {}
    for key, payload in result.rows:
        if payload is not None:
            groups[key] = unpack_summary(payload)
    return groups


def nlq_call_sql(
    table: str,
    dimensions: Sequence[str],
    matrix_type: MatrixType = MatrixType.TRIANGULAR,
    passing: str = "list",
    group_by: str | None = None,
) -> str:
    """Generate the SELECT that invokes the aggregate UDF on *table*.

    With *group_by*, one (n, L, Q) is computed per group — the paper's
    sub-model query used to recompute clustering statistics.
    """
    name = NLQ_UDF_NAMES[(matrix_type, passing)]
    if passing == "list":
        args = ", ".join([str(len(dimensions)), *dimensions])
    else:
        pieces: list[str] = []
        for position, dimension in enumerate(dimensions):
            if position:
                pieces.append("','")
            pieces.append(dimension)
        args = " || ".join(pieces)
    call = f"{name}({args})"
    if group_by is None:
        return f"SELECT {call} FROM {table}"
    return (
        f"SELECT {group_by} AS grp, {call} FROM {table} "
        f"GROUP BY {group_by} ORDER BY grp"
    )
