"""A database-level cache of summary matrices (n, L, Q).

The sufficient statistics are tiny — O(d²) floats — while computing them
costs a full table scan.  Since every model in the paper's framework is
built *from* the statistics rather than from the data, a warehouse that
remembers the summary per ``(table, column set, matrix type)`` can build
the second and every later model over the same columns with zero rows
scanned: repeat model builds become pure O(d²) math.

Freshness is keyed on two per-table counters maintained by
:class:`~repro.dbms.storage.Table`:

* ``version`` — bumped on every successful mutation;
* ``data_version`` — ``version`` as of the last *destructive* mutation
  (``truncate``, which also backs DELETE and UPDATE).

An entry whose recorded version equals the table's current version is
served as-is (a **fresh hit**, zero rows scanned).  If only appends have
happened since the entry was built (``entry version >=
data_version``), the entry's :class:`~repro.core.incremental.
IncrementalSummary` watermarks let it fold in exactly the appended
suffix (a **stale hit**, O(new rows)).  Anything else — a destructive
mutation, or a table object replaced via DROP/CREATE — forces a full
rebuild (a **miss**, which warms the cache for the next build).  A
stale *answer* is therefore impossible: every serve path re-validates
against the live table counters first.

The cache is **opt-in** (``Database.summary_cache_enabled = True``): a
cache-served statement legitimately reports different wall-clock
metrics (``rows_scanned == 0``) and bypasses scan-path fault sites, so
it must never surprise code that asserts on those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.incremental import IncrementalSummary
from repro.core.summary import MatrixType, SummaryStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dbms.database import Database
    from repro.dbms.storage import Table

#: cache key: (table name, column names, matrix type), case-normalized
CacheKey = "tuple[str, tuple[str, ...], MatrixType]"


@dataclass
class _CacheEntry:
    """One cached summary plus the freshness snapshot it was taken at."""

    summary: IncrementalSummary
    #: the Table *object* the entry was built against; a DROP/CREATE of
    #: the same name yields a new object, which must read as a miss
    table: "Table"
    #: ``table.version`` as of the last (re)build or refresh
    version: int


@dataclass
class _JoinCacheEntry:
    """A factorized-join summary plus per-base-table freshness snapshots.

    Join-derived statistics have no incremental watermark (an appended
    *dimension* row can retroactively match old fact rows), so freshness
    is all-or-nothing: every base table must still be the same object at
    the same version, else the entry is a miss and is rebuilt.
    """

    stats: SummaryStatistics
    #: ``[(Table object, version at build time), ...]`` — fact and every
    #: dimension table; object identity catches DROP/CREATE of the name
    tables: "list[tuple[Table, int]]"
    #: joined-row input reads the factorized build avoided (re-reported
    #: on every hit so metrics stay meaningful for cache-served runs)
    rows_avoided: int


class SummaryCache:
    """Shared cache of :class:`SummaryStatistics` keyed per table/columns.

    Not thread-safe by design: statements execute on the coordinating
    thread (only partition scans fan out), so lookups are serial.

    Besides single-table entries, the cache holds **join entries** for
    factorized star-join summaries, keyed on the full join shape (fact
    table, every dimension arm, argument sources, matrix type) and
    validated against *every* base table's version — an append to any
    dimension table invalidates the entry, because new dimension rows
    can match existing fact rows.
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        #: flipped by ``Database.summary_cache_enabled``; the executor
        #: checks it before considering any statement for serving
        self.enabled = True
        self._entries: "dict[CacheKey, _CacheEntry]" = {}
        self._join_entries: "dict[tuple, _JoinCacheEntry]" = {}
        #: lifetime counters (per-statement deltas live in QueryMetrics)
        self.hits = 0
        self.misses = 0
        # DROP TABLE (and DROP/CREATE of the same name) makes every
        # entry for that name permanently dead — the identity check can
        # never pass again — so evict eagerly instead of leaking them
        # for the life of the session.
        db.catalog.add_drop_listener(self.invalidate)

    @staticmethod
    def _key(
        table: str, dimensions: Sequence[str], matrix_type: MatrixType
    ) -> "CacheKey":
        return (
            table.lower(),
            tuple(name.lower() for name in dimensions),
            matrix_type,
        )

    def __len__(self) -> int:
        return len(self._entries) + len(self._join_entries)

    # ------------------------------------------------------------- lookup
    def lookup(
        self,
        table: str,
        dimensions: Sequence[str],
        matrix_type: MatrixType,
    ) -> "tuple[SummaryStatistics, bool, int]":
        """The summary for *(table, dimensions, matrix_type)*.

        Returns ``(stats, hit, rows_refreshed)``: *hit* is whether an
        existing entry served the call (possibly after an incremental
        watermark refresh of ``rows_refreshed`` appended rows); a miss
        builds the entry with one full scan (``rows_refreshed`` = the
        table's rows) so the next call is free.
        """
        table_obj = self._db.table(table)
        key = self._key(table, dimensions, matrix_type)
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.table is table_obj
            and entry.version >= table_obj.data_version
        ):
            if entry.version == table_obj.version:
                self.hits += 1
                return entry.summary.stats, True, 0
            # Appends only since the entry was built: fold in the
            # watermarked suffix, not the whole table.
            refreshed = entry.summary.pending_rows()
            entry.summary.refresh()
            entry.version = table_obj.version
            self.hits += 1
            return entry.summary.stats, True, refreshed
        summary = IncrementalSummary(self._db, table, dimensions, matrix_type)
        refreshed = summary.pending_rows()
        summary.refresh()
        self._entries[key] = _CacheEntry(summary, table_obj, table_obj.version)
        self.misses += 1
        return summary.stats, False, refreshed

    def probe(
        self,
        table: str,
        dimensions: Sequence[str],
        matrix_type: MatrixType,
    ) -> "tuple[str, int]":
        """Non-mutating freshness check for EXPLAIN annotations.

        Returns ``(status, pending_rows)`` where status is ``"hit"``
        (served with zero rows scanned), ``"stale"`` (served after an
        incremental refresh of *pending_rows*) or ``"miss"`` (a full
        scan would build the entry).
        """
        table_obj = self._db.table(table)
        entry = self._entries.get(self._key(table, dimensions, matrix_type))
        if (
            entry is not None
            and entry.table is table_obj
            and entry.version >= table_obj.data_version
        ):
            if entry.version == table_obj.version:
                return "hit", 0
            return "stale", entry.summary.pending_rows()
        return "miss", table_obj.row_count

    def peek(
        self,
        table: "Table",
        dimensions: Sequence[str],
        matrix_type: MatrixType,
        version: int,
    ) -> "SummaryStatistics | None":
        """The cached summary if one exists at exactly *version*, else None.

        Unlike :meth:`lookup` this never scans, never refreshes, and
        never mutates the cache — it is safe to call from serving
        threads while writers advance the table.  A serving session
        whose snapshot pinned ``table.version == version`` can use the
        returned stats as a zero-scan snapshot-consistent read; any
        other state (missing entry, different version, a dropped and
        recreated table) returns None and the caller computes from its
        own pinned snapshot.
        """
        entry = self._entries.get(
            self._key(table.name, dimensions, matrix_type)
        )
        if entry is None or entry.table is not table:
            return None
        if entry.version != version:
            return None
        return entry.summary.stats

    # ------------------------------------------------------- join entries
    @staticmethod
    def _join_fresh(
        entry: "_JoinCacheEntry", tables: Sequence["Table"]
    ) -> bool:
        """Fresh only if *every* base table is the same object at the
        same version it was built against — no incremental path exists
        for join-derived summaries (see :class:`_JoinCacheEntry`)."""
        if len(entry.tables) != len(tables):
            return False
        return all(
            cached is current and version == current.version
            for (cached, version), current in zip(entry.tables, tables)
        )

    def lookup_join(
        self, key: "tuple", tables: Sequence["Table"]
    ) -> "tuple[SummaryStatistics, int] | None":
        """The cached factorized summary, or None when a build is needed.

        *key* is the executor's join-shape key; *tables* are the live
        base-table objects (fact first is not required — order just has
        to match :meth:`store_join`).  A hit returns ``(stats,
        rows_avoided)`` and counts toward :attr:`hits`; misses are
        counted by the :meth:`store_join` that follows the rebuild.
        """
        entry = self._join_entries.get(key)
        if entry is None or not self._join_fresh(entry, tables):
            return None
        self.hits += 1
        return entry.stats, entry.rows_avoided

    def store_join(
        self,
        key: "tuple",
        tables: Sequence["Table"],
        stats: SummaryStatistics,
        rows_avoided: int,
    ) -> None:
        """Record a freshly built factorized summary (counts a miss)."""
        self._join_entries[key] = _JoinCacheEntry(
            stats=stats,
            tables=[(table, table.version) for table in tables],
            rows_avoided=int(rows_avoided),
        )
        self.misses += 1

    def probe_join(self, key: "tuple", tables: Sequence["Table"]) -> str:
        """Non-mutating freshness check for EXPLAIN annotations:
        ``"hit"`` (zero rows scanned) or ``"miss"`` (full factorized
        build, which warms the entry)."""
        entry = self._join_entries.get(key)
        if entry is not None and self._join_fresh(entry, tables):
            return "hit"
        return "miss"

    # -------------------------------------------------------- maintenance
    def invalidate(self, table: "str | None" = None) -> int:
        """Drop entries for *table* (or everything); returns the count.

        Version checks already make stale answers impossible — this is
        for reclaiming memory or forcing a cold rebuild in benchmarks.
        """
        if table is None:
            dropped = len(self._entries) + len(self._join_entries)
            self._entries.clear()
            self._join_entries.clear()
            return dropped
        key_prefix = table.lower()
        victims = [key for key in self._entries if key[0] == key_prefix]
        for key in victims:
            del self._entries[key]
        # A join entry references the dropped name as fact table (key[0])
        # or as any dimension arm (key[1] holds (dim table, fk, pk)
        # triples) — either way it can never validate again.
        join_victims = [
            key
            for key in self._join_entries
            if key[0] == key_prefix
            or any(dim[0] == key_prefix for dim in key[1])
        ]
        for key in join_victims:
            del self._join_entries[key]
        return len(victims) + len(join_victims)
