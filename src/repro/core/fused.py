"""Fused single-scan clustering iterations as aggregate UDFs.

Clustering is the one technique the paper cannot finish in one scan
(Section 3.2): every iteration must *assign* points to clusters and
then *re-aggregate* per-cluster sufficient statistics.  The DBMS-driven
loop therefore traditionally pays two scans per iteration — a
scoring-UDF assignment pass plus a GROUP BY nLQ pass — or at best one
GROUP BY scan whose group key re-evaluates the assignment expression
row by row.

This module fuses the two stages into **one model-parameterized
aggregate UDF per algorithm**:

* :class:`KMeansIterUdf` — ``kmeansiter(d, x1, ..., xd)``.  The driver
  installs the current centroids on the UDF between statements; each
  partition task takes its cached numpy block, computes
  nearest-centroid assignments with the same batched kernel arithmetic
  as ``kmeansdistance``/``clusterscore``, and accumulates per-cluster
  ``(N_j, L_j, Q_j)`` by slicing the block per cluster — exactly the
  arithmetic the GROUP BY nLQ path performs, so the resulting model is
  bit-identical given identical assignments.
* :class:`EmIterUdf` — ``emiter(d, x1, ..., xd)``.  Same shape for EM:
  the E step's responsibilities are computed in-block (reusing
  :class:`~repro.core.models.em_mixture.GaussianMixtureModel`'s
  log-sum-exp kernel) and fold into *weighted* per-cluster summaries
  plus the running log-likelihood.

One engine task per partition, partial states merged in partition
order — each K-means/EM iteration is **one scan with zero materialized
assignment tables**.  ``finalize`` packs every cluster's summary into a
single string (clusters joined by :data:`CLUSTER_SEPARATOR`; EM
prepends the log-likelihood), decoded by :func:`unpack_fused_payload`.

The drivers live on the models themselves:
:meth:`KMeansModel.fit_dbms <repro.core.models.kmeans.KMeansModel.fit_dbms>`
and :meth:`GaussianMixtureModel.fit_dbms
<repro.core.models.em_mixture.GaussianMixtureModel.fit_dbms>`.

Thread-safety: the engine calls ``accumulate_block`` concurrently from
worker threads with per-partition states; accumulation mutates only the
passed state and *reads* the installed model parameters, which the
drivers change only between statements.  The ``udf.fused_iter`` fault
site fires inside each vectorized partition task running one of these
UDFs (see ``docs/fault_tolerance.md``).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import factorized as factorized_math
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.packing import SECTION_SEPARATOR, pack_summary, unpack_summary
from repro.core.scoring.udfs import squared_distance_block
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.udf import AggregateUdf, RowCost
from repro.errors import UdfArgumentError

#: joins per-cluster packed summaries inside one fused payload (must
#: differ from every separator ``pack_summary`` itself uses)
CLUSTER_SEPARATOR = "#"


class _FusedState:
    """Per-partition partial: per-cluster (N_j, L_j, Q_j diag) + extra.

    Shapes are fixed at :meth:`initialize` time — unlike the nLQ state,
    the model parameters pin ``k`` and ``d`` before the first row.
    ``extra`` carries EM's partial log-likelihood (0.0 for K-means).
    """

    __slots__ = ("k", "d", "counts", "linear", "quadratic", "extra")

    def __init__(self, k: int, d: int) -> None:
        self.k = k
        self.d = d
        self.counts = np.zeros(k)
        self.linear = np.zeros((k, d))
        self.quadratic = np.zeros((k, d))
        self.extra = 0.0


class _FusedIterUdf(AggregateUdf):
    """Shared machinery of the fused clustering-iteration UDFs."""

    supports_block = True
    #: marks the UDF for the ``udf.fused_iter`` fault site and the
    #: fused-iteration EXPLAIN ANALYZE annotations
    fault_site = "udf.fused_iter"
    fused_iteration = True

    def __init__(self, name: str) -> None:
        super().__init__(name)
        #: dimensionality seen during the last scan (costing only; the
        #: benign last-writer-wins race is the same as the nLQ UDFs')
        self._observed_d = 0

    # ---------------------------------------------------------- parameters
    @property
    def k(self) -> int:
        raise NotImplementedError

    @property
    def d(self) -> int:
        raise NotImplementedError

    def _require_parameters(self) -> None:
        if self.parameterized:
            return
        raise UdfArgumentError(
            f"UDF {self.name!r} has no model parameters installed; call "
            "set_centroids()/set_model() before the scan"
        )

    @property
    def parameterized(self) -> bool:
        raise NotImplementedError

    # --------------------------------------------------------------- phases
    def initialize(self) -> _FusedState:
        self._require_parameters()
        self.ensure_state_fits(self.state_value_count())
        return _FusedState(self.k, self.d)

    def _check_block(self, state: _FusedState, block: np.ndarray) -> np.ndarray:
        d = int(block[0, 0])
        if block.shape[1] - 1 != d:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared d={d} but received "
                f"{block.shape[1] - 1} point values"
            )
        if d != state.d:
            raise UdfArgumentError(
                f"UDF {self.name!r} is parameterized for d={state.d} but "
                f"received {d}-dimensional points"
            )
        self._observed_d = d
        return block[:, 1:]

    def _check_row(self, state: _FusedState, args: Sequence[Any]) -> list[float]:
        if len(args) < 2:
            raise UdfArgumentError(
                f"UDF {self.name!r} needs (d, x1, ..., xd); got {len(args)} args"
            )
        d = int(args[0])
        values = [float(v) for v in args[1:]]
        if len(values) != d:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared d={d} but received "
                f"{len(values)} point values"
            )
        if d != state.d:
            raise UdfArgumentError(
                f"UDF {self.name!r} is parameterized for d={state.d} but "
                f"received {d}-dimensional points"
            )
        self._observed_d = d
        return values

    def merge(self, state: _FusedState, other: _FusedState) -> _FusedState:
        state.counts += other.counts
        state.linear += other.linear
        state.quadratic += other.quadratic
        state.extra += other.extra
        return state

    # ----------------------------------------------------- factorized joins
    def _check_factorized_sources(self, sources: Sequence[Any]) -> None:
        """Factorized calls pass the same (d, x1..xd) shape; the planner
        already stripped the leading literal d, so *sources* must line up
        with the installed model's dimensionality."""
        self._require_parameters()
        if len(sources) != self.d:
            raise UdfArgumentError(
                f"UDF {self.name!r} is parameterized for d={self.d} but "
                f"the factorized call supplies {len(sources)} arguments"
            )
        self._observed_d = self.d

    def factorized_tables(
        self, sources: Sequence[Any], dim_values: Sequence[dict]
    ) -> dict:
        """Precomputed per-dimension-key partial tables (Rk-means)."""
        raise NotImplementedError  # pragma: no cover - subclasses override

    def state_from_factorized(
        self,
        counts: np.ndarray,
        linear: np.ndarray,
        quadratic: np.ndarray,
        extra: float,
    ) -> _FusedState:
        """Synthesize the finished state from factorized-combine output,
        so the ordinary :meth:`finalize` packs the exact payload a
        materialized-join scan would have produced."""
        state = self.initialize()
        state.counts += counts
        state.linear += linear
        state.quadratic += quadratic
        state.extra += float(extra)
        return state

    def _cluster_payloads(self, state: _FusedState) -> list[str]:
        payloads = []
        for j in range(state.k):
            stats = SummaryStatistics(
                n=float(state.counts[j]),
                L=state.linear[j].copy(),
                Q=np.diag(state.quadratic[j]),
                matrix_type=MatrixType.DIAGONAL,
            )
            payloads.append(pack_summary(stats))
        return payloads

    def finalize(self, state: _FusedState) -> str:
        return CLUSTER_SEPARATOR.join(self._cluster_payloads(state))

    # -------------------------------------------------------------- costing
    def state_value_count(self) -> int:
        """State size in 8-byte values: k, d, extra, and the three
        per-cluster arrays (counts + L + diagonal Q per cluster)."""
        if not self.parameterized:
            return 3
        return 3 + self.k * (1 + 2 * self.d)


class KMeansIterUdf(_FusedIterUdf):
    """One fused K-means iteration: assign + per-cluster (N, L, Q).

    ``accumulate_block`` replays the exact kernel arithmetic of the
    two-scan route — ``kmeansdistance``'s per-dimension
    ``diff * diff`` accumulation, ``clusterscore``'s 1-based arg-min —
    and then the GROUP BY nLQ path's per-cluster masked-slice sums, so
    fused and two-scan iterations produce bit-identical summaries.
    """

    def __init__(self, name: str = "kmeansiter") -> None:
        super().__init__(name)
        self._centroids: np.ndarray | None = None

    def set_centroids(self, centroids: np.ndarray) -> None:
        """Install the iteration's centroids (k × d); called by the
        driver between statements, never during a scan."""
        matrix = np.array(centroids, dtype=float)
        if matrix.ndim != 2:
            raise UdfArgumentError("centroids must be a (k, d) matrix")
        self._centroids = matrix

    @property
    def parameterized(self) -> bool:
        return self._centroids is not None

    @property
    def k(self) -> int:
        self._require_parameters()
        return int(self._centroids.shape[0])

    @property
    def d(self) -> int:
        self._require_parameters()
        return int(self._centroids.shape[1])

    # --------------------------------------------------------------- phases
    def accumulate_block(
        self, state: _FusedState, block: np.ndarray
    ) -> _FusedState:
        if block.shape[0] == 0:
            return state
        X = self._check_block(state, block)
        centroids = self._centroids
        distances = np.empty((X.shape[0], state.k))
        for j in range(state.k):
            distances[:, j] = squared_distance_block(X, centroids[j])
        labels = np.argmin(distances, axis=1) + 1
        for j in range(1, state.k + 1):
            members = X[labels == j]
            if not members.shape[0]:
                continue
            state.counts[j - 1] += float(members.shape[0])
            state.linear[j - 1] += members.sum(axis=0)
            state.quadratic[j - 1] += (members * members).sum(axis=0)
        return state

    def accumulate(self, state: _FusedState, args: Sequence[Any]) -> _FusedState:
        values = self._check_row(state, args)
        centroids = self._centroids
        # Row-path reference arithmetic: kmeansdistance's generator-sum
        # of squared differences, clusterscore's strict-< first-minimum
        # over 1-based subscripts.
        best_j = 1
        best = sum(
            (xa - ca) ** 2 for xa, ca in zip(values, centroids[0])
        )
        for j in range(2, state.k + 1):
            distance = sum(
                (xa - ca) ** 2 for xa, ca in zip(values, centroids[j - 1])
            )
            if distance < best:
                best = distance
                best_j = j
        point = np.asarray(values)
        state.counts[best_j - 1] += 1.0
        state.linear[best_j - 1] += point
        state.quadratic[best_j - 1] += point * point
        return state

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = self._observed_d or (self.d if self.parameterized else 1)
        k = self.k if self.parameterized else 1
        # k distances (3d ops each) + arg-min (k) + the nLQ update (2d+1).
        return RowCost(
            list_params=arg_count, arith_ops=3 * d * k + k + 2 * d + 1
        )

    def factorized_tables(
        self, sources: Sequence[Any], dim_values: Sequence[dict]
    ) -> dict:
        self._check_factorized_sources(sources)
        return factorized_math.prepare_kmeans_tables(
            self._centroids, sources, dim_values
        )


class EmIterUdf(_FusedIterUdf):
    """One fused EM iteration: E step + weighted per-cluster summaries.

    The block kernel reuses the model's own log-sum-exp E step, then
    folds responsibilities into ``N_j = Σ r_ij``, ``L_j = Σ r_ij x_i``,
    ``Q_j(diag) = Σ r_ij x_i²`` and the partial log-likelihood.  Partial
    matrix products are summed in partition order, so the fused M-step
    inputs match an in-memory fit to float merge-order (not bitwise —
    a full-matrix ``resp.T @ X`` associates differently than
    per-partition partials).
    """

    def __init__(self, name: str = "emiter") -> None:
        super().__init__(name)
        self._model: GaussianMixtureModel | None = None

    def set_model(self, model: GaussianMixtureModel) -> None:
        """Install the iteration's mixture parameters; called by the
        driver between statements, never during a scan."""
        self._model = GaussianMixtureModel(
            means=np.array(model.means, dtype=float),
            variances=np.array(model.variances, dtype=float),
            weights=np.array(model.weights, dtype=float),
        )

    @property
    def parameterized(self) -> bool:
        return self._model is not None

    @property
    def k(self) -> int:
        self._require_parameters()
        return self._model.k

    @property
    def d(self) -> int:
        self._require_parameters()
        return self._model.d

    # --------------------------------------------------------------- phases
    def _fold(self, state: _FusedState, X: np.ndarray) -> None:
        log_resp, log_likelihood = self._model._e_step(X)
        responsibilities = np.exp(log_resp)
        state.counts += responsibilities.sum(axis=0)
        state.linear += responsibilities.T @ X
        state.quadratic += responsibilities.T @ (X * X)
        state.extra += log_likelihood

    def accumulate_block(
        self, state: _FusedState, block: np.ndarray
    ) -> _FusedState:
        if block.shape[0] == 0:
            return state
        self._fold(state, self._check_block(state, block))
        return state

    def accumulate(self, state: _FusedState, args: Sequence[Any]) -> _FusedState:
        values = self._check_row(state, args)
        self._fold(state, np.asarray(values).reshape(1, -1))
        return state

    def finalize(self, state: _FusedState) -> str:
        # The log-likelihood rides as a leading bare float segment; it
        # can never be mistaken for a cluster payload because packed
        # summaries always contain section separators.
        return CLUSTER_SEPARATOR.join(
            [repr(state.extra), *self._cluster_payloads(state)]
        )

    def state_value_count(self) -> int:
        return super().state_value_count() + 1

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = self._observed_d or (self.d if self.parameterized else 1)
        k = self.k if self.parameterized else 1
        # Per component: densities (~3d), softmax (~4), weighted updates
        # (~2d); plus the row's log-sum-exp bookkeeping.
        return RowCost(
            list_params=arg_count, arith_ops=k * (5 * d + 4) + 2 * d + 3
        )

    def factorized_tables(
        self, sources: Sequence[Any], dim_values: Sequence[dict]
    ) -> dict:
        self._check_factorized_sources(sources)
        model = self._model
        return factorized_math.prepare_em_tables(
            model.means, model.variances, model.weights, sources, dim_values
        )


#: registration names for the fused iteration UDFs
FUSED_UDF_NAMES = ("kmeansiter", "emiter")


def register_fused_udfs(db: Database) -> "dict[str, _FusedIterUdf]":
    """Register (or fetch already-registered) fused UDFs on *db*.

    Unlike the stateless nLQ UDFs, the fused UDFs carry model
    parameters between statements, so drivers must talk to the catalog's
    instances — re-registration would silently orphan installed
    parameters, hence register-if-missing semantics.
    """
    registered: dict[str, _FusedIterUdf] = {}
    for name, udf_class in (
        ("kmeansiter", KMeansIterUdf),
        ("emiter", EmIterUdf),
    ):
        existing = db.catalog.aggregate_udf(name)
        if existing is None:
            existing = udf_class(name)
            db.register_udf(existing)
        registered[name] = existing
    return registered


def fused_call_sql(udf_name: str, table: str, dimensions: Sequence[str]) -> str:
    """The one-scan SELECT driving a fused iteration over *table*."""
    args = ", ".join([str(len(dimensions)), *dimensions])
    return f"SELECT {udf_name}({args}) FROM {table}"


def unpack_fused_payload(
    payload: str,
) -> "tuple[dict[int, SummaryStatistics], float | None]":
    """Decode a fused payload into per-cluster summaries (+ EM's ll).

    Returns ``(groups, extra)`` where *groups* maps 1-based cluster
    subscripts to their summaries — empty clusters (``n == 0``) are
    omitted, matching what a GROUP BY query would return — and *extra*
    is the leading log-likelihood segment when present (EM), else None.
    """
    pieces = payload.split(CLUSTER_SEPARATOR)
    extra: float | None = None
    if pieces and SECTION_SEPARATOR not in pieces[0]:
        extra = float(pieces[0])
        pieces = pieces[1:]
    groups: dict[int, SummaryStatistics] = {}
    for j, piece in enumerate(pieces, start=1):
        stats = unpack_summary(piece)
        if stats.n > 0:
            groups[j] = stats
    return groups, extra


def assignment_expression(
    dimensions: Sequence[str], centroids: np.ndarray
) -> str:
    """The two-scan route's assignment expression: ``clusterscore`` over
    per-centroid ``kmeansdistance`` calls with the centroids inlined as
    float literals (``repr`` round-trips exactly, so the SQL carries the
    precise binary values)."""
    xs = ", ".join(dimensions)
    distances = []
    for centroid in np.asarray(centroids, dtype=float):
        cs = ", ".join(repr(float(value)) for value in centroid)
        distances.append(f"kmeansdistance({xs}, {cs})")
    return f"clusterscore({', '.join(distances)})"
