"""Data profiling from the summary matrices: histograms and outliers.

The aggregate UDF tracks each dimension's minimum and maximum alongside
(n, L, Q) "to detect outliers or build histograms" (paper, Section 3.4).
This module is that use case:

* :func:`profile_table` — one UDF scan yields per-dimension mean,
  variance, extrema and a z-score range;
* :class:`HistogramBuilder` — equi-width histograms computed *inside*
  the DBMS with a generated GROUP BY query (the bin index is an
  arithmetic expression over the extrema from the profile), one scan
  for any number of dimensions' histograms;
* :func:`outlier_sql` / :func:`find_outliers` — a generated one-scan
  filter selecting points whose z-score exceeds a threshold in any
  dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.nlq_udf import compute_nlq_udf
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.errors import ModelError


@dataclass(frozen=True)
class DimensionProfile:
    """Per-dimension statistics from one scan."""

    name: str
    mean: float
    variance: float
    minimum: float
    maximum: float

    @property
    def std(self) -> float:
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def value_range(self) -> float:
        return self.maximum - self.minimum

    def zscore(self, value: float) -> float:
        if self.std == 0:
            raise ModelError(f"dimension {self.name!r} has zero variance")
        return (value - self.mean) / self.std


def profile_table(
    db: Database,
    table: str,
    dimensions: Sequence[str],
    stats: SummaryStatistics | None = None,
) -> dict[str, DimensionProfile]:
    """Profile every dimension from a single diagonal-Q UDF scan.

    Pass a precomputed *stats* (with extrema) to skip the scan.
    """
    if stats is None:
        stats = compute_nlq_udf(
            db, table, list(dimensions), MatrixType.DIAGONAL
        )
    if stats.mins is None or stats.maxs is None:
        raise ModelError("summary lacks extrema; recompute via the UDF")
    if stats.n == 0:
        raise ModelError(f"table {table!r} is empty")
    means = stats.mean()
    variances = stats.variances()
    return {
        name: DimensionProfile(
            name,
            float(means[index]),
            float(variances[index]),
            float(stats.mins[index]),
            float(stats.maxs[index]),
        )
        for index, name in enumerate(dimensions)
    }


# ------------------------------------------------------------------ histogram
@dataclass
class Histogram:
    """Equi-width bin counts for one dimension."""

    dimension: str
    edges: np.ndarray  # bins + 1 edges
    counts: np.ndarray  # bins

    @property
    def bins(self) -> int:
        return int(self.counts.shape[0])

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    def densities(self) -> np.ndarray:
        """Counts normalized to fractions."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total

    def mode_bin(self) -> tuple[float, float]:
        """The (low, high) edges of the most populated bin."""
        index = int(np.argmax(self.counts))
        return float(self.edges[index]), float(self.edges[index + 1])


class HistogramBuilder:
    """Generates and runs in-DBMS equi-width histogram queries."""

    def __init__(self, db: Database, table: str) -> None:
        self._db = db
        self._table = table

    def bin_expression(
        self, dimension: str, profile: DimensionProfile, bins: int
    ) -> str:
        """The bin-index expression: floor((x − min) / width), clamped
        into [0, bins−1] so the maximum lands in the last bin."""
        if bins < 1:
            raise ModelError(f"bins must be >= 1, got {bins}")
        width = profile.value_range / bins
        if width <= 0:
            # Constant dimension: everything in bin 0.
            return "0"
        return (
            f"least(floor(({dimension} - {profile.minimum!r}) / {width!r}), "
            f"{float(bins - 1)!r})"
        )

    def histogram_sql(
        self, dimension: str, profile: DimensionProfile, bins: int
    ) -> str:
        expression = self.bin_expression(dimension, profile, bins)
        return (
            f"SELECT {expression} AS bin, count(*) AS tally "
            f"FROM {self._table} GROUP BY {expression} ORDER BY bin"
        )

    def build(
        self, dimension: str, profile: DimensionProfile, bins: int = 10
    ) -> Histogram:
        result = self._db.execute(self.histogram_sql(dimension, profile, bins))
        counts = np.zeros(bins)
        for bin_value, tally in result.rows:
            if bin_value is None:
                continue  # NULL values fall outside every bin
            counts[int(bin_value)] += tally
        if profile.value_range > 0:
            edges = np.linspace(profile.minimum, profile.maximum, bins + 1)
        else:
            edges = np.asarray([profile.minimum, profile.maximum + 1.0])
            counts = counts[:1]
        return Histogram(dimension, edges, counts)

    def build_all(
        self,
        profiles: dict[str, DimensionProfile],
        bins: int = 10,
    ) -> dict[str, Histogram]:
        """Histograms for every profiled dimension in one statement
        (all bin expressions share a single scan via one SELECT with
        multiple group keys is not expressible; we issue one query per
        dimension but note the synchronized-scan optimization would
        batch them on the paper's platform)."""
        return {
            name: self.build(name, profile, bins)
            for name, profile in profiles.items()
        }


# -------------------------------------------------------------------- outliers
def outlier_sql(
    table: str,
    id_column: str,
    profiles: dict[str, DimensionProfile],
    threshold: float = 3.0,
) -> str:
    """One-scan filter: points with |z| > threshold in any dimension."""
    if not profiles:
        raise ModelError("no dimension profiles supplied")
    conditions = []
    for name, profile in profiles.items():
        if profile.std == 0:
            continue
        low = profile.mean - threshold * profile.std
        high = profile.mean + threshold * profile.std
        conditions.append(f"{name} < {low!r} OR {name} > {high!r}")
    if not conditions:
        raise ModelError("every dimension has zero variance")
    predicate = " OR ".join(f"({c})" for c in conditions)
    return f"SELECT {id_column} FROM {table} WHERE {predicate}"


def find_outliers(
    db: Database,
    table: str,
    id_column: str,
    profiles: dict[str, DimensionProfile],
    threshold: float = 3.0,
) -> list:
    """Ids of points beyond *threshold* standard deviations anywhere."""
    result = db.execute(outlier_sql(table, id_column, profiles, threshold))
    return sorted(row[0] for row in result.rows)
