"""Scalar scoring UDFs (paper, Section 3.5).

Once a model is stored in its relational layout, scoring a data set is a
single SELECT whose scalar UDFs evaluate the model equation per row:

* :class:`LinearRegScoreUdf` — ``linearregscore(x1..xd, b0, b1..bd)``
  returns ŷ = βᵀx: one dot product per row, called once.
* :class:`FaScoreUdf` — ``fascore(x1..xd, mu1..mud, l1j..ldj)`` returns
  the jth coordinate of x′ = Λᵀ(x − µ); because UDFs cannot return
  vectors it is called k times in the same SELECT.
* :class:`KMeansDistanceUdf` — ``kmeansdistance(x1..xd, c1j..cdj)``
  returns the squared Euclidean distance to centroid j.
* :class:`ClusterScoreUdf` — ``clusterscore(d1..dk)`` returns the
  1-based subscript J of the minimum distance: the cluster score.

All are variadic (the engine imposes no parameter-count cap of its own;
the *paper's* observation that some DBMSs cap parameters is modeled by
the string-passing aggregate variant instead).  NULL inputs yield NULL,
as SQL scalar functions do.

Every UDF also implements :meth:`~repro.dbms.udf.ScalarUdf.compute_batch`
so the block-wise SELECT path can score a whole partition block with
dense numpy kernels instead of one Python call per row.  The kernels
are written for **bit-identical** results against :meth:`compute`:
sums accumulate per dimension from a zero vector (matching the row
path's left-associated ``sum()``), squares use ``diff * diff``, and
NULL rows (any NaN argument) come out NaN — the executor restores them
to None.  Argument-count validation is shared between both paths.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dbms.database import Database
from repro.dbms.udf import RowCost, ScalarUdf
from repro.errors import UdfArgumentError


def squared_distance_block(X: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance of each row of *X* to *centroid*.

    The shared kernel behind :class:`KMeansDistanceUdf` and the fused
    clustering iteration (:mod:`repro.core.fused`): per-dimension
    accumulation from a zero vector with ``diff * diff``, replaying the
    row path's left-associated ``sum((xa - ca) ** 2)`` bit for bit.
    *centroid* may be a 1-D vector (broadcast against every row) or an
    ``(n, d)`` matrix of per-row centroid columns — subtracting a scalar
    produces the same IEEE bits as subtracting a constant-filled column,
    so both call shapes agree exactly.
    """
    d = X.shape[1]
    acc = np.zeros(X.shape[0])
    for a in range(d):
        diff = X[:, a] - centroid[..., a]
        # diff * diff, not diff ** 2: a correctly rounded pow(x, 2)
        # equals x * x, matching the row path's ``(xa - ca) ** 2``.
        acc += diff * diff
    return acc


def _floats(args: tuple[Any, ...], udf_name: str) -> "list[float] | None":
    """Validate numeric arguments; None (any NULL in → NULL out)."""
    values: list[float] = []
    for value in args:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise UdfArgumentError(
                f"UDF {udf_name!r} expects numeric arguments, got "
                f"{type(value).__name__}"
            )
        values.append(float(value))
    return values


class LinearRegScoreUdf(ScalarUdf):
    """ŷ = β₀ + Σ βₐ·xₐ from 2d + 1 scalar parameters."""

    supports_batch = True

    def __init__(self, name: str = "linearregscore") -> None:
        super().__init__(name)

    def _validate_count(self, count: int) -> None:
        if count < 3 or count % 2 == 0:
            raise UdfArgumentError(
                f"UDF {self.name!r} expects (x1..xd, b0, b1..bd) — an odd "
                f"count of at least 3 arguments, got {count}"
            )

    def compute(self, *args: Any) -> Any:
        self._validate_count(len(args))
        values = _floats(args, self.name)
        if values is None:
            return None
        d = (len(values) - 1) // 2
        x = values[:d]
        intercept = values[d]
        beta = values[d + 1 :]
        return intercept + sum(b * v for b, v in zip(beta, x))

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        self._validate_count(args.shape[1])
        d = (args.shape[1] - 1) // 2
        # Per-dimension accumulation from zero replays the row path's
        # sum() association exactly; NaN (NULL) propagates through the
        # arithmetic, so NULL rows come out NaN with no extra masking.
        acc = np.zeros(args.shape[0])
        for a in range(d):
            acc += args[:, d + 1 + a] * args[:, a]
        return args[:, d] + acc

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = (arg_count - 1) // 2
        return RowCost(list_params=arg_count, arith_ops=d)


class FaScoreUdf(ScalarUdf):
    """One coordinate of x′ = Λᵀ(x − µ): Σ (xₐ − µₐ)·Λₐⱼ from 3d params."""

    supports_batch = True

    def __init__(self, name: str = "fascore") -> None:
        super().__init__(name)

    def _validate_count(self, count: int) -> None:
        if count < 3 or count % 3 != 0:
            raise UdfArgumentError(
                f"UDF {self.name!r} expects (x1..xd, mu1..mud, l1j..ldj) — "
                f"a multiple of 3 arguments, got {count}"
            )

    def compute(self, *args: Any) -> Any:
        self._validate_count(len(args))
        values = _floats(args, self.name)
        if values is None:
            return None
        d = len(values) // 3
        x = values[:d]
        mu = values[d : 2 * d]
        component = values[2 * d :]
        return sum((xa - ma) * la for xa, ma, la in zip(x, mu, component))

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        self._validate_count(args.shape[1])
        d = args.shape[1] // 3
        acc = np.zeros(args.shape[0])
        for a in range(d):
            acc += (args[:, a] - args[:, d + a]) * args[:, 2 * d + a]
        return acc

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = arg_count // 3
        return RowCost(list_params=arg_count, arith_ops=2 * d)


class KMeansDistanceUdf(ScalarUdf):
    """Squared Euclidean distance (x − Cⱼ)ᵀ(x − Cⱼ) from 2d params."""

    supports_batch = True

    def __init__(self, name: str = "kmeansdistance") -> None:
        super().__init__(name)

    def _validate_count(self, count: int) -> None:
        if count < 2 or count % 2 != 0:
            raise UdfArgumentError(
                f"UDF {self.name!r} expects (x1..xd, c1j..cdj) — an even "
                f"count of arguments, got {count}"
            )

    def compute(self, *args: Any) -> Any:
        self._validate_count(len(args))
        values = _floats(args, self.name)
        if values is None:
            return None
        d = len(values) // 2
        return sum(
            (xa - ca) ** 2 for xa, ca in zip(values[:d], values[d:])
        )

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        self._validate_count(args.shape[1])
        d = args.shape[1] // 2
        return squared_distance_block(args[:, :d], args[:, d:])

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = arg_count // 2
        return RowCost(list_params=arg_count, arith_ops=2 * d)


class ClusterScoreUdf(ScalarUdf):
    """J such that d_J ≤ d_j for all j — the nearest-centroid subscript."""

    supports_batch = True
    batch_integer_result = True

    def __init__(self, name: str = "clusterscore") -> None:
        super().__init__(name)

    def compute(self, *args: Any) -> Any:
        if not args:
            raise UdfArgumentError(f"UDF {self.name!r} needs at least one distance")
        values = _floats(args, self.name)
        if values is None:
            return None
        best_j = 1
        best = values[0]
        for j, distance in enumerate(values[1:], start=2):
            if math.isnan(distance):
                raise UdfArgumentError(f"UDF {self.name!r} received NaN distance")
            if distance < best:
                best, best_j = distance, j
        return best_j

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        # In a block, NaN can only mean NULL (numeric_matrix maps None
        # to NaN), so NULL rows come out NaN rather than raising the row
        # path's literal-NaN error.
        if args.shape[1] < 1:
            raise UdfArgumentError(f"UDF {self.name!r} needs at least one distance")
        null_rows = np.isnan(args).any(axis=1)
        # +inf padding keeps argmin's first-minimum tie-break identical
        # to the row path's strict ``<``.
        safe = np.where(np.isnan(args), np.inf, args)
        result = (np.argmin(safe, axis=1) + 1).astype(float)
        result[null_rows] = np.nan
        return result

    def cost_per_row(self, arg_count: int) -> RowCost:
        return RowCost(list_params=arg_count, arith_ops=arg_count)


class ClassifyScoreUdf(ScalarUdf):
    """J such that s_J ≥ s_j for all j — arg-max over class scores.

    The classification twin of :class:`ClusterScoreUdf` (which arg-mins
    distances): Naive Bayes and LDA both score a point per class and
    pick the largest discriminant.
    """

    supports_batch = True
    batch_integer_result = True

    def __init__(self, name: str = "classifyscore") -> None:
        super().__init__(name)

    def compute(self, *args: Any) -> Any:
        if not args:
            raise UdfArgumentError(f"UDF {self.name!r} needs at least one score")
        values = _floats(args, self.name)
        if values is None:
            return None
        best_j = 1
        best = values[0]
        for j, score in enumerate(values[1:], start=2):
            if math.isnan(score):
                raise UdfArgumentError(f"UDF {self.name!r} received NaN score")
            if score > best:
                best, best_j = score, j
        return best_j

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        if args.shape[1] < 1:
            raise UdfArgumentError(f"UDF {self.name!r} needs at least one score")
        null_rows = np.isnan(args).any(axis=1)
        # −inf padding: argmax keeps the first maximum, the row path's
        # strict ``>`` tie-break.
        safe = np.where(np.isnan(args), -np.inf, args)
        result = (np.argmax(safe, axis=1) + 1).astype(float)
        result[null_rows] = np.nan
        return result

    def cost_per_row(self, arg_count: int) -> RowCost:
        return RowCost(list_params=arg_count, arith_ops=arg_count)


class NaiveBayesScoreUdf(ScalarUdf):
    """One class's Gaussian NB log-joint from 3d + 1 scalar parameters:

        nbscore(x1..xd, mu1..mud, iv1..ivd, bias)
            = bias − ½ Σ_a (x_a − µ_a)² · iv_a

    where ``iv`` is the precomputed inverse variance and ``bias`` folds
    log prior − ½ Σ log σ² − (d/2)·log 2π.  Called once per class in the
    same SELECT, exactly like ``fascore`` is called once per component.
    """

    supports_batch = True

    def __init__(self, name: str = "nbscore") -> None:
        super().__init__(name)

    def _validate_count(self, count: int) -> None:
        if count < 4 or (count - 1) % 3 != 0:
            raise UdfArgumentError(
                f"UDF {self.name!r} expects (x1..xd, mu1..mud, iv1..ivd, "
                f"bias) — 3d + 1 arguments, got {count}"
            )

    def compute(self, *args: Any) -> Any:
        self._validate_count(len(args))
        values = _floats(args, self.name)
        if values is None:
            return None
        d = (len(values) - 1) // 3
        x = values[:d]
        mu = values[d : 2 * d]
        inverse_variance = values[2 * d : 3 * d]
        bias = values[-1]
        quadratic = sum(
            (xa - ma) * (xa - ma) * iv
            for xa, ma, iv in zip(x, mu, inverse_variance)
        )
        return bias - 0.5 * quadratic

    def compute_batch(self, args: np.ndarray) -> np.ndarray:
        self._validate_count(args.shape[1])
        d = (args.shape[1] - 1) // 3
        acc = np.zeros(args.shape[0])
        for a in range(d):
            diff = args[:, a] - args[:, d + a]
            acc += (diff * diff) * args[:, 2 * d + a]
        return args[:, -1] - 0.5 * acc

    def cost_per_row(self, arg_count: int) -> RowCost:
        d = (arg_count - 1) // 3
        return RowCost(list_params=arg_count, arith_ops=3 * d)


def register_scoring_udfs(db: Database) -> dict[str, ScalarUdf]:
    """Register all six scoring UDFs on *db*; returns them by name."""
    udfs: dict[str, ScalarUdf] = {}
    for udf in (
        LinearRegScoreUdf(),
        FaScoreUdf(),
        KMeansDistanceUdf(),
        ClusterScoreUdf(),
        ClassifyScoreUdf(),
        NaiveBayesScoreUdf(),
    ):
        db.register_udf(udf)
        udfs[udf.name] = udf
    return udfs
