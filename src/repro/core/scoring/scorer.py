"""High-level scoring orchestration.

:class:`ModelScorer` stores a fitted model in its relational layout
(BETA / LAMBDA+MU / C+R+W — see :mod:`repro.core.models.base`) and runs
the single-scan scoring statement, via scalar UDFs or generated SQL
expressions.  Scores can be returned or inserted into a scored table,
which is the round trip the paper's introduction describes (score inside
the DBMS instead of exporting, scoring outside and importing back).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.models.base import store_matrix, store_vector
from repro.core.models.kmeans import KMeansModel
from repro.core.models.lda import LdaModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.models.pca import PCAModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.dbms.database import Database, QueryResult
from repro.dbms.schema import Column, TableSchema
from repro.dbms.types import SqlType
from repro.errors import ModelError


class ModelScorer:
    """Scores one data-set table against stored models."""

    def __init__(
        self,
        db: Database,
        table: str,
        dimensions: Sequence[str],
        id_column: str = "i",
    ) -> None:
        self._db = db
        self._generator = ScoringSqlGenerator(table, list(dimensions), id_column)

    @property
    def d(self) -> int:
        return self._generator.d

    # ------------------------------------------------------------ regression
    def store_regression(
        self, model: LinearRegressionModel, beta_table: str = "beta"
    ) -> None:
        """BETA(b0, b1, ..., bd): all coefficients in a single row/IO."""
        self._check_d(model.d)
        names = [f"b{a}" for a in range(model.d + 1)]
        store_vector(self._db, beta_table, model.beta, names)

    def score_regression(
        self, method: str = "udf", beta_table: str = "beta", into: str | None = None
    ) -> QueryResult:
        sql = (
            self._generator.regression_udf_sql(beta_table)
            if method == "udf"
            else self._generator.regression_expression_sql(beta_table)
        )
        return self._run(sql, into, [("yhat", SqlType.FLOAT)])

    # ------------------------------------------------------------------- PCA
    def store_pca(
        self,
        model: PCAModel,
        lambda_table: str = "lambda_",
        mu_table: str = "mu",
    ) -> None:
        """LAMBDA(j, x1..xd) with k rows and MU(x1..xd) with one row.

        For correlation-based PCA the per-dimension scale is folded into
        the stored components (Λ′ = Λ / σ), so the scoring equation stays
        the paper's x′ = Λᵀ(x − µ) regardless of how Λ was derived.
        """
        self._check_d(model.d)
        effective = model.components
        if model.scale is not None:
            effective = effective / model.scale[:, None]
        names = list(self._generator.dimensions)
        store_matrix(self._db, lambda_table, effective.T, names)
        store_vector(self._db, mu_table, model.mean, names)

    def score_pca(
        self,
        k: int,
        method: str = "udf",
        lambda_table: str = "lambda_",
        mu_table: str = "mu",
        into: str | None = None,
    ) -> QueryResult:
        sql = (
            self._generator.pca_udf_sql(k, lambda_table, mu_table)
            if method == "udf"
            else self._generator.pca_expression_sql(k, lambda_table, mu_table)
        )
        columns = [(f"f{j}", SqlType.FLOAT) for j in range(1, k + 1)]
        return self._run(sql, into, columns)

    # --------------------------------------------------------- classification
    def store_lda(self, model: "LdaModel", discriminant_table: str = "disc") -> None:
        """DISC(j, b0, x1..xd): class j's discriminant bias and weights."""
        self._check_d(model.d)
        names = ["b0", *self._generator.dimensions]
        matrix = np.column_stack([model.biases, model.weights])
        store_matrix(self._db, discriminant_table, matrix, names)

    def score_lda(
        self,
        model: "LdaModel",
        discriminant_table: str = "disc",
        into: str | None = None,
    ) -> QueryResult:
        """One-scan LDA classification: k linearregscore calls + arg-max."""
        sql = self._generator.lda_udf_sql(model.classes, discriminant_table)
        return self._run(sql, into, [("label", SqlType.INTEGER)])

    def store_naive_bayes(
        self,
        model: "NaiveBayesModel",
        mean_table: str = "nbmu",
        inverse_variance_table: str = "nbiv",
        bias_table: str = "nbb",
    ) -> None:
        """NBMU/NBIV(j, x1..xd) and NBB(b1..bk), with the log prior and
        normalization folded into the per-class bias."""
        self._check_d(model.d)
        names = list(self._generator.dimensions)
        store_matrix(self._db, mean_table, model.means, names)
        store_matrix(self._db, inverse_variance_table, 1.0 / model.variances, names)
        biases = (
            np.log(model.priors)
            - 0.5 * np.sum(np.log(model.variances), axis=1)
            - 0.5 * model.d * np.log(2.0 * np.pi)
        )
        store_vector(
            self._db,
            bias_table,
            biases,
            [f"b{j}" for j in range(1, model.n_classes + 1)],
        )

    def score_naive_bayes(
        self,
        model: "NaiveBayesModel",
        mean_table: str = "nbmu",
        inverse_variance_table: str = "nbiv",
        bias_table: str = "nbb",
        into: str | None = None,
    ) -> QueryResult:
        """One-scan NB classification: k nbscore calls + arg-max."""
        sql = self._generator.naive_bayes_udf_sql(
            model.classes, mean_table, inverse_variance_table, bias_table
        )
        return self._run(sql, into, [("label", SqlType.INTEGER)])

    # ------------------------------------------------------------ clustering
    def store_clustering(
        self,
        model: KMeansModel,
        centroid_table: str = "c",
        radii_table: str = "r",
        weight_table: str = "w",
    ) -> None:
        """C(j, x1..xd), R(j, x1..xd) and W(w1..wk)."""
        self._check_d(model.d)
        names = list(self._generator.dimensions)
        store_matrix(self._db, centroid_table, model.centroids, names)
        store_matrix(self._db, radii_table, model.radii, names)
        store_vector(
            self._db,
            weight_table,
            model.weights,
            [f"w{j}" for j in range(1, model.k + 1)],
        )

    def score_clustering(
        self,
        k: int,
        method: str = "udf",
        centroid_table: str = "c",
        into: str | None = None,
    ) -> QueryResult:
        sql = (
            self._generator.clustering_udf_sql(k, centroid_table)
            if method == "udf"
            else self._generator.clustering_expression_sql(k, centroid_table)
        )
        return self._run(sql, into, [("j", SqlType.INTEGER)])

    # -------------------------------------------------------------- plumbing
    def _check_d(self, model_d: int) -> None:
        if model_d != self.d:
            raise ModelError(
                f"model has d={model_d} but the data set has d={self.d}"
            )

    def _run(
        self,
        sql: str,
        into: str | None,
        value_columns: list[tuple[str, SqlType]],
    ) -> QueryResult:
        if into is None:
            return self._db.execute(sql)
        if self._db.catalog.has_table(into):
            self._db.drop_table(into)
        columns = [Column(self._generator.id_column, SqlType.INTEGER, False)]
        columns.extend(Column(name, sql_type) for name, sql_type in value_columns)
        self._db.create_table(
            into, TableSchema(tuple(columns), self._generator.id_column)
        )
        return self._db.execute(f"INSERT INTO {into} {sql}")


def scores_as_matrix(result: QueryResult, value_columns: int) -> np.ndarray:
    """Extract the score columns of a scoring result as an (n × k) matrix,
    ordered by the id column (first column)."""
    rows = sorted(result.rows, key=lambda row: row[0])
    return np.asarray(
        [[float(v) for v in row[1 : 1 + value_columns]] for row in rows]
    )
