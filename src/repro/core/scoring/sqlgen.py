"""Scoring query generation: UDF calls vs. plain SQL expressions.

For each model the paper compares two single-statement scoring routes
(Section 3.5 / Table 4):

* **UDF route** — the scoring UDFs of :mod:`repro.core.scoring.udfs`
  applied after cross-joining X with the (tiny) model tables;
* **SQL route** — the model equation spelled out as an arithmetic
  expression; for clustering this needs a derived table (the paper's
  "two scans on a pivoted version of X") because the arg-min over k
  distance expressions is a second pass of CASE comparisons.

The generator only produces SQL text; model tables must exist in the
layouts written by :class:`repro.core.scoring.scorer.ModelScorer`.

A third route — the ``*_inline_sql`` variants — embeds the (tiny) model
as SQL literals instead of cross-joining model tables.  The statement
then reads exactly one stored table, which is the shape the block-wise
execution path (:mod:`repro.dbms.sql.vectorized`) accepts; the
row-vs-vector scoring benchmark and parity tests use these.  Float
parameters are rendered with ``repr`` (shortest round-trip form), so the
literal re-parses to the identical double and both routes score with the
same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def _lit(value: float) -> str:
    """A float literal that re-parses to the identical double."""
    return repr(float(value))


@dataclass
class ScoringSqlGenerator:
    """Generates scoring statements for one data-set table.

    ``table`` is the data set ``X(i, x1..xd)``; ``dimensions`` its
    dimension columns; ``id_column`` the point identifier carried into
    the scored output.
    """

    table: str
    dimensions: Sequence[str]
    id_column: str = "i"

    @property
    def d(self) -> int:
        return len(self.dimensions)

    # ------------------------------------------------------------ regression
    def regression_udf_sql(self, beta_table: str = "beta") -> str:
        """ŷ via ``linearregscore``; BETA(b0, b1..bd) is one row."""
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        bs = ", ".join(f"b.b{a}" for a in range(self.d + 1))
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"linearregscore({xs}, {bs}) AS yhat "
            f"FROM {self.table} t CROSS JOIN {beta_table} b"
        )

    def regression_expression_sql(self, beta_table: str = "beta") -> str:
        """ŷ via a generated arithmetic expression."""
        terms = ["b.b0"]
        terms.extend(
            f"b.b{a + 1} * t.{dim}" for a, dim in enumerate(self.dimensions)
        )
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"{' + '.join(terms)} AS yhat "
            f"FROM {self.table} t CROSS JOIN {beta_table} b"
        )

    def regression_inline_sql(
        self, intercept: float, coefficients: Sequence[float]
    ) -> str:
        """ŷ via ``linearregscore`` with the model inlined as literals —
        a single-table statement the block-wise path can run."""
        if len(coefficients) != self.d:
            raise ValueError(
                f"{self.d} dimensions need {self.d} coefficients, "
                f"got {len(coefficients)}"
            )
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        bs = ", ".join([_lit(intercept), *(_lit(b) for b in coefficients)])
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"linearregscore({xs}, {bs}) AS yhat FROM {self.table} t"
        )

    # ------------------------------------------------------------------- PCA
    def _lambda_joins(self, k: int, lambda_table: str) -> str:
        """Join LAMBDA k times with aliasing, one alias per component j —
        the paper's 'X is cross-joined with LAMBDA k times'."""
        return " ".join(
            f"JOIN {lambda_table} l{j} ON l{j}.j = {j}" for j in range(1, k + 1)
        )

    def pca_udf_sql(
        self, k: int, lambda_table: str = "lambda_", mu_table: str = "mu"
    ) -> str:
        """x′ via k ``fascore`` calls in one SELECT."""
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        mus = ", ".join(f"m.{dim}" for dim in self.dimensions)
        items = [f"t.{self.id_column} AS {self.id_column}"]
        for j in range(1, k + 1):
            lambdas = ", ".join(f"l{j}.{dim}" for dim in self.dimensions)
            items.append(f"fascore({xs}, {mus}, {lambdas}) AS f{j}")
        return (
            f"SELECT {', '.join(items)} FROM {self.table} t "
            f"CROSS JOIN {mu_table} m {self._lambda_joins(k, lambda_table)}"
        )

    def pca_expression_sql(
        self, k: int, lambda_table: str = "lambda_", mu_table: str = "mu"
    ) -> str:
        """x′ via k generated Σ (xa − µa)·Λaj expressions."""
        items = [f"t.{self.id_column} AS {self.id_column}"]
        for j in range(1, k + 1):
            terms = [
                f"(t.{dim} - m.{dim}) * l{j}.{dim}" for dim in self.dimensions
            ]
            items.append(f"{' + '.join(terms)} AS f{j}")
        return (
            f"SELECT {', '.join(items)} FROM {self.table} t "
            f"CROSS JOIN {mu_table} m {self._lambda_joins(k, lambda_table)}"
        )

    def pca_inline_sql(
        self, mu: Sequence[float], components: Sequence[Sequence[float]]
    ) -> str:
        """x′ via ``fascore`` calls with µ and Λ inlined as literals."""
        if len(mu) != self.d:
            raise ValueError(f"mu needs {self.d} values, got {len(mu)}")
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        mus = ", ".join(_lit(m) for m in mu)
        items = [f"t.{self.id_column} AS {self.id_column}"]
        for j, component in enumerate(components, start=1):
            if len(component) != self.d:
                raise ValueError(
                    f"component {j} needs {self.d} values, "
                    f"got {len(component)}"
                )
            lambdas = ", ".join(_lit(value) for value in component)
            items.append(f"fascore({xs}, {mus}, {lambdas}) AS f{j}")
        return f"SELECT {', '.join(items)} FROM {self.table} t"

    # --------------------------------------------------------- classification
    def _label_case(self, index_expr: str, labels: Sequence[int]) -> str:
        """Map the 1-based arg-max index back to the class labels."""
        whens = " ".join(
            f"WHEN {index_expr} = {j} THEN {int(label)}"
            for j, label in enumerate(labels, start=1)
        )
        return f"CASE {whens} END"

    def lda_udf_sql(
        self, labels: Sequence[int], discriminant_table: str = "disc"
    ) -> str:
        """Predicted class via one ``linearregscore`` per class (the
        discriminant is affine) and ``classifyscore`` arg-max — one scan.
        The arg-max index is computed once in a derived table and a CASE
        on the outer level maps it back to the class labels.

        ``discriminant_table`` is DISC(j, b0, x1..xd): row j holds class
        j's bias and weights.
        """
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        scores = []
        for j in range(1, len(labels) + 1):
            ws = ", ".join(f"d{j}.{dim}" for dim in self.dimensions)
            scores.append(f"linearregscore({xs}, d{j}.b0, {ws})")
        joins = " ".join(
            f"JOIN {discriminant_table} d{j} ON d{j}.j = {j}"
            for j in range(1, len(labels) + 1)
        )
        inner = (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"classifyscore({', '.join(scores)}) AS idx "
            f"FROM {self.table} t {joins}"
        )
        return (
            f"SELECT s.{self.id_column} AS {self.id_column}, "
            f"{self._label_case('s.idx', labels)} AS label FROM ({inner}) s"
        )

    def naive_bayes_udf_sql(
        self,
        labels: Sequence[int],
        mean_table: str = "nbmu",
        inverse_variance_table: str = "nbiv",
        bias_table: str = "nbb",
    ) -> str:
        """Predicted class via one ``nbscore`` per class and the arg-max.

        Model layout: NBMU(j, x1..xd) class means, NBIV(j, x1..xd)
        inverse variances, NBB(b1..bk) one row of per-class biases.
        """
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        scores = []
        joins = []
        for j in range(1, len(labels) + 1):
            mus = ", ".join(f"m{j}.{dim}" for dim in self.dimensions)
            ivs = ", ".join(f"v{j}.{dim}" for dim in self.dimensions)
            scores.append(f"nbscore({xs}, {mus}, {ivs}, b.b{j})")
            joins.append(f"JOIN {mean_table} m{j} ON m{j}.j = {j}")
            joins.append(
                f"JOIN {inverse_variance_table} v{j} ON v{j}.j = {j}"
            )
        inner = (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"classifyscore({', '.join(scores)}) AS idx "
            f"FROM {self.table} t CROSS JOIN {bias_table} b "
            f"{' '.join(joins)}"
        )
        return (
            f"SELECT s.{self.id_column} AS {self.id_column}, "
            f"{self._label_case('s.idx', labels)} AS label FROM ({inner}) s"
        )

    def lda_inline_sql(
        self,
        biases: Sequence[float],
        weights: Sequence[Sequence[float]],
    ) -> str:
        """Arg-max class index via inlined-parameter ``linearregscore``
        calls (the LDA discriminant is affine) and ``classifyscore``.

        Like :meth:`naive_bayes_inline_sql` this returns the 1-based
        class *index* — label mapping is not block-compilable — and
        reads exactly one stored table, so the block-wise path accepts
        it.  The serving layer uses it to EXPLAIN what a registry-bound
        LDA model executes.
        """
        if len(biases) != len(weights):
            raise ValueError("biases and weights must align per class")
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        scores = []
        for bias, weight in zip(biases, weights):
            if len(weight) != self.d:
                raise ValueError(
                    f"each weight vector needs {self.d} values, "
                    f"got {len(weight)}"
                )
            ws = ", ".join(_lit(w) for w in weight)
            scores.append(f"linearregscore({xs}, {_lit(bias)}, {ws})")
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"classifyscore({', '.join(scores)}) AS idx "
            f"FROM {self.table} t"
        )

    def naive_bayes_inline_sql(
        self,
        means: Sequence[Sequence[float]],
        inverse_variances: Sequence[Sequence[float]],
        biases: Sequence[float],
    ) -> str:
        """Arg-max class index via inlined-parameter ``nbscore`` calls.

        Returns the 1-based class *index* (``idx``) rather than mapping
        back to labels: the CASE label mapping is not block-compilable,
        and the benchmark compares routes on the same output.
        """
        if not (len(means) == len(inverse_variances) == len(biases)):
            raise ValueError("means, inverse_variances, biases must align")
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        scores = []
        for mu, iv, bias in zip(means, inverse_variances, biases):
            mus = ", ".join(_lit(m) for m in mu)
            ivs = ", ".join(_lit(v) for v in iv)
            scores.append(f"nbscore({xs}, {mus}, {ivs}, {_lit(bias)})")
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"classifyscore({', '.join(scores)}) AS idx "
            f"FROM {self.table} t"
        )

    # ------------------------------------------------------------ clustering
    def _centroid_joins(self, k: int, centroid_table: str) -> str:
        return " ".join(
            f"JOIN {centroid_table} c{j} ON c{j}.j = {j}" for j in range(1, k + 1)
        )

    def clustering_udf_sql(self, k: int, centroid_table: str = "c") -> str:
        """J via ``clusterscore`` over k ``kmeansdistance`` calls — one
        statement, one scan."""
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        distances = []
        for j in range(1, k + 1):
            cs = ", ".join(f"c{j}.{dim}" for dim in self.dimensions)
            distances.append(f"kmeansdistance({xs}, {cs})")
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"clusterscore({', '.join(distances)}) AS j "
            f"FROM {self.table} t {self._centroid_joins(k, centroid_table)}"
        )

    def clustering_inline_sql(self, centroids: Sequence[Sequence[float]]) -> str:
        """J via ``clusterscore`` over inlined-centroid distances — one
        table, one scan, block-compilable."""
        xs = ", ".join(f"t.{dim}" for dim in self.dimensions)
        distances = []
        for j, centroid in enumerate(centroids, start=1):
            if len(centroid) != self.d:
                raise ValueError(
                    f"centroid {j} needs {self.d} values, got {len(centroid)}"
                )
            cs = ", ".join(_lit(value) for value in centroid)
            distances.append(f"kmeansdistance({xs}, {cs})")
        return (
            f"SELECT t.{self.id_column} AS {self.id_column}, "
            f"clusterscore({', '.join(distances)}) AS j "
            f"FROM {self.table} t"
        )

    def clustering_expression_sql(self, k: int, centroid_table: str = "c") -> str:
        """J via plain SQL: an inner query materializes the k distances
        (the pivoted pass), and an outer CASE picks the arg-min — the two
        scans the paper attributes to the SQL route."""
        inner_items = [f"t.{self.id_column} AS {self.id_column}"]
        for j in range(1, k + 1):
            terms = [
                f"(t.{dim} - c{j}.{dim}) * (t.{dim} - c{j}.{dim})"
                for dim in self.dimensions
            ]
            inner_items.append(f"{' + '.join(terms)} AS d{j}")
        inner = (
            f"SELECT {', '.join(inner_items)} FROM {self.table} t "
            f"{self._centroid_joins(k, centroid_table)}"
        )
        whens = []
        for j in range(1, k + 1):
            others = [
                f"s.d{j} <= s.d{other}" for other in range(1, k + 1) if other != j
            ]
            condition = " AND ".join(others) if others else "1 = 1"
            whens.append(f"WHEN {condition} THEN {j}")
        case = f"CASE {' '.join(whens)} END"
        return (
            f"SELECT s.{self.id_column} AS {self.id_column}, {case} AS j "
            f"FROM ({inner}) s"
        )
