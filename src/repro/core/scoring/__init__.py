"""Scoring: applying a built model to a data set in a single table scan."""

from repro.core.scoring.udfs import (
    ClassifyScoreUdf,
    ClusterScoreUdf,
    FaScoreUdf,
    KMeansDistanceUdf,
    LinearRegScoreUdf,
    NaiveBayesScoreUdf,
    register_scoring_udfs,
)
from repro.core.scoring.sqlgen import ScoringSqlGenerator
from repro.core.scoring.scorer import ModelScorer

__all__ = [
    "ClassifyScoreUdf",
    "ClusterScoreUdf",
    "FaScoreUdf",
    "KMeansDistanceUdf",
    "LinearRegScoreUdf",
    "ModelScorer",
    "NaiveBayesScoreUdf",
    "ScoringSqlGenerator",
    "register_scoring_udfs",
]
