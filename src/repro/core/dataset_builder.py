"""Deriving the data set X from normalized tables (paper, Section 3.6).

In a warehouse the analysis matrix ``X(i, x1..xd)`` is *derived*: each
dimension is one of

* a **property** of point i — denormalized from another table by joining
  on foreign/primary keys (e.g. customer state, customer age);
* a **binary flag** — a CASE expression turning a categorical attribute
  into a 0/1 dimension (e.g. "is the customer active?");
* a **metric** — an aggregation over a detail table, ``sum()`` and
  ``count()`` being the most common (e.g. number of items purchased).

:class:`DatasetBuilder` is a small, typed specification of those three
feature kinds.  It generates the SQL the paper describes — left outer
joins from a *reference table* holding the universe of points, with
missing values populated as NULLs (or a chosen default), group-by on the
point id — and can materialize the result into the canonical layout,
ready for the nLQ UDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms.database import Database
from repro.dbms.schema import validate_identifier
from repro.errors import PlanningError


@dataclass(frozen=True)
class PropertyFeature:
    """A column carried over from a dimension table joined on the id."""

    name: str
    source_table: str
    source_column: str
    join_column: str
    default: float | None = None


@dataclass(frozen=True)
class FlagFeature:
    """A 0/1 dimension derived from a SQL condition on joined detail rows.

    Aggregated with ``max()`` so "any matching detail row" sets the flag
    — the usual presence/absence semantics.
    """

    name: str
    source_table: str
    join_column: str
    condition: str


@dataclass(frozen=True)
class MetricFeature:
    """An aggregation over a detail table: sum/count/min/max of an
    expression, optionally filtered by a condition (the metric CASE
    pattern)."""

    name: str
    source_table: str
    join_column: str
    aggregate: str
    expression: str = "1.0"
    condition: str | None = None

    def __post_init__(self) -> None:
        if self.aggregate.lower() not in ("sum", "count", "min", "max", "avg"):
            raise PlanningError(
                f"unsupported metric aggregate {self.aggregate!r}"
            )


class DatasetBuilder:
    """Builds the denormalization query for one reference table.

    Parameters
    ----------
    reference_table:
        The table containing the universe of all points i (the paper's
        left operand of every outer join).
    id_column:
        The point identifier in the reference table.
    """

    def __init__(self, reference_table: str, id_column: str = "i") -> None:
        validate_identifier(reference_table, "table name")
        validate_identifier(id_column, "column name")
        self.reference_table = reference_table
        self.id_column = id_column
        self._properties: list[PropertyFeature] = []
        self._flags: list[FlagFeature] = []
        self._metrics: list[MetricFeature] = []
        self._names: set[str] = set()
        self._declared_order: list[str] = []

    # ----------------------------------------------------------- declaration
    def _claim(self, name: str) -> str:
        validate_identifier(name, "feature name")
        if name.lower() in self._names:
            raise PlanningError(f"duplicate feature name {name!r}")
        self._names.add(name.lower())
        self._declared_order.append(name)
        return name

    def add_property(
        self,
        name: str,
        source_table: str,
        source_column: str,
        join_column: str | None = None,
        default: float | None = None,
    ) -> "DatasetBuilder":
        """A denormalized property: one value per point from a joined
        table (NULL — or *default* — when the point has no row there)."""
        self._properties.append(
            PropertyFeature(
                self._claim(name),
                source_table,
                source_column,
                join_column or self.id_column,
                default,
            )
        )
        return self

    def add_flag(
        self,
        name: str,
        source_table: str,
        condition: str,
        join_column: str | None = None,
    ) -> "DatasetBuilder":
        """A binary dimension: 1 when any detail row satisfies *condition*."""
        self._flags.append(
            FlagFeature(
                self._claim(name),
                source_table,
                join_column or self.id_column,
                condition,
            )
        )
        return self

    def add_metric(
        self,
        name: str,
        source_table: str,
        aggregate: str,
        expression: str = "1.0",
        condition: str | None = None,
        join_column: str | None = None,
    ) -> "DatasetBuilder":
        """An aggregated metric over detail rows, e.g.
        ``add_metric("spend", "txn", "sum", "amount", "kind = 'buy'")``."""
        self._metrics.append(
            MetricFeature(
                self._claim(name),
                source_table,
                join_column or self.id_column,
                aggregate,
                expression,
                condition,
            )
        )
        return self

    @property
    def feature_names(self) -> list[str]:
        """Feature names in declaration order (= the X column order)."""
        return list(self._declared_order)

    # -------------------------------------------------------------- SQL text
    def build_sql(self) -> str:
        """The single denormalization SELECT.

        One left-outer-join-shaped derived table per source (computed as
        a pre-aggregated subquery — the group-by-before-join form the
        paper recommends when several metrics aggregate from large
        detail tables), joined back to the reference table; points with
        no detail rows keep NULL / default values.
        """
        if not self.feature_names:
            raise PlanningError("no features declared")
        ref = "r"
        items = [f"{ref}.{self.id_column} AS {self.id_column}"]
        joins: list[str] = []
        alias_counter = 0

        # Properties join their dimension table directly (one row per id).
        for prop in self._properties:
            alias_counter += 1
            alias = f"p{alias_counter}"
            value = f"{alias}.{prop.source_column}"
            if prop.default is not None:
                value = f"coalesce({value}, {prop.default!r})"
            items.append(f"{value} AS {prop.name}")
            joins.append(
                f"LEFT JOIN {prop.source_table} {alias} "
                f"ON {alias}.{prop.join_column} = {ref}.{self.id_column}"
            )

        # Flags and metrics of the same detail table share one
        # pre-aggregated subquery (scanning each detail table once).
        per_table: dict[tuple[str, str], list[str]] = {}
        table_key_order: list[tuple[str, str]] = []
        for flag in self._flags:
            key = (flag.source_table, flag.join_column)
            if key not in per_table:
                per_table[key] = []
                table_key_order.append(key)
            per_table[key].append(
                f"max(CASE WHEN {flag.condition} THEN 1.0 ELSE 0.0 END) "
                f"AS {flag.name}"
            )
        for metric in self._metrics:
            key = (metric.source_table, metric.join_column)
            if key not in per_table:
                per_table[key] = []
                table_key_order.append(key)
            expression = metric.expression
            if metric.condition is not None:
                neutral = "0.0" if metric.aggregate.lower() in ("sum", "count") \
                    else "NULL"
                expression = (
                    f"CASE WHEN {metric.condition} THEN {expression} "
                    f"ELSE {neutral} END"
                )
            per_table[key].append(
                f"{metric.aggregate}({expression}) AS {metric.name}"
            )

        for key in table_key_order:
            table, join_column = key
            alias_counter += 1
            alias = f"m{alias_counter}"
            inner_terms = ", ".join(
                [f"{join_column} AS __id", *per_table[key]]
            )
            subquery = (
                f"(SELECT {inner_terms} FROM {table} GROUP BY {join_column})"
            )
            joins.append(
                f"LEFT JOIN {subquery} {alias} "
                f"ON {alias}.__id = {ref}.{self.id_column}"
            )
            for term in per_table[key]:
                feature = term.rsplit(" AS ", 1)[1]
                items.append(f"coalesce({alias}.{feature}, 0.0) AS {feature}")

        # Keep declared feature order in the select list: id, properties,
        # then flags/metrics in declaration order.
        ordered = [items[0]]
        by_name = {item.rsplit(" AS ", 1)[1]: item for item in items[1:]}
        for name in self.feature_names:
            ordered.append(by_name[name])

        return (
            f"SELECT {', '.join(ordered)} FROM {self.reference_table} {ref} "
            + " ".join(joins)
        )

    # ----------------------------------------------------------- materialize
    def create_view(self, db: Database, view_name: str) -> str:
        """Install the derivation as a view (the paper's 'X exists as a
        view' case: recomputed on demand)."""
        sql = self.build_sql()
        db.execute(f"CREATE OR REPLACE VIEW {view_name} AS {sql}")
        return sql

    def materialize(self, db: Database, table_name: str) -> list[str]:
        """Evaluate the derivation once into a real table (the paper's
        'X exists as a table' case) and return the dimension names."""
        sql = self.build_sql()
        if db.catalog.has_table(table_name):
            db.drop_table(table_name)
        columns = ", ".join(
            [f"{self.id_column} INTEGER PRIMARY KEY"]
            + [f"{name} FLOAT" for name in self.feature_names]
        )
        db.execute(f"CREATE TABLE {table_name} ({columns})")
        db.execute(f"INSERT INTO {table_name} {sql}")
        return self.feature_names
