"""Gaussian Naive Bayes from per-class summary statistics.

The paper's related work cites Graefe, Fayyad & Chaudhuri [9] on
gathering sufficient statistics for *classification* from SQL databases;
this module closes that loop inside our framework: the per-class
statistics a Gaussian NB classifier needs —

    prior_c = N_c / n,   µ_c = L_c / N_c,   σ²_c = Q_c/N_c − µ_c²

— are exactly the GROUP BY form of (n, L, Q) with a diagonal Q, grouped
by the class label.  One aggregate-UDF query per training set, no second
scan; scoring is a per-row arg-max of the class log-densities, the same
shape as the clustering score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryStatistics
from repro.errors import ModelError

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class NaiveBayesModel:
    """Class priors, per-class means and diagonal variances."""

    classes: list[int]
    priors: np.ndarray
    means: np.ndarray
    variances: np.ndarray

    @property
    def d(self) -> int:
        return int(self.means.shape[1])

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @classmethod
    def from_class_summaries(
        cls,
        summaries: "dict[int, SummaryStatistics]",
        variance_floor: float = 1e-9,
    ) -> "NaiveBayesModel":
        """Build from per-class (N_c, L_c, Q_c-diagonal) summaries, as
        returned by ``compute_nlq_udf_groups(..., group_by=<label>)``."""
        if not summaries:
            raise ModelError("no class summaries")
        classes = sorted(summaries)
        d = summaries[classes[0]].d
        total = sum(stats.n for stats in summaries.values())
        if total <= 0:
            raise ModelError("class summaries contain no rows")
        priors = np.empty(len(classes))
        means = np.empty((len(classes), d))
        variances = np.empty((len(classes), d))
        for index, label in enumerate(classes):
            stats = summaries[label]
            if stats.d != d:
                raise ModelError(
                    f"class {label} has d={stats.d}, expected {d}"
                )
            if stats.n < 2:
                raise ModelError(
                    f"class {label} has {stats.n:.0f} rows; need >= 2"
                )
            priors[index] = stats.n / total
            means[index] = stats.mean()
            variances[index] = np.maximum(stats.variances(), variance_floor)
        return cls(classes, priors, means, variances)

    @classmethod
    def fit_matrix(
        cls, X: np.ndarray, labels: np.ndarray, **kwargs
    ) -> "NaiveBayesModel":
        """Reference fit from arrays (tests compare this to the DB route)."""
        X = np.asarray(X, dtype=float)
        labels = np.asarray(labels)
        summaries = {
            int(label): SummaryStatistics.from_matrix(X[labels == label])
            for label in np.unique(labels)
        }
        return cls.from_class_summaries(summaries, **kwargs)

    # --------------------------------------------------------------- scoring
    def log_joint(self, X: np.ndarray) -> np.ndarray:
        """log prior_c + Σ_a log N(x_a | µ_ca, σ²_ca), an (n × C) matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        scores = np.empty((X.shape[0], self.n_classes))
        for index in range(self.n_classes):
            centered = X - self.means[index]
            quad = np.sum(centered * centered / self.variances[index], axis=1)
            log_norm = -0.5 * (
                self.d * _LOG_2PI + float(np.sum(np.log(self.variances[index])))
            )
            scores[:, index] = (
                np.log(self.priors[index]) + log_norm - 0.5 * quad
            )
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        """The most probable class label per row."""
        winners = np.argmax(self.log_joint(X), axis=1)
        return np.asarray([self.classes[w] for w in winners])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior class probabilities per row (n × C)."""
        log_joint = self.log_joint(X)
        peak = log_joint.max(axis=1, keepdims=True)
        unnormalized = np.exp(log_joint - peak)
        return unnormalized / unnormalized.sum(axis=1, keepdims=True)

    def accuracy(self, X: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(labels)))
