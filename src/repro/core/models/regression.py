"""Linear regression from the augmented summary matrices.

The paper augments X with a constant dimension X₀ = 1 and the dependent
variable Y into Z = (X, Y), computes Q′ = Z Zᵀ and L′ = Σ zᵢ in the same
single scan, and then solves the normal equations outside the scan:

    β = (X Xᵀ)⁻¹ (X Yᵀ)

with both blocks read straight out of Q′.  The model's error statistics
need Σ(yᵢ − ŷᵢ)², which the paper obtains with a *second* table scan —
the only statistic that needs one — because ŷ depends on β.  We provide
that scan (:meth:`sse_by_scan`) and, additionally, the closed form

    Σ(yᵢ − ŷᵢ)² = Y Yᵀ − 2 βᵀ(X Yᵀ) + βᵀ(X Xᵀ)β

which needs no second scan (:meth:`sse_from_summary`); the two agree to
rounding and tests check it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.summary import AugmentedSummary
from repro.errors import ModelError


@dataclass
class LinearRegressionModel:
    """Coefficients β (including the intercept β₀) plus fit statistics."""

    intercept: float
    coefficients: np.ndarray
    n: float
    #: Q′ blocks kept for error statistics
    _xtx: np.ndarray = field(repr=False)
    _xty: np.ndarray = field(repr=False)
    _yty: float = field(repr=False)
    _sum_y: float = field(repr=False)

    @classmethod
    def from_summary(cls, augmented: AugmentedSummary) -> "LinearRegressionModel":
        """Solve β = (X Xᵀ)⁻¹ (X Yᵀ) from the augmented Q′."""
        d = augmented.d
        n = augmented.n
        if n <= d + 1:
            raise ModelError(
                f"need n > d + 1 observations to fit (n={n}, d={d})"
            )
        xtx = augmented.xtx()
        xty = augmented.xty()
        try:
            beta = np.linalg.solve(xtx, xty)
        except np.linalg.LinAlgError as exc:
            raise ModelError(
                "X·Xᵀ is singular (collinear dimensions); drop a dimension "
                "via SummaryStatistics.sub and refit"
            ) from exc
        return cls(
            intercept=float(beta[0]),
            coefficients=beta[1:],
            n=n,
            _xtx=xtx,
            _xty=xty,
            _yty=augmented.yty(),
            _sum_y=augmented.sum_y(),
        )

    @property
    def d(self) -> int:
        return int(self.coefficients.shape[0])

    @property
    def beta(self) -> np.ndarray:
        """The full coefficient vector [β₀, β₁, ..., β_d]."""
        return np.concatenate([[self.intercept], self.coefficients])

    # ----------------------------------------------------------------- score
    def predict(self, X: np.ndarray) -> np.ndarray:
        """ŷᵢ = βᵀxᵢ for each row of the (n × d) matrix X."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        return self.intercept + X @ self.coefficients

    # ------------------------------------------------------------ statistics
    def sse_from_summary(self) -> float:
        """Σ(yᵢ − ŷᵢ)² expanded in terms of Q′ — no second scan needed."""
        beta = self.beta
        sse = self._yty - 2.0 * beta @ self._xty + beta @ self._xtx @ beta
        return max(float(sse), 0.0)

    def sse_by_scan(self, X: np.ndarray, y: np.ndarray) -> float:
        """Σ(yᵢ − ŷᵢ)² by rescanning the data — the paper's route."""
        residuals = np.asarray(y, dtype=float).reshape(-1) - self.predict(X)
        return float(residuals @ residuals)

    def r_squared(self) -> float:
        """Coefficient of determination from the summary alone."""
        total = self._yty - self._sum_y * self._sum_y / self.n
        if total <= 0:
            raise ModelError("Y has zero variance; R² undefined")
        return 1.0 - self.sse_from_summary() / total

    def coefficient_covariance(self, sse: float | None = None) -> np.ndarray:
        """var(β) = (X Xᵀ)⁻¹ · Σ(yᵢ − ŷᵢ)² / (n − d − 1)  (paper, §3.1)."""
        dof = self.n - self.d - 1.0
        if dof <= 0:
            raise ModelError("no degrees of freedom for var(β)")
        if sse is None:
            sse = self.sse_from_summary()
        return np.linalg.inv(self._xtx) * (sse / dof)

    def standard_errors(self, sse: float | None = None) -> np.ndarray:
        """Standard error of each coefficient [β₀, β₁, ..., β_d]."""
        return np.sqrt(np.diag(self.coefficient_covariance(sse)))

    def t_statistics(self, sse: float | None = None) -> np.ndarray:
        return self.beta / self.standard_errors(sse)


def stepwise_select(
    augmented: AugmentedSummary,
    max_dimensions: int | None = None,
    min_improvement: float = 1e-4,
) -> tuple[LinearRegressionModel, list[int]]:
    """Greedy forward step-wise selection on the summary alone.

    The paper notes step-wise procedures reduce d to d′ by taking a
    subset of dimensions; because sub-summaries are free
    (:meth:`SummaryStatistics.sub`), the whole search needs zero extra
    table scans.  Returns the fitted model and the selected dimension
    indices (0-based, into the original d).
    """
    d = augmented.d
    limit = max_dimensions if max_dimensions is not None else d
    selected: list[int] = []
    best_r2 = -np.inf
    best_model: LinearRegressionModel | None = None
    remaining = list(range(d))
    while remaining and len(selected) < limit:
        round_best: tuple[float, int, LinearRegressionModel] | None = None
        for candidate in remaining:
            trial = sorted(selected + [candidate])
            indices = [0, *[i + 1 for i in trial], d + 1]
            sub = AugmentedSummary(augmented.stats.sub(indices))
            try:
                model = LinearRegressionModel.from_summary(sub)
                r2 = model.r_squared()
            except ModelError:
                continue
            if round_best is None or r2 > round_best[0]:
                round_best = (r2, candidate, model)
        if round_best is None:
            break
        r2, candidate, model = round_best
        if best_model is not None and r2 - best_r2 < min_improvement:
            break
        selected.append(candidate)
        remaining.remove(candidate)
        best_r2, best_model = r2, model
    if best_model is None:
        raise ModelError("step-wise selection found no usable dimension")
    return best_model, sorted(selected)
