"""K-means clustering on per-cluster summary matrices.

Clustering is the one technique the paper cannot finish in a single
scan: each iteration reassigns points to their nearest centroid and
recomputes per-cluster statistics.  The key point (Section 3.2) is that
the *update* needs only per-cluster sufficient statistics

    C_j = L_j / N_j
    R_j = Q_j / N_j − L_j L_jᵀ / N_j²      (diagonal only)
    W_j = N_j / n

which are exactly a GROUP BY form of (n, L, Q) with a diagonal Q — one
aggregate query per iteration.  Both an in-memory fit and a fit that
drives the DBMS (scoring UDF for assignment + GROUP BY nLQ UDF for the
update) are provided, and they produce identical models from identical
assignments.

An incremental one-pass variant (the paper cites incremental K-means
that reaches a good solution in one scan) is included as
:meth:`KMeansModel.fit_incremental`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@dataclass
class KMeansModel:
    """Centroids C (k × d), diagonal radii R (k × d), weights W (k)."""

    centroids: np.ndarray
    radii: np.ndarray
    weights: np.ndarray
    inertia: float = float("nan")
    iterations: int = 0

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def d(self) -> int:
        return int(self.centroids.shape[1])

    # ------------------------------------------------------------ from stats
    @classmethod
    def from_group_summaries(
        cls,
        groups: "dict[int, SummaryStatistics]",
        k: int,
        previous_centroids: np.ndarray | None = None,
    ) -> "KMeansModel":
        """Build C, R, W from per-cluster (N_j, L_j, Q_j) summaries keyed
        by cluster subscript j = 1..k.

        Clusters with no assigned points keep their previous centroid
        (or raise when none is available) with zero weight.
        """
        if not groups and previous_centroids is None:
            raise ModelError("no group summaries and no previous centroids")
        any_stats = next(iter(groups.values())) if groups else None
        d = any_stats.d if any_stats is not None else previous_centroids.shape[1]
        total = sum(stats.n for stats in groups.values())
        centroids = np.zeros((k, d))
        radii = np.zeros((k, d))
        weights = np.zeros(k)
        for j in range(1, k + 1):
            stats = groups.get(j)
            if stats is None or stats.n == 0:
                if previous_centroids is None:
                    raise ModelError(f"cluster {j} is empty and has no fallback")
                centroids[j - 1] = previous_centroids[j - 1]
                continue
            Nj = stats.n
            centroids[j - 1] = stats.L / Nj
            radii[j - 1] = np.diag(stats.Q) / Nj - (stats.L / Nj) ** 2
            weights[j - 1] = Nj / total
        inertia = float(np.sum(weights * total * radii.sum(axis=1)))
        return cls(centroids, np.maximum(radii, 0.0), weights, inertia)

    # --------------------------------------------------------------- fitting
    @classmethod
    def fit_matrix(
        cls,
        X: np.ndarray,
        k: int,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        seed: int = 0,
    ) -> "KMeansModel":
        """Standard Lloyd iterations in memory (the reference fit)."""
        X = np.asarray(X, dtype=float)
        n, d = X.shape
        if not 1 <= k <= n:
            raise ModelError(f"k must be in [1, {n}], got {k}")
        centroids = _plus_plus_init(X, k, np.random.default_rng(seed))
        model = cls(centroids, np.zeros((k, d)), np.zeros(k))
        previous_inertia = np.inf
        for iteration in range(1, max_iterations + 1):
            labels = model.assign(X)
            groups: dict[int, SummaryStatistics] = {}
            for j in range(1, k + 1):
                members = X[labels == j]
                if members.shape[0]:
                    groups[j] = SummaryStatistics.from_matrix(members)
            model = cls.from_group_summaries(groups, k, model.centroids)
            model.iterations = iteration
            if abs(previous_inertia - model.inertia) <= tolerance * max(
                previous_inertia, 1.0
            ):
                break
            previous_inertia = model.inertia
        return model

    @classmethod
    def fit_dbms(
        cls,
        db,
        table: str,
        dimensions: "list[str]",
        k: int,
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        seed: int = 0,
    ) -> "KMeansModel":
        """DBMS-driven Lloyd iterations, one fused scan per iteration.

        Each iteration installs the current centroids on the
        ``kmeansiter`` aggregate UDF and runs one SELECT: assignment and
        per-cluster (N, L, Q) aggregation happen inside the scan, with
        no materialized assignment table.  Bit-identical to
        :meth:`fit_dbms_two_scan` (the fused kernel replays the scoring
        and GROUP BY arithmetic exactly), at half the scans.
        """
        from repro.core.fused import (
            fused_call_sql,
            register_fused_udfs,
            unpack_fused_payload,
        )

        udf = register_fused_udfs(db)["kmeansiter"]
        centroids = _seed_centroids_dbms(db, table, dimensions, k, seed)
        model = cls(centroids, np.zeros((k, len(dimensions))), np.zeros(k))
        sql = fused_call_sql("kmeansiter", table, dimensions)
        for iteration in range(1, max_iterations + 1):
            previous = model.centroids
            udf.set_centroids(previous)
            payload = db.execute(sql).scalar()
            groups, _ = unpack_fused_payload(payload)
            model = cls.from_group_summaries(groups, k, previous)
            model.iterations = iteration
            shift = float(np.max(np.abs(model.centroids - previous)))
            if shift <= tolerance:
                break
        return model

    @classmethod
    def fit_dbms_two_scan(
        cls,
        db,
        table: str,
        dimensions: "list[str]",
        k: int,
        max_iterations: int = 10,
        tolerance: float = 1e-4,
        seed: int = 0,
    ) -> "KMeansModel":
        """The reference two-scan iteration the fused path replaces.

        Scan 1 evaluates the assignment expression (``clusterscore``
        over inlined ``kmeansdistance`` calls) across the table — the
        pass that classically materializes the assignment table.  Scan 2
        re-aggregates per-cluster (N, L, Q) with the GROUP BY nLQ UDF
        keyed on the same expression.  Kept as the parity and benchmark
        baseline for :meth:`fit_dbms`.
        """
        from repro.core.fused import assignment_expression
        from repro.core.nlq_udf import compute_nlq_udf_groups, register_nlq_udfs
        from repro.core.scoring.udfs import register_scoring_udfs
        from repro.core.summary import MatrixType

        # Register-if-missing: duplicate registration raises, and callers
        # (the miner) may have installed these already.
        if db.catalog.scalar_udf("clusterscore") is None:
            register_scoring_udfs(db)
        if db.catalog.aggregate_udf("nlq_diag") is None:
            register_nlq_udfs(db)
        centroids = _seed_centroids_dbms(db, table, dimensions, k, seed)
        model = cls(centroids, np.zeros((k, len(dimensions))), np.zeros(k))
        for iteration in range(1, max_iterations + 1):
            previous = model.centroids
            expression = assignment_expression(dimensions, previous)
            # Scan 1: the assignment pass (its result set is the
            # materialized assignment table the fused path avoids).
            db.execute(f"SELECT {expression} FROM {table}")
            # Scan 2: per-cluster summaries keyed by the assignment.
            groups = compute_nlq_udf_groups(
                db, table, dimensions, expression, MatrixType.DIAGONAL
            )
            model = cls.from_group_summaries(groups, k, previous)
            model.iterations = iteration
            shift = float(np.max(np.abs(model.centroids - previous)))
            if shift <= tolerance:
                break
        return model

    @classmethod
    def fit_incremental(
        cls,
        X: np.ndarray,
        k: int,
        block_rows: int = 256,
        seed: int = 0,
    ) -> "KMeansModel":
        """One-pass incremental K-means: running (N_j, L_j, Q_j) updated
        block by block with assignments against the running centroids.
        Suboptimal but single-scan, as the paper's discussion assumes."""
        X = np.asarray(X, dtype=float)
        n, d = X.shape
        if not 1 <= k <= n:
            raise ModelError(f"k must be in [1, {n}], got {k}")
        rng = np.random.default_rng(seed)
        # Seed across the *whole* dataset: sampling only a prefix biases
        # the initial centroids toward the first partitions' rows when
        # the data arrives partition-ordered.
        centroids = _plus_plus_init(X, k, rng)
        counts = np.zeros(k)
        linear = np.zeros((k, d))
        quadratic = np.zeros((k, d))
        for start in range(0, n, block_rows):
            block = X[start : start + block_rows]
            distances = _squared_distances(block, centroids)
            labels = np.argmin(distances, axis=1)
            for j in range(k):
                members = block[labels == j]
                if not members.shape[0]:
                    continue
                counts[j] += members.shape[0]
                linear[j] += members.sum(axis=0)
                quadratic[j] += (members * members).sum(axis=0)
                centroids[j] = linear[j] / counts[j]
        weights = counts / max(counts.sum(), 1.0)
        radii = np.zeros((k, d))
        nonempty = counts > 0
        radii[nonempty] = (
            quadratic[nonempty] / counts[nonempty, None]
            - (linear[nonempty] / counts[nonempty, None]) ** 2
        )
        model = cls(centroids, np.maximum(radii, 0.0), weights, iterations=1)
        model.inertia = float(
            np.sum(counts[nonempty, None] * radii[nonempty])
        )
        return model

    # --------------------------------------------------------------- scoring
    def distances(self, X: np.ndarray) -> np.ndarray:
        """Squared Euclidean distance of each row to each centroid (n × k)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        return _squared_distances(X, self.centroids)

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid subscript J (1-based, as the paper indexes j)."""
        return np.argmin(self.distances(X), axis=1) + 1

    def within_cluster_sse(self, X: np.ndarray) -> float:
        distances = self.distances(X)
        return float(distances[np.arange(distances.shape[0]),
                               np.argmin(distances, axis=1)].sum())


def _squared_distances(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    diffs = X[:, None, :] - centroids[None, :, :]
    return np.sum(diffs * diffs, axis=2)


def _plus_plus_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centroids out."""
    n = X.shape[0]
    centroids = [X[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(_squared_distances(X, np.asarray(centroids)), axis=1)
        total = distances.sum()
        if total <= 0:
            centroids.append(X[rng.integers(n)])
            continue
        probabilities = distances / total
        centroids.append(X[rng.choice(n, p=probabilities)])
    return np.asarray(centroids, dtype=float)


#: rows of the engine-side seeding sample; plenty for spreading k
#: centroids while keeping the client-side footprint O(cap · d)
SEED_SAMPLE_CAP = 1024


def _seed_centroids_dbms(
    db, table: str, dimensions: "list[str]", k: int, seed: int
) -> np.ndarray:
    """k-means++ centroids from a bounded, NULL-filtered engine sample.

    Seeding needs a representative spread, not the full table: a bounded
    reservoir sample gathered through the partition engine replaces the
    full client-side materialization, and filtering incomplete rows
    keeps NaN out of the seeded centroids (one NaN distance would poison
    every later assignment).  Deterministic for a fixed *seed* at any
    worker count.
    """
    from repro.dbms.sampling import reservoir_sample

    n = db.table(table).row_count
    if not 1 <= k <= n:
        raise ModelError(f"k must be in [1, {n}], got {k}")
    sample = reservoir_sample(
        db, table, dimensions, cap=SEED_SAMPLE_CAP, seed=seed
    )
    if sample.shape[0] < k:
        raise ModelError(
            f"table {table!r} has {sample.shape[0]} complete rows over "
            f"{dimensions}; need >= k={k}"
        )
    return _plus_plus_init(sample, k, np.random.default_rng(seed))
