"""Model persistence: storing model matrices as relational tables.

The paper stores every model in the DBMS with layouts chosen so scoring
retrieves a whole vector in a single I/O (Section 3.5):

* linear regression: ``BETA(b0, b1, ..., bd)`` — one row;
* PCA / factor analysis: ``LAMBDA(j, x1, ..., xd)`` (k rows) and
  ``MU(x1, ..., xd)`` (one row);
* clustering: centroids ``C(j, x1..xd)``, radii ``R(j, x1..xd)``,
  weights ``W(w1, ..., wk)``.

These helpers create and read such tables generically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dbms.database import Database
from repro.dbms.schema import Column, TableSchema
from repro.dbms.types import SqlType
from repro.errors import ModelError


def store_vector(
    db: Database,
    table_name: str,
    values: np.ndarray,
    column_names: Sequence[str] | None = None,
    replace: bool = True,
) -> None:
    """Store a vector as a one-row table (the BETA/MU/W layout)."""
    values = np.asarray(values, dtype=float).reshape(-1)
    if column_names is None:
        column_names = [f"x{a + 1}" for a in range(values.shape[0])]
    if len(column_names) != values.shape[0]:
        raise ModelError(
            f"{len(column_names)} column names for {values.shape[0]} values"
        )
    if replace and db.catalog.has_table(table_name):
        db.drop_table(table_name)
    schema = TableSchema(
        tuple(Column(name, SqlType.FLOAT) for name in column_names)
    )
    db.create_table(table_name, schema)
    db.insert_rows(table_name, [tuple(float(v) for v in values)])


def load_vector(db: Database, table_name: str) -> np.ndarray:
    """Read back a one-row vector table."""
    table = db.table(table_name)
    rows = table.rows()
    if len(rows) != 1:
        raise ModelError(
            f"vector table {table_name!r} has {len(rows)} rows, expected 1"
        )
    return np.asarray([float(v) for v in rows[0]])


def store_matrix(
    db: Database,
    table_name: str,
    matrix: np.ndarray,
    column_names: Sequence[str] | None = None,
    replace: bool = True,
) -> None:
    """Store a k × d matrix as a table ``(j, x1, ..., xd)`` with the row
    index j = 1..k as primary key (the LAMBDA/C/R layout)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ModelError(f"expected a 2-D matrix, got shape {matrix.shape}")
    k, d = matrix.shape
    if column_names is None:
        column_names = [f"x{a + 1}" for a in range(d)]
    if len(column_names) != d:
        raise ModelError(f"{len(column_names)} column names for {d} columns")
    if replace and db.catalog.has_table(table_name):
        db.drop_table(table_name)
    columns = [Column("j", SqlType.INTEGER, nullable=False)]
    columns.extend(Column(name, SqlType.FLOAT) for name in column_names)
    schema = TableSchema(tuple(columns), primary_key="j")
    db.create_table(table_name, schema)
    db.insert_rows(
        table_name,
        [
            (j + 1, *(float(v) for v in matrix[j]))
            for j in range(k)
        ],
    )


def load_matrix(db: Database, table_name: str) -> np.ndarray:
    """Read back a ``(j, x1..xd)`` table as a k × d matrix ordered by j."""
    table = db.table(table_name)
    rows = sorted(table.rows(), key=lambda row: row[0])
    if not rows:
        raise ModelError(f"matrix table {table_name!r} is empty")
    return np.asarray([[float(v) for v in row[1:]] for row in rows])
