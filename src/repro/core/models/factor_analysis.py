"""Maximum-likelihood factor analysis via EM on the covariance matrix.

The paper pairs PCA with ML factor analysis (Section 3.1), citing the
EM treatment of linear Gaussian models [Roweis & Ghahramani 1999]: the
model is

    x = Λ f + µ + ε,   f ~ N(0, I_k),   ε ~ N(0, Ψ)  with Ψ diagonal,

and EM needs only the sample covariance S — which derives from
(n, L, Q) — never the data set itself.  Iterations:

    E:  G = (I + Λᵀ Ψ⁻¹ Λ)⁻¹,        B = G Λᵀ Ψ⁻¹
    M:  Λ ← S Bᵀ (G + B S Bᵀ)⁻¹,     Ψ ← diag(S − Λ B S)

Convergence is monitored through the Gaussian log-likelihood of the
implied covariance ΛΛᵀ + Ψ against S.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@dataclass
class FactorAnalysisModel:
    """Loadings Λ (d × k), specific variances Ψ (diagonal), mean µ."""

    loadings: np.ndarray
    noise_variance: np.ndarray
    mean: np.ndarray
    log_likelihood: float
    iterations: int

    @classmethod
    def from_summary(
        cls,
        stats: SummaryStatistics,
        k: int,
        max_iterations: int = 200,
        tolerance: float = 1e-7,
        seed: int = 0,
    ) -> "FactorAnalysisModel":
        d = stats.d
        if not 1 <= k < d:
            raise ModelError(f"factor analysis needs 1 <= k < d, got k={k}")
        S = stats.covariance()
        variances = np.diag(S).copy()
        if np.any(variances <= 0):
            raise ModelError("zero-variance dimension; factor analysis undefined")

        rng = np.random.default_rng(seed)
        loadings = rng.normal(scale=np.sqrt(variances.mean() / k), size=(d, k))
        psi = variances / 2.0

        previous = -np.inf
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            # E step: posterior of the factors given Λ, Ψ.
            psi_inv_loadings = loadings / psi[:, None]
            G = np.linalg.inv(np.eye(k) + loadings.T @ psi_inv_loadings)
            B = G @ psi_inv_loadings.T
            # M step.
            SBt = S @ B.T
            loadings = SBt @ np.linalg.inv(G + B @ SBt)
            psi = np.maximum(
                np.diag(S) - np.einsum("ij,ji->i", loadings, B @ S), 1e-12
            )
            current = _gaussian_log_likelihood(S, loadings, psi, stats.n)
            if np.isfinite(previous) and (
                current - previous < tolerance * max(abs(previous), 1.0)
            ):
                previous = current
                break
            previous = current

        return cls(
            loadings=loadings,
            noise_variance=psi,
            mean=stats.mean(),
            log_likelihood=float(previous),
            iterations=iterations,
        )

    @property
    def d(self) -> int:
        return int(self.loadings.shape[0])

    @property
    def k(self) -> int:
        return int(self.loadings.shape[1])

    def implied_covariance(self) -> np.ndarray:
        """The model covariance ΛΛᵀ + Ψ."""
        return self.loadings @ self.loadings.T + np.diag(self.noise_variance)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Posterior-mean factor scores E[f | x] = B (x − µ)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        psi_inv_loadings = self.loadings / self.noise_variance[:, None]
        G = np.linalg.inv(np.eye(self.k) + self.loadings.T @ psi_inv_loadings)
        B = G @ psi_inv_loadings.T
        return (X - self.mean) @ B.T

    def communalities(self) -> np.ndarray:
        """Per-dimension variance explained by the common factors."""
        return np.sum(self.loadings**2, axis=1)


def _gaussian_log_likelihood(
    S: np.ndarray, loadings: np.ndarray, psi: np.ndarray, n: float
) -> float:
    d = S.shape[0]
    sigma = loadings @ loadings.T + np.diag(psi)
    sign, logdet = np.linalg.slogdet(sigma)
    if sign <= 0:
        raise ModelError("implied covariance is not positive definite")
    trace_term = float(np.trace(np.linalg.solve(sigma, S)))
    return -0.5 * n * (d * np.log(2.0 * np.pi) + logdet + trace_term)
