"""Correlation analysis from the summary matrices.

The correlation matrix is not a model the paper scores with, but it is
the input to PCA/FA and the basic tool for understanding linear
relationships between dimension pairs.  From (n, L, Q):

    ρ_ab = (n·Q_ab − L_a·L_b) / (√(n·Q_aa − L_a²) · √(n·Q_bb − L_b²))

Building ρ takes O(d²) once the summary exists — no access to X.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@dataclass
class CorrelationModel:
    """The d × d Pearson correlation matrix with convenience queries."""

    rho: np.ndarray
    n: float
    dimension_names: list[str] | None = None

    @classmethod
    def from_summary(
        cls,
        stats: SummaryStatistics,
        dimension_names: "list[str] | None" = None,
    ) -> "CorrelationModel":
        if dimension_names is not None and len(dimension_names) != stats.d:
            raise ModelError(
                f"{len(dimension_names)} names for {stats.d} dimensions"
            )
        return cls(stats.correlation(), stats.n, dimension_names)

    @property
    def d(self) -> int:
        return int(self.rho.shape[0])

    def _index_of(self, dimension: "int | str") -> int:
        if isinstance(dimension, str):
            if self.dimension_names is None:
                raise ModelError("model was built without dimension names")
            try:
                return self.dimension_names.index(dimension)
            except ValueError:
                raise ModelError(f"unknown dimension {dimension!r}") from None
        if not 0 <= dimension < self.d:
            raise ModelError(f"dimension index {dimension} out of range")
        return dimension

    def coefficient(self, a: "int | str", b: "int | str") -> float:
        """ρ between two dimensions (by index or by column name)."""
        return float(self.rho[self._index_of(a), self._index_of(b)])

    def strongest_pairs(self, top: int = 10) -> list[tuple[int, int, float]]:
        """Dimension pairs ranked by |ρ|, strongest first."""
        pairs = [
            (a, b, float(self.rho[a, b]))
            for a in range(self.d)
            for b in range(a)
        ]
        pairs.sort(key=lambda item: abs(item[2]), reverse=True)
        return pairs[:top]

    def t_statistic(self, a: "int | str", b: "int | str") -> float:
        """The t statistic for H0: ρ_ab = 0 with n − 2 degrees of freedom.

        t = ρ √(n−2) / √(1−ρ²); large |t| rejects independence.
        """
        r = self.coefficient(a, b)
        if self.n <= 2:
            raise ModelError("t statistic needs n > 2")
        if abs(r) >= 1.0:
            return math.inf if r > 0 else -math.inf
        return r * math.sqrt(self.n - 2.0) / math.sqrt(1.0 - r * r)

    def significant_pairs(
        self, threshold: float = 1.96
    ) -> list[tuple[int, int, float]]:
        """Pairs whose |t| exceeds *threshold* (≈ 5% two-sided for large n)."""
        return [
            (a, b, rho)
            for a, b, rho in self.strongest_pairs(top=self.d * self.d)
            if abs(self.t_statistic(a, b)) > threshold
        ]
