"""Principal component analysis from the summary matrices.

PCA needs only the correlation matrix ρ or the covariance matrix V,
both of which derive from (n, L, Q) — so once the summary exists, the
O(d³) eigendecomposition runs outside the scan (paper, Sections 3.1-3.2).
Using ρ puts all dimensions on the same scale; using V keeps original
scales.

The output is the d × k dimensionality-reduction matrix Λ whose columns
are orthonormal component vectors; a point is reduced with

    x′ = Λᵀ (x − µ)

(divided by the per-dimension standard deviation first when the model
was built from the correlation matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import SummaryStatistics
from repro.errors import ModelError


@dataclass
class PCAModel:
    """Components Λ (d × k), the data mean µ and the spectrum."""

    components: np.ndarray
    mean: np.ndarray
    eigenvalues: np.ndarray
    scale: np.ndarray | None = None

    @classmethod
    def from_summary(
        cls,
        stats: SummaryStatistics,
        k: int,
        use_correlation: bool = True,
    ) -> "PCAModel":
        """Decompose ρ (default) or V and keep the top k components."""
        d = stats.d
        if not 1 <= k <= d:
            raise ModelError(f"k must be in [1, {d}], got {k}")
        matrix = stats.correlation() if use_correlation else stats.covariance()
        # eigh returns ascending eigenvalues of the symmetric matrix; we
        # want the top k, largest first.
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        order = np.argsort(eigenvalues)[::-1][:k]
        components = eigenvectors[:, order]
        # Fix signs deterministically: largest-|entry| coordinate positive.
        for j in range(k):
            pivot = np.argmax(np.abs(components[:, j]))
            if components[pivot, j] < 0:
                components[:, j] = -components[:, j]
        scale = np.sqrt(stats.variances()) if use_correlation else None
        if scale is not None and np.any(scale <= 0):
            raise ModelError("zero-variance dimension; correlation PCA undefined")
        return cls(
            components=components,
            mean=stats.mean(),
            eigenvalues=eigenvalues[order],
            scale=scale,
        )

    @property
    def d(self) -> int:
        return int(self.components.shape[0])

    @property
    def k(self) -> int:
        return int(self.components.shape[1])

    def transform(self, X: np.ndarray) -> np.ndarray:
        """x′ = Λᵀ(x − µ) for each row (standardized first for ρ-based)."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        centered = X - self.mean
        if self.scale is not None:
            centered = centered / self.scale
        return centered @ self.components

    def inverse_transform(self, reduced: np.ndarray) -> np.ndarray:
        """Map k-dimensional scores back to the original space."""
        reduced = np.asarray(reduced, dtype=float)
        if reduced.ndim == 1:
            reduced = reduced.reshape(1, -1)
        if reduced.shape[1] != self.k:
            raise ModelError(
                f"model has k={self.k}, scores have {reduced.shape[1]} columns"
            )
        restored = reduced @ self.components.T
        if self.scale is not None:
            restored = restored * self.scale
        return restored + self.mean

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each kept component."""
        total = float(np.sum(np.abs(self.eigenvalues))) if self.k == self.d \
            else None
        if total is None:
            # Eigenvalues of ρ sum to d; of V, to the total variance —
            # recover the total from the stored spectrum when k < d is
            # not enough, so fall back to the trace rule for ρ.
            if self.scale is not None:
                total = float(self.d)
            else:
                raise ModelError(
                    "explained-variance ratio for covariance PCA needs "
                    "k = d (the full spectrum)"
                )
        return np.abs(self.eigenvalues) / total

    def orthogonality_error(self) -> float:
        """‖ΛᵀΛ − I_k‖∞ — the paper's Λ·Λᵀ = I orthogonality property."""
        gram = self.components.T @ self.components
        return float(np.max(np.abs(gram - np.eye(self.k))))
