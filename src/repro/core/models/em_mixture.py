"""EM clustering: mixtures of diagonal Gaussians on sufficient statistics.

The paper discusses EM alongside K-means (Sections 3.1-3.2): like
K-means, its M step needs only per-cluster (N_j, L_j, Q_j) — here
*weighted* by the E step's responsibilities — and clustering assumes
dimension independence, so Q_j is kept diagonal.  This module is the
full EM implementation the paper's framework supports (cf. the author's
SQLEM line of work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GaussianMixtureModel:
    """Means C (k × d), diagonal variances R (k × d), weights W (k)."""

    means: np.ndarray
    variances: np.ndarray
    weights: np.ndarray
    log_likelihood: float = float("nan")
    iterations: int = 0

    @property
    def k(self) -> int:
        return int(self.means.shape[0])

    @property
    def d(self) -> int:
        return int(self.means.shape[1])

    # --------------------------------------------------------------- fitting
    @classmethod
    def fit_matrix(
        cls,
        X: np.ndarray,
        k: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        variance_floor: float = 1e-6,
        seed: int = 0,
    ) -> "GaussianMixtureModel":
        X = np.asarray(X, dtype=float)
        n, d = X.shape
        if not 1 <= k <= n:
            raise ModelError(f"k must be in [1, {n}], got {k}")
        rng = np.random.default_rng(seed)
        # Initialize from random distinct points with global variances.
        means = X[rng.choice(n, size=k, replace=False)].astype(float)
        global_variance = np.maximum(X.var(axis=0), variance_floor)
        variances = np.tile(global_variance, (k, 1))
        weights = np.full(k, 1.0 / k)
        model = cls(means, variances, weights)

        previous = -np.inf
        for iteration in range(1, max_iterations + 1):
            log_resp, log_likelihood = model._e_step(X)
            responsibilities = np.exp(log_resp)
            # M step from weighted sufficient statistics: N_j = Σ r_ij,
            # L_j = Σ r_ij x_i, Q_j(diag) = Σ r_ij x_i² — the weighted
            # analogue of the paper's per-cluster summaries.
            Nj = responsibilities.sum(axis=0)
            if np.any(Nj <= 0):
                raise ModelError("a mixture component collapsed to zero weight")
            Lj = responsibilities.T @ X
            Qj = responsibilities.T @ (X * X)
            means = Lj / Nj[:, None]
            variances = np.maximum(
                Qj / Nj[:, None] - means**2, variance_floor
            )
            weights = Nj / n
            model = cls(means, variances, weights, log_likelihood, iteration)
            if np.isfinite(previous) and (
                log_likelihood - previous <= tolerance * max(abs(previous), 1.0)
            ):
                break
            previous = log_likelihood
        # The loop's log-likelihood was evaluated at the *pre-M-step*
        # parameters; store the value the final parameters achieve.
        _, final_log_likelihood = model._e_step(X)
        model.log_likelihood = final_log_likelihood
        return model

    @classmethod
    def fit_dbms(
        cls,
        db,
        table: str,
        dimensions: "list[str]",
        k: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        variance_floor: float = 1e-6,
        seed: int = 0,
    ) -> "GaussianMixtureModel":
        """DBMS-driven EM, one fused scan per iteration.

        Each iteration installs the current mixture on the ``emiter``
        aggregate UDF and runs one SELECT: the E step's responsibilities
        and the weighted per-cluster summaries are computed inside the
        scan, with no materialized responsibility table.  Initialization
        replays :meth:`fit_matrix`'s RNG draws exactly; the per-cluster
        matrix products are merged per partition, so parameters match an
        in-memory fit to float merge-order (not bitwise).
        """
        from repro.core.fused import (
            fused_call_sql,
            register_fused_udfs,
            unpack_fused_payload,
        )

        udf = register_fused_udfs(db)["emiter"]
        X = db.table(table).numeric_matrix(dimensions)
        n, d = X.shape
        if not 1 <= k <= n:
            raise ModelError(f"k must be in [1, {n}], got {k}")
        rng = np.random.default_rng(seed)
        means = X[rng.choice(n, size=k, replace=False)].astype(float)
        global_variance = np.maximum(X.var(axis=0), variance_floor)
        variances = np.tile(global_variance, (k, 1))
        weights = np.full(k, 1.0 / k)
        model = cls(means, variances, weights)
        sql = fused_call_sql("emiter", table, dimensions)

        previous = -np.inf
        for iteration in range(1, max_iterations + 1):
            udf.set_model(model)
            payload = db.execute(sql).scalar()
            groups, log_likelihood = unpack_fused_payload(payload)
            Nj = np.zeros(k)
            Lj = np.zeros((k, d))
            Qj = np.zeros((k, d))
            for j, stats in groups.items():
                Nj[j - 1] = stats.n
                Lj[j - 1] = stats.L
                Qj[j - 1] = np.diag(stats.Q)
            if np.any(Nj <= 0):
                raise ModelError("a mixture component collapsed to zero weight")
            means = Lj / Nj[:, None]
            variances = np.maximum(
                Qj / Nj[:, None] - means**2, variance_floor
            )
            weights = Nj / n
            model = cls(means, variances, weights, log_likelihood, iteration)
            if np.isfinite(previous) and (
                log_likelihood - previous <= tolerance * max(abs(previous), 1.0)
            ):
                break
            previous = log_likelihood
        # One more fused scan evaluates the log-likelihood the *final*
        # parameters achieve (the loop's value predates its M step).
        udf.set_model(model)
        _, final_log_likelihood = unpack_fused_payload(
            db.execute(sql).scalar()
        )
        model.log_likelihood = final_log_likelihood
        return model

    # --------------------------------------------------------------- scoring
    def _log_component_densities(self, X: np.ndarray) -> np.ndarray:
        """log w_j + log N(x | C_j, diag R_j) for each row and component."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        log_densities = np.empty((X.shape[0], self.k))
        for j in range(self.k):
            centered = X - self.means[j]
            quad = np.sum(centered * centered / self.variances[j], axis=1)
            log_norm = -0.5 * (
                self.d * _LOG_2PI + float(np.sum(np.log(self.variances[j])))
            )
            log_densities[:, j] = (
                np.log(max(self.weights[j], 1e-300)) + log_norm - 0.5 * quad
            )
        return log_densities

    def _e_step(self, X: np.ndarray) -> tuple[np.ndarray, float]:
        log_densities = self._log_component_densities(X)
        peak = log_densities.max(axis=1, keepdims=True)
        log_total = peak + np.log(
            np.exp(log_densities - peak).sum(axis=1, keepdims=True)
        )
        return log_densities - log_total, float(log_total.sum())

    def responsibilities(self, X: np.ndarray) -> np.ndarray:
        """Posterior component probabilities per row (n × k)."""
        log_resp, _ = self._e_step(X)
        return np.exp(log_resp)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most likely component per row (1-based, matching K-means)."""
        return np.argmax(self._log_component_densities(X), axis=1) + 1

    def score(self, X: np.ndarray) -> float:
        """Total log-likelihood of X under the mixture."""
        _, log_likelihood = self._e_step(X)
        return log_likelihood
