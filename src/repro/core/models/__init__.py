"""Statistical models built from the summary matrices (n, L, Q)."""

from repro.core.models.correlation import CorrelationModel
from repro.core.models.regression import LinearRegressionModel
from repro.core.models.pca import PCAModel
from repro.core.models.factor_analysis import FactorAnalysisModel
from repro.core.models.kmeans import KMeansModel
from repro.core.models.em_mixture import GaussianMixtureModel
from repro.core.models.naive_bayes import NaiveBayesModel
from repro.core.models.lda import LdaModel

__all__ = [
    "CorrelationModel",
    "FactorAnalysisModel",
    "GaussianMixtureModel",
    "KMeansModel",
    "LdaModel",
    "LinearRegressionModel",
    "NaiveBayesModel",
    "PCAModel",
]
