"""Linear discriminant analysis from per-class summary statistics.

LDA needs, per class c, the counts N_c and means µ_c, plus the *pooled
within-class* covariance

    S_w = ( Σ_c [ Q_c − N_c µ_c µ_cᵀ ] ) / (n − C)

— every term of which is a per-class (N, L, Q) with the full/triangular
cross-products.  So a single GROUP BY aggregate query over the training
set (the same query the paper uses for clustering, with a triangular Q)
suffices to build the classifier; another technique that drops out of
the sufficient-statistics framework.

The discriminant for class c is the usual Gaussian-equal-covariance form

    δ_c(x) = xᵀ S_w⁻¹ µ_c − ½ µ_cᵀ S_w⁻¹ µ_c + log prior_c.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import ModelError


@dataclass
class LdaModel:
    """Per-class linear discriminants δ_c(x) = wᵀ_c x + b_c."""

    classes: list[int]
    weights: np.ndarray      # C × d
    biases: np.ndarray       # C
    means: np.ndarray        # C × d
    pooled_covariance: np.ndarray

    @property
    def d(self) -> int:
        return int(self.weights.shape[1])

    @classmethod
    def from_class_summaries(
        cls,
        summaries: "dict[int, SummaryStatistics]",
        regularization: float = 1e-8,
    ) -> "LdaModel":
        """Build from per-class (N_c, L_c, Q_c) with cross-products."""
        if not summaries:
            raise ModelError("no class summaries")
        classes = sorted(summaries)
        first = summaries[classes[0]]
        if first.matrix_type is MatrixType.DIAGONAL:
            raise ModelError(
                "LDA needs cross-products; compute the class summaries "
                "with a triangular or full Q"
            )
        d = first.d
        total = sum(stats.n for stats in summaries.values())
        if total <= len(classes):
            raise ModelError("not enough rows to pool a covariance")

        scatter = np.zeros((d, d))
        means = np.empty((len(classes), d))
        priors = np.empty(len(classes))
        for index, label in enumerate(classes):
            stats = summaries[label]
            if stats.d != d:
                raise ModelError(f"class {label} has d={stats.d}, expected {d}")
            if stats.n < 2:
                raise ModelError(f"class {label} has fewer than 2 rows")
            mu = stats.mean()
            means[index] = mu
            priors[index] = stats.n / total
            # Q_c − N_c µ_c µ_cᵀ is the class's centered scatter matrix.
            scatter += stats.Q - stats.n * np.outer(mu, mu)
        pooled = scatter / (total - len(classes))
        pooled += regularization * np.eye(d) * max(np.trace(pooled) / d, 1.0)

        try:
            solved = np.linalg.solve(pooled, means.T).T  # C × d
        except np.linalg.LinAlgError as exc:
            raise ModelError("pooled covariance is singular") from exc
        biases = -0.5 * np.einsum("cd,cd->c", solved, means) + np.log(priors)
        return cls(classes, solved, biases, means, pooled)

    @classmethod
    def fit_matrix(
        cls, X: np.ndarray, labels: np.ndarray, **kwargs
    ) -> "LdaModel":
        X = np.asarray(X, dtype=float)
        labels = np.asarray(labels)
        summaries = {
            int(label): SummaryStatistics.from_matrix(X[labels == label])
            for label in np.unique(labels)
        }
        return cls.from_class_summaries(summaries, **kwargs)

    # --------------------------------------------------------------- scoring
    def discriminants(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.d:
            raise ModelError(
                f"model has d={self.d}, data has {X.shape[1]} dimensions"
            )
        return X @ self.weights.T + self.biases

    def predict(self, X: np.ndarray) -> np.ndarray:
        winners = np.argmax(self.discriminants(X), axis=1)
        return np.asarray([self.classes[w] for w in winners])

    def accuracy(self, X: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(labels)))

    def decision_boundary_normal(self, first: int, second: int) -> np.ndarray:
        """The normal vector of the hyperplane separating two classes."""
        a = self.classes.index(first)
        b = self.classes.index(second)
        return self.weights[a] - self.weights[b]
