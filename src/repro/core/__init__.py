"""The paper's primary contribution: summary matrices, the aggregate nLQ
UDF, SQL generation, statistical models built from (n, L, Q), and scalar
scoring UDFs."""

from repro.core.summary import MatrixType, SummaryStatistics
from repro.core.nlq_udf import NlqListUdf, NlqStringUdf, register_nlq_udfs
from repro.core.sqlgen import NlqSqlGenerator

__all__ = [
    "MatrixType",
    "NlqListUdf",
    "NlqSqlGenerator",
    "NlqStringUdf",
    "SummaryStatistics",
    "register_nlq_udfs",
]
