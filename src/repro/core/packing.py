"""String packing of vectors and (n, L, Q) payloads.

Teradata UDFs can neither take arrays as parameters nor return them
(paper, Section 2.2), so the paper's aggregate UDF has a variant that
receives each point *packed as a string* and — in every variant —
returns the whole (n, L, Q) result packed as one long string.  This
module is that wire format.

Formats
-------
Vector:   ``v1,v2,...,vd`` — decimal floats joined by commas.

Payload:  ``d;type;n;L;Qrows[;mins;maxs]`` where ``L`` is a packed
vector, ``Qrows`` joins the stored rows of Q with ``|`` (diagonal type
stores only the diagonal; triangular stores the lower triangle rows),
and the optional extrema are packed vectors.

Floats are serialized with ``repr`` so the round trip is exact — the
pack/parse *cost* (the interesting part in the paper) is charged by the
cost model, not by the byte format.
"""

from __future__ import annotations

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.errors import PackingError

VECTOR_SEPARATOR = ","
SECTION_SEPARATOR = ";"
ROW_SEPARATOR = "|"


def pack_vector(values: "np.ndarray | list[float]") -> str:
    """Pack a numeric vector as a comma-separated string."""
    array = np.asarray(values, dtype=float).reshape(-1)
    return VECTOR_SEPARATOR.join(repr(float(v)) for v in array)


def unpack_vector(text: str, expected_d: int | None = None) -> np.ndarray:
    """Parse a packed vector; the length check is the paper's 'unpacking
    routine determines d'."""
    if not isinstance(text, str):
        raise PackingError(f"expected a packed string, got {type(text).__name__}")
    stripped = text.strip()
    if not stripped:
        raise PackingError("empty packed vector")
    try:
        values = np.asarray(
            [float(piece) for piece in stripped.split(VECTOR_SEPARATOR)]
        )
    except ValueError as exc:
        raise PackingError(f"malformed packed vector: {exc}") from exc
    if expected_d is not None and values.shape[0] != expected_d:
        raise PackingError(
            f"packed vector has {values.shape[0]} entries, expected {expected_d}"
        )
    return values


def vector_char_cost(d: int) -> float:
    """Average packed-string length for a d-dimensional point.

    Used by the cost model for the string-passing UDF variant: floats
    serialize to roughly 18 characters plus the separator.  (The paper
    charges both the float→text cast at the call site and the text→float
    parse inside the UDF; the constant covers one direction, and the
    cost model's per-character rate covers the pair.)
    """
    return 19.0 * d


def pack_summary(stats: SummaryStatistics) -> str:
    """Pack a summary into the single long string the aggregate UDF
    returns (the paper's 'matrices are packed and returned')."""
    d = stats.d
    sections = [
        str(d),
        str(stats.matrix_type.code),
        repr(float(stats.n)),
        pack_vector(stats.L),
    ]
    if stats.matrix_type is MatrixType.DIAGONAL:
        sections.append(pack_vector(np.diag(stats.Q)))
    elif stats.matrix_type is MatrixType.TRIANGULAR:
        rows = [pack_vector(stats.Q[a, : a + 1]) for a in range(d)]
        sections.append(ROW_SEPARATOR.join(rows))
    else:
        rows = [pack_vector(stats.Q[a]) for a in range(d)]
        sections.append(ROW_SEPARATOR.join(rows))
    if stats.mins is not None and stats.maxs is not None:
        sections.append(pack_vector(stats.mins))
        sections.append(pack_vector(stats.maxs))
    return SECTION_SEPARATOR.join(sections)


def unpack_summary(payload: str) -> SummaryStatistics:
    """Parse a packed (n, L, Q) payload back into a summary."""
    if not isinstance(payload, str):
        raise PackingError(
            f"expected a packed payload string, got {type(payload).__name__}"
        )
    sections = payload.split(SECTION_SEPARATOR)
    if len(sections) not in (5, 7):
        raise PackingError(
            f"payload has {len(sections)} sections, expected 5 or 7"
        )
    try:
        d = int(sections[0])
        matrix_type = MatrixType.from_code(int(sections[1]))
        n = float(sections[2])
    except ValueError as exc:
        raise PackingError(f"malformed payload header: {exc}") from exc
    L = unpack_vector(sections[3], d)
    Q = np.zeros((d, d))
    if matrix_type is MatrixType.DIAGONAL:
        np.fill_diagonal(Q, unpack_vector(sections[4], d))
    elif matrix_type is MatrixType.TRIANGULAR:
        rows = sections[4].split(ROW_SEPARATOR)
        if len(rows) != d:
            raise PackingError(f"payload Q has {len(rows)} rows, expected {d}")
        for a, row in enumerate(rows):
            Q[a, : a + 1] = unpack_vector(row, a + 1)
            Q[: a + 1, a] = Q[a, : a + 1]
    else:
        rows = sections[4].split(ROW_SEPARATOR)
        if len(rows) != d:
            raise PackingError(f"payload Q has {len(rows)} rows, expected {d}")
        for a, row in enumerate(rows):
            Q[a] = unpack_vector(row, d)
    mins = maxs = None
    if len(sections) == 7:
        mins = unpack_vector(sections[5], d)
        maxs = unpack_vector(sections[6], d)
    return SummaryStatistics(n, L, Q, matrix_type, mins, maxs)


def payload_value_count(d: int, matrix_type: MatrixType) -> int:
    """Number of numeric values in a packed payload (for return-cost
    accounting): header + L + stored Q + extrema."""
    if matrix_type is MatrixType.DIAGONAL:
        q_values = d
    elif matrix_type is MatrixType.TRIANGULAR:
        q_values = d * (d + 1) // 2
    else:
        q_values = d * d
    return 3 + d + q_values + 2 * d
