"""Factorized aggregation math: combine per-base-table partials.

Execution half of the factorized-join path (the planning half is
:mod:`repro.dbms.sql.factorize`).  Everything here is pure math over
rows and numpy arrays — no database imports — so the executor can fan
the fold functions out as partition tasks and combine on the
coordinator, exactly like the single-table aggregate path.

The decomposition, following arXiv:1703.04780 (sparse-tensor /
functional-dependency factorized learning) and Rk-means
(arXiv:1910.04939) for the clustering iteration:

* **dimension side** — one pass per dimension table builds a key →
  feature-vector map (PK → the columns the aggregate reads);
* **fact side** — one pass over the fact table groups rows by their
  FK tuple, keeping per-group counts and fact-column sums (plus global
  fact-column cross products), never touching the dimension rows;
* **combine** — per-group counts weight the dimension vectors:
  ``L_dim = Σ_g C_g · D[key_g]``, ``Q_dim = Σ_g C_g · D[key_g] ⊗
  D[key_g]``, ``Q_fact,dim = Σ_g S_g ⊗ D[key_g]`` — O(#groups · d²)
  math instead of O(|join| · d²).

Inner-join semantics are preserved exactly: NULL FKs never equal a
key, NaN keys compare unequal to themselves, and dangling FKs have no
dimension entry — all three drop the fact row, just as the join
predicate would.  NULL feature values skip rows per aggregate
null-handling (``skips_nulls``), while genuine NaN floats flow through
and poison sums identically to the row-path reference.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics

#: resolved argument source, produced by the executor from a
#: FactorizeDecision: ("fact", fact_arg_index), ("dim", dim_index,
#: local_feature_index) or ("const", float_value)
Source = "tuple"


class FactorizedFallback(Exception):
    """The factorized plan cannot answer this data; use the join path.

    Raised when an assumption the *planner* could not check fails at
    run time — today, a duplicated primary key in a dimension table
    (each duplicate would multiply joined rows, which per-key counts
    cannot express).  The executor catches this and re-runs the
    statement through the materializing join path, so results are
    always correct.
    """


def valid_key(value: Any) -> bool:
    """Can this value match a join key?  NULL and NaN never join."""
    if value is None:
        return False
    if isinstance(value, float) and math.isnan(value):
        return False
    return True


# --------------------------------------------------------------- dim side
def fold_dim_partition(
    rows: Iterable[Sequence[Any]],
    key_position: int,
    feature_positions: Sequence[int],
) -> "tuple[dict, set, dict]":
    """One dimension partition → ``(values, null_any, raw)``.

    * ``values``: key → float feature vector (NULL becomes NaN so the
      vector stays numeric; genuine NaN is indistinguishable here, but
      ``null_any`` disambiguates);
    * ``null_any``: keys whose features include a genuine NULL — rows
      joining them are skipped by null-skipping aggregates;
    * ``raw``: key → unconverted feature tuple (builtin SUM/COUNT use
      Python arithmetic to preserve int results exactly).
    """
    values: dict = {}
    null_any: set = set()
    raw: dict = {}
    for row in rows:
        key = row[key_position]
        if not valid_key(key):
            continue
        if key in values:
            raise FactorizedFallback(
                f"duplicate primary key {key!r} in dimension table"
            )
        feats = tuple(row[position] for position in feature_positions)
        raw[key] = feats
        if any(value is None for value in feats):
            null_any.add(key)
        values[key] = np.array(
            [math.nan if value is None else float(value) for value in feats],
            dtype=float,
        )
    return values, null_any, raw


def merge_dim_partitions(
    parts: Sequence["tuple[dict, set, dict]"],
) -> "tuple[dict, set, dict]":
    """Merge per-partition dimension maps (partition order)."""
    values: dict = {}
    null_any: set = set()
    raw: dict = {}
    for part_values, part_null_any, part_raw in parts:
        for key in part_values:
            if key in values:
                raise FactorizedFallback(
                    f"duplicate primary key {key!r} in dimension table"
                )
        values.update(part_values)
        null_any |= part_null_any
        raw.update(part_raw)
    return values, null_any, raw


def _match_keys(
    row: Sequence[Any],
    key_positions: Sequence[int],
    dim_maps: Sequence["tuple[dict, set]"],
) -> "tuple | None":
    """The row's FK tuple if every arm matches, else None (row drops)."""
    keys = []
    for position, (values, _null_any) in zip(key_positions, dim_maps):
        key = row[position]
        if not valid_key(key) or key not in values:
            return None
        keys.append(key)
    return tuple(keys)


def _any_null_feature(
    keys: "tuple", dim_maps: Sequence["tuple[dict, set]"]
) -> bool:
    return any(
        key in null_any for key, (_values, null_any) in zip(keys, dim_maps)
    )


def fact_pairs(
    count: int, matrix_type: "MatrixType"
) -> "list[tuple[int, int]]":
    """Which fact-column cross products the fold accumulates globally."""
    if matrix_type is MatrixType.DIAGONAL:
        return [(index, index) for index in range(count)]
    return [
        (a, b) for a in range(count) for b in range(count) if a <= b
    ]


# ------------------------------------------------------- summary fact side
def fold_summary_fact_partition(
    rows: Iterable[Sequence[Any]],
    key_positions: Sequence[int],
    dim_maps: Sequence["tuple[dict, set]"],
    fact_positions: Sequence[int],
    pairs: Sequence["tuple[int, int]"],
) -> "tuple[int, dict, list, list, list]":
    """One fact partition → ``(matched, groups, qff, mins, maxs)``.

    ``groups`` maps each FK tuple to ``[count, Σx_0, ..., Σx_{F-1}]``
    over rows the aggregate keeps (all args non-NULL); ``qff`` holds
    the global fact-fact cross products; mins/maxs mirror
    ``np.minimum``/``np.maximum`` NaN propagation.
    """
    groups: dict = {}
    width = len(fact_positions)
    qff = [0.0] * len(pairs)
    mins = [math.inf] * width
    maxs = [-math.inf] * width
    matched = 0
    for row in rows:
        keys = _match_keys(row, key_positions, dim_maps)
        if keys is None:
            continue
        matched += 1
        if _any_null_feature(keys, dim_maps):
            continue
        raw = [row[position] for position in fact_positions]
        if any(value is None for value in raw):
            continue
        floats = [float(value) for value in raw]
        entry = groups.get(keys)
        if entry is None:
            entry = [0.0] * (1 + width)
            groups[keys] = entry
        entry[0] += 1.0
        for index, value in enumerate(floats):
            entry[1 + index] += value
            if value != value:  # NaN poisons, like np.minimum/np.maximum
                mins[index] = maxs[index] = value
            elif mins[index] == mins[index]:
                if value < mins[index]:
                    mins[index] = value
                if value > maxs[index]:
                    maxs[index] = value
        for pair_index, (a, b) in enumerate(pairs):
            qff[pair_index] += floats[a] * floats[b]
    return matched, groups, qff, mins, maxs


def merge_summary_fact_partitions(
    parts: Sequence["tuple[int, dict, list, list, list]"],
    width: int,
    pair_count: int,
) -> "tuple[int, dict, list, list, list]":
    """Merge fact partials strictly in partition order (determinism)."""
    matched = 0
    groups: dict = {}
    qff = [0.0] * pair_count
    mins = [math.inf] * width
    maxs = [-math.inf] * width
    for part_matched, part_groups, part_qff, part_mins, part_maxs in parts:
        matched += part_matched
        for keys, entry in part_groups.items():
            merged = groups.get(keys)
            if merged is None:
                groups[keys] = list(entry)
            else:
                for index, value in enumerate(entry):
                    merged[index] += value
        for index in range(pair_count):
            qff[index] += part_qff[index]
        for index in range(width):
            if part_mins[index] != part_mins[index]:
                mins[index] = maxs[index] = part_mins[index]
            elif mins[index] == mins[index]:
                if part_mins[index] < mins[index]:
                    mins[index] = part_mins[index]
                if part_maxs[index] > maxs[index]:
                    maxs[index] = part_maxs[index]
    return matched, groups, qff, mins, maxs


def _tuple_value_columns(
    tuples: "list[tuple]",
    sources: Sequence["tuple"],
    dim_values: Sequence[dict],
) -> "dict[int, np.ndarray]":
    """Per-tuple value column for every non-fact argument source."""
    columns: "dict[int, np.ndarray]" = {}
    count = len(tuples)
    for position, source in enumerate(sources):
        if source[0] == "const":
            columns[position] = np.full(count, float(source[1]))
        elif source[0] == "dim":
            _kind, dim_index, feature_index = source
            values = dim_values[dim_index]
            columns[position] = np.array(
                [values[keys[dim_index]][feature_index] for keys in tuples],
                dtype=float,
            )
    return columns


def combine_summary(
    merged: "tuple[int, dict, list, list, list]",
    sources: Sequence["tuple"],
    dim_values: Sequence[dict],
    matrix_type: "MatrixType",
) -> "SummaryStatistics":
    """Assemble the full (n, L, Q) from the per-base-table partials."""
    _matched, groups, qff, fact_mins, fact_maxs = merged
    d = len(sources)
    fact_indices = {
        position: source[1]
        for position, source in enumerate(sources)
        if source[0] == "fact"
    }
    width = len(fact_indices)
    pairs = fact_pairs(width, matrix_type)
    if not groups:
        return SummaryStatistics.zeros(d, matrix_type)
    tuples = list(groups)
    counts = np.array([groups[keys][0] for keys in tuples], dtype=float)
    sums = np.array(
        [groups[keys][1:] for keys in tuples], dtype=float
    ).reshape(len(tuples), width)
    value_columns = _tuple_value_columns(tuples, sources, dim_values)
    n = float(counts.sum())
    L = np.zeros(d)
    Q = np.zeros((d, d))
    mins = np.full(d, np.inf)
    maxs = np.full(d, -np.inf)
    nonempty = counts > 0
    for position, source in enumerate(sources):
        if source[0] == "fact":
            fact_index = source[1]
            L[position] = sums[:, fact_index].sum()
            mins[position] = fact_mins[fact_index]
            maxs[position] = fact_maxs[fact_index]
        else:
            column = value_columns[position]
            L[position] = float(counts @ column)
            if nonempty.any():
                mins[position] = float(np.min(column[nonempty]))
                maxs[position] = float(np.max(column[nonempty]))
    pair_totals = {
        (fact_a, fact_b): qff[index]
        for index, (fact_a, fact_b) in enumerate(pairs)
    }
    if matrix_type is MatrixType.DIAGONAL:
        for position, source in enumerate(sources):
            if source[0] == "fact":
                Q[position, position] = pair_totals[(source[1], source[1])]
            else:
                column = value_columns[position]
                Q[position, position] = float(counts @ (column * column))
    else:
        for a in range(d):
            for b in range(a, d):
                source_a, source_b = sources[a], sources[b]
                if source_a[0] == "fact" and source_b[0] == "fact":
                    fa, fb = source_a[1], source_b[1]
                    value = pair_totals[(min(fa, fb), max(fa, fb))]
                elif source_a[0] == "fact":
                    value = float(
                        sums[:, source_a[1]] @ value_columns[b]
                    )
                elif source_b[0] == "fact":
                    value = float(
                        sums[:, source_b[1]] @ value_columns[a]
                    )
                else:
                    value = float(
                        (counts * value_columns[a]) @ value_columns[b]
                    )
                Q[a, b] = value
                Q[b, a] = value
    return SummaryStatistics(
        n=n, L=L, Q=Q, matrix_type=matrix_type, mins=mins, maxs=maxs
    )


# ------------------------------------------------------ builtin aggregates
def fold_builtin_fact_partition(
    rows: Iterable[Sequence[Any]],
    key_positions: Sequence[int],
    dim_maps: Sequence["tuple[dict, set]"],
    dim_raw: Sequence[dict],
    specs: Sequence["tuple"],
) -> "tuple[int, list]":
    """One fact partition of COUNT(*)/SUM partials.

    Each spec is ``("count_star",)`` or ``("sum", terms)`` with terms
    ``("fact", row_position)`` / ``("dim", dim_index, feature_index)``
    / ``("const", value)``.  Sums use Python arithmetic so integer
    results stay integers, exactly like the row path.
    """
    matched = 0
    states: "list" = [
        0 if spec[0] == "count_star" else [None, 0] for spec in specs
    ]
    for row in rows:
        keys = _match_keys(row, key_positions, dim_maps)
        if keys is None:
            continue
        matched += 1
        for index, spec in enumerate(specs):
            if spec[0] == "count_star":
                states[index] += 1
                continue
            product = None
            for term in spec[1]:
                if term[0] == "fact":
                    value = row[term[1]]
                elif term[0] == "dim":
                    value = dim_raw[term[1]][keys[term[1]]][term[2]]
                else:
                    value = term[1]
                if value is None:
                    product = None
                    break
                product = value if product is None else product * value
            if product is not None:
                state = states[index]
                state[0] = product if state[0] is None else state[0] + product
                state[1] += 1
    return matched, states


def merge_builtin_partials(
    parts: Sequence["tuple[int, list]"], specs: Sequence["tuple"]
) -> "tuple[int, list]":
    matched = 0
    states: "list" = [
        0 if spec[0] == "count_star" else [None, 0] for spec in specs
    ]
    for part_matched, part_states in parts:
        matched += part_matched
        for index, spec in enumerate(specs):
            if spec[0] == "count_star":
                states[index] += part_states[index]
                continue
            total, contributed = part_states[index]
            if total is not None:
                state = states[index]
                state[0] = total if state[0] is None else state[0] + total
                state[1] += contributed
    return matched, states


# ------------------------------------------------- fused clustering side
def prepare_kmeans_tables(
    centroids: np.ndarray,
    sources: Sequence["tuple"],
    dim_values: Sequence[dict],
) -> "dict":
    """Per-dimension partial squared distances, per Rk-means.

    ``dist²(x, c_j) = Σ_fact (x_b − c_jb)² + Σ_dim table_i[key][j] +
    base[j]`` — the dimension terms depend only on the FK, so they are
    precomputed once per dimension *key* instead of once per fact row.
    """
    centroids = np.asarray(centroids, dtype=float)
    k = centroids.shape[0]
    fact_positions = [
        position
        for position, source in enumerate(sources)
        if source[0] == "fact"
    ]
    base = np.zeros(k)
    for position, source in enumerate(sources):
        if source[0] == "const":
            base += (float(source[1]) - centroids[:, position]) ** 2
    dim_tables: "list[dict]" = []
    for dim_index, values in enumerate(dim_values):
        positions = [
            position
            for position, source in enumerate(sources)
            if source[0] == "dim" and source[1] == dim_index
        ]
        feature_order = [sources[position][2] for position in positions]
        sub_centroids = centroids[:, positions]  # (k, F_i)
        table: dict = {}
        for key, vector in values.items():
            features = vector[feature_order]
            table[key] = ((features[None, :] - sub_centroids) ** 2).sum(
                axis=1
            )
        dim_tables.append(table)
    return {
        "kind": "kmeans",
        "k": k,
        "fact_centers": centroids[:, fact_positions],
        "base": base,
        "dim_tables": dim_tables,
    }


def prepare_em_tables(
    means: np.ndarray,
    variances: np.ndarray,
    weights: np.ndarray,
    sources: Sequence["tuple"],
    dim_values: Sequence[dict],
) -> "dict":
    """EM analogue: per-key Mahalanobis partials + per-component bias.

    ``log p_j(x) = bias[j] − 0.5·(Σ_fact (x−μ)²/σ² + Σ_dim
    table_i[key][j])`` where bias folds the weight, the normalizer and
    the constant-argument terms.
    """
    means = np.asarray(means, dtype=float)
    variances = np.asarray(variances, dtype=float)
    weights = np.asarray(weights, dtype=float)
    k, d = means.shape
    fact_positions = [
        position
        for position, source in enumerate(sources)
        if source[0] == "fact"
    ]
    bias = (
        np.log(weights)
        - 0.5 * (d * math.log(2.0 * math.pi) + np.log(variances).sum(axis=1))
    )
    for position, source in enumerate(sources):
        if source[0] == "const":
            bias -= 0.5 * (
                (float(source[1]) - means[:, position]) ** 2
                / variances[:, position]
            )
    dim_tables: "list[dict]" = []
    for dim_index, values in enumerate(dim_values):
        positions = [
            position
            for position, source in enumerate(sources)
            if source[0] == "dim" and source[1] == dim_index
        ]
        feature_order = [sources[position][2] for position in positions]
        sub_means = means[:, positions]
        sub_variances = variances[:, positions]
        table: dict = {}
        for key, vector in values.items():
            features = vector[feature_order]
            table[key] = (
                (features[None, :] - sub_means) ** 2 / sub_variances
            ).sum(axis=1)
        dim_tables.append(table)
    return {
        "kind": "em",
        "k": k,
        "fact_means": means[:, fact_positions],
        "fact_variances": variances[:, fact_positions],
        "bias": bias,
        "dim_tables": dim_tables,
    }


def fold_fused_fact_partition(
    rows: Iterable[Sequence[Any]],
    key_positions: Sequence[int],
    dim_maps: Sequence["tuple[dict, set]"],
    fact_positions: Sequence[int],
    tables: "dict",
) -> "tuple":
    """One fact partition of a fused clustering iteration.

    Returns ``(matched, counts, linear_fact, quadratic_fact,
    assignment_maps, extra)`` where ``assignment_maps[i]`` maps each
    dimension-i key to its per-cluster row count (k-means) or summed
    responsibilities (EM) — the weights that later scale the dimension
    vectors into the per-cluster (N, L, Q) partials.
    """
    k = tables["k"]
    width = len(fact_positions)
    counts = np.zeros(k)
    linear = np.zeros((k, width))
    quadratic = np.zeros((k, width))
    assignment_maps: "list[dict]" = [dict() for _ in dim_maps]
    dim_tables = tables["dim_tables"]
    kmeans = tables["kind"] == "kmeans"
    extra = 0.0
    matched = 0
    for row in rows:
        keys = _match_keys(row, key_positions, dim_maps)
        if keys is None:
            continue
        matched += 1
        if _any_null_feature(keys, dim_maps):
            continue
        raw = [row[position] for position in fact_positions]
        if any(value is None for value in raw):
            continue
        x = np.array(raw, dtype=float)
        if kmeans:
            distances = tables["base"] + (
                (x[None, :] - tables["fact_centers"]) ** 2
            ).sum(axis=1)
            for dim_index, key in enumerate(keys):
                distances = distances + dim_tables[dim_index][key]
            cluster = int(np.argmin(distances))
            counts[cluster] += 1.0
            linear[cluster] += x
            quadratic[cluster] += x * x
            for dim_index, key in enumerate(keys):
                weights = assignment_maps[dim_index].get(key)
                if weights is None:
                    weights = np.zeros(k)
                    assignment_maps[dim_index][key] = weights
                weights[cluster] += 1.0
        else:
            quad = (
                (x[None, :] - tables["fact_means"]) ** 2
                / tables["fact_variances"]
            ).sum(axis=1)
            for dim_index, key in enumerate(keys):
                quad = quad + dim_tables[dim_index][key]
            log_prob = tables["bias"] - 0.5 * quad
            peak = float(log_prob.max())
            log_norm = peak + math.log(
                float(np.exp(log_prob - peak).sum())
            )
            responsibility = np.exp(log_prob - log_norm)
            extra += log_norm
            counts += responsibility
            linear += responsibility[:, None] * x[None, :]
            quadratic += responsibility[:, None] * (x * x)[None, :]
            for dim_index, key in enumerate(keys):
                weights = assignment_maps[dim_index].get(key)
                if weights is None:
                    weights = np.zeros(k)
                    assignment_maps[dim_index][key] = weights
                weights += responsibility
    return matched, counts, linear, quadratic, assignment_maps, extra


def merge_fused_fact_partitions(
    parts: Sequence["tuple"], k: int, width: int, dim_count: int
) -> "tuple":
    """Merge fused partials strictly in partition order."""
    matched = 0
    counts = np.zeros(k)
    linear = np.zeros((k, width))
    quadratic = np.zeros((k, width))
    assignment_maps: "list[dict]" = [dict() for _ in range(dim_count)]
    extra = 0.0
    for part in parts:
        (
            part_matched,
            part_counts,
            part_linear,
            part_quadratic,
            part_maps,
            part_extra,
        ) = part
        matched += part_matched
        counts += part_counts
        linear += part_linear
        quadratic += part_quadratic
        extra += part_extra
        for dim_index in range(dim_count):
            target = assignment_maps[dim_index]
            for key, weights in part_maps[dim_index].items():
                existing = target.get(key)
                if existing is None:
                    target[key] = weights.copy()
                else:
                    existing += weights
    return matched, counts, linear, quadratic, assignment_maps, extra


def combine_fused(
    merged: "tuple",
    sources: Sequence["tuple"],
    dim_values: Sequence[dict],
    k: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
    """Full per-cluster (N, L, Q-diagonal) from the fused partials."""
    _matched, counts, linear_fact, quadratic_fact, maps, extra = merged
    d = len(sources)
    linear = np.zeros((k, d))
    quadratic = np.zeros((k, d))
    fact_cursor = 0
    for position, source in enumerate(sources):
        if source[0] == "fact":
            linear[:, position] = linear_fact[:, fact_cursor]
            quadratic[:, position] = quadratic_fact[:, fact_cursor]
            fact_cursor += 1
        elif source[0] == "const":
            value = float(source[1])
            linear[:, position] = counts * value
            quadratic[:, position] = counts * value * value
    for dim_index, values in enumerate(dim_values):
        positions = [
            position
            for position, source in enumerate(sources)
            if source[0] == "dim" and source[1] == dim_index
        ]
        if not positions:
            continue
        feature_order = [sources[position][2] for position in positions]
        keys = list(maps[dim_index])
        if not keys:
            continue
        weight_matrix = np.stack(
            [maps[dim_index][key] for key in keys]
        )  # (#keys, k)
        feature_matrix = np.stack(
            [values[key][feature_order] for key in keys]
        )  # (#keys, F_i)
        linear[:, positions] += weight_matrix.T @ feature_matrix
        quadratic[:, positions] += weight_matrix.T @ (
            feature_matrix * feature_matrix
        )
    return counts, linear, quadratic, extra
