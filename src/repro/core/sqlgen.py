"""SQL code generation for the summary matrices (the paper's Section 3.4
"Summary Matrices Computed with SQL").

A client tool (Teradata Warehouse Miner in the paper) cannot ship arrays
through SQL, so it generates queries whose select lists *are* the
matrices: ``n`` is ``sum(1.0)``, each ``L_a`` is ``sum(Xa)``, and each
``Q_ab`` is ``sum(Xa * Xb)``.  Three strategies from the paper are
implemented:

* one statement per Q entry (``d²`` or ``d(d+1)/2`` statements);
* ``d`` statements for L / one statement for L;
* the single "long" query with ``1 + d + d²`` terms computing everything
  in one table scan — NULL placeholders stand in for the upper triangle
  when only the triangular part is needed, exactly as printed in the
  paper.

The generator also parses the wide one-row result back into a
:class:`~repro.core.summary.SummaryStatistics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database, QueryResult
from repro.errors import ModelError


@dataclass
class NlqSqlGenerator:
    """Generates and runs the plain-SQL route for (n, L, Q).

    Parameters name the data-set table and its dimension columns, in
    order — the layout ``X(i, X1, ..., Xd)`` of Section 2.1.
    """

    table: str
    dimensions: Sequence[str]

    @property
    def d(self) -> int:
        return len(self.dimensions)

    # ---------------------------------------------------------- query texts
    def count_sql(self) -> str:
        """``SELECT sum(1.0) AS n FROM X`` — the first scan's n."""
        return f"SELECT sum(1.0) AS n FROM {self.table}"

    def linear_sum_sql(self) -> str:
        """The one-statement form of L (entries accessed by column name)."""
        terms = ", ".join(f"sum({dim})" for dim in self.dimensions)
        return f"SELECT {terms} FROM {self.table}"

    def linear_sum_statements(self) -> list[str]:
        """The d-statement form of L (entries accessed by subscript a)."""
        return [
            f"SELECT {a + 1} AS a, sum({dim}) AS s FROM {self.table}"
            for a, dim in enumerate(self.dimensions)
        ]

    def q_entry_statements(
        self, matrix_type: MatrixType = MatrixType.TRIANGULAR
    ) -> list[str]:
        """One statement per Q entry: d² (full), d(d+1)/2 (triangular,
        exploiting Q_ab = Q_ba) or d (diagonal)."""
        statements = []
        for a, b in self._entry_pairs(matrix_type):
            dim_a, dim_b = self.dimensions[a], self.dimensions[b]
            statements.append(
                f"SELECT {a + 1} AS a, {b + 1} AS b, "
                f"sum({dim_a} * {dim_b}) AS q FROM {self.table}"
            )
        return statements

    def long_query_sql(
        self, matrix_type: MatrixType = MatrixType.TRIANGULAR
    ) -> str:
        """The single 1 + d + d² term query computing n, L and Q in one
        scan.  Upper-triangle terms are NULL placeholders for the
        triangular type; for the diagonal type every off-diagonal term is
        a placeholder (the select list keeps its full width, which is
        what the cost model charges for)."""
        d = self.d
        terms: list[str] = ["sum(1.0)"]
        terms.extend(f"sum({dim})" for dim in self.dimensions)
        stored = set(self._entry_pairs(matrix_type))
        for a in range(d):
            for b in range(d):
                if (a, b) in stored:
                    terms.append(
                        f"sum({self.dimensions[a]} * {self.dimensions[b]})"
                    )
                else:
                    terms.append("null")
        return f"SELECT {', '.join(terms)} FROM {self.table}"

    def groupby_query_sql(
        self,
        group_expression: str,
        matrix_type: MatrixType = MatrixType.DIAGONAL,
    ) -> str:
        """Per-group (n, L, Q): the SQL analogue of the UDF GROUP BY
        query used to recompute clustering statistics."""
        terms: list[str] = [f"{group_expression} AS grp", "sum(1.0)"]
        terms.extend(f"sum({dim})" for dim in self.dimensions)
        for a, b in self._entry_pairs(matrix_type):
            terms.append(f"sum({self.dimensions[a]} * {self.dimensions[b]})")
        return (
            f"SELECT {', '.join(terms)} FROM {self.table} "
            f"GROUP BY {group_expression} ORDER BY grp"
        )

    def _entry_pairs(self, matrix_type: MatrixType) -> list[tuple[int, int]]:
        d = self.d
        if matrix_type is MatrixType.DIAGONAL:
            return [(a, a) for a in range(d)]
        if matrix_type is MatrixType.TRIANGULAR:
            return [(a, b) for a in range(d) for b in range(a + 1)]
        return [(a, b) for a in range(d) for b in range(d)]

    # -------------------------------------------------------------- execution
    def compute(
        self,
        db: Database,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> SummaryStatistics:
        """Run the long query and decode the wide one-row result."""
        result = db.execute(self.long_query_sql(matrix_type))
        return self.parse_long_result(result, matrix_type)

    def parse_long_result(
        self, result: QueryResult, matrix_type: MatrixType
    ) -> SummaryStatistics:
        d = self.d
        expected = 1 + d + d * d
        row = result.first()
        if len(row) != expected:
            raise ModelError(
                f"long-query result has {len(row)} columns, expected {expected}"
            )
        n = float(row[0]) if row[0] is not None else 0.0
        L = np.asarray(
            [0.0 if value is None else float(value) for value in row[1 : 1 + d]]
        )
        Q = np.zeros((d, d))
        stored = self._entry_pairs(matrix_type)
        flat = row[1 + d :]
        for a in range(d):
            for b in range(d):
                value = flat[a * d + b]
                if value is not None:
                    Q[a, b] = float(value)
        if matrix_type is MatrixType.TRIANGULAR:
            # Mirror the lower triangle (Q_ab = Q_ba).
            Q = Q + Q.T - np.diag(np.diag(Q))
        del stored
        return SummaryStatistics(n, L, Q, matrix_type)

    def compute_per_entry(
        self,
        db: Database,
        matrix_type: MatrixType = MatrixType.TRIANGULAR,
    ) -> SummaryStatistics:
        """Run the naive multi-statement route (one query per entry) —
        the paper's first, slow alternative; kept for the ablation."""
        n = float(db.execute(self.count_sql()).scalar() or 0.0)
        d = self.d
        L = np.zeros(d)
        for statement in self.linear_sum_statements():
            a, value = db.execute(statement).first()
            L[int(a) - 1] = 0.0 if value is None else float(value)
        Q = np.zeros((d, d))
        for statement in self.q_entry_statements(matrix_type):
            a, b, value = db.execute(statement).first()
            if value is not None:
                Q[int(a) - 1, int(b) - 1] = float(value)
        if matrix_type is MatrixType.TRIANGULAR:
            Q = Q + Q.T - np.diag(np.diag(Q))
        return SummaryStatistics(n, L, Q, matrix_type)

    def compute_groups(
        self,
        db: Database,
        group_expression: str,
        matrix_type: MatrixType = MatrixType.DIAGONAL,
    ) -> dict[object, SummaryStatistics]:
        """Run the GROUP BY form; returns one summary per group key."""
        result = db.execute(self.groupby_query_sql(group_expression, matrix_type))
        d = self.d
        pairs = self._entry_pairs(matrix_type)
        groups: dict[object, SummaryStatistics] = {}
        for row in result.rows:
            key = row[0]
            n = float(row[1]) if row[1] is not None else 0.0
            L = np.asarray(
                [0.0 if v is None else float(v) for v in row[2 : 2 + d]]
            )
            Q = np.zeros((d, d))
            for (a, b), value in zip(pairs, row[2 + d :]):
                if value is not None:
                    Q[a, b] = float(value)
            if matrix_type is MatrixType.TRIANGULAR:
                Q = Q + Q.T - np.diag(np.diag(Q))
            groups[key] = SummaryStatistics(n, L, Q, matrix_type)
        return groups
