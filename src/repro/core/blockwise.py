"""Block-partitioned (n, L, Q) for very high dimensionality (Table 6).

The aggregate UDF's state is sized statically for ``MAX_d`` (64)
dimensions so it fits the 64 KB heap segment.  For ``d > MAX_d`` the
paper divides the problem into submatrices: Q is partitioned by
row/column ranges into ``⌈d/64⌉²`` blocks, one UDF call per block, and
*all calls are submitted in a single SELECT* so the engine synchronizes
them over one table scan.  Total time is then proportional to the number
of calls (Table 6).

:class:`NlqBlockUdf` computes one block: given two dimension ranges
``a`` and ``b`` it maintains n, L over the ``a`` range and the cross
quadrant Q_ab = Σ x_a x_bᵀ.  :func:`compute_nlq_blockwise` generates the
combined statement, decodes every block payload and assembles the full
summary.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.nlq_udf import DEFAULT_MAX_D
from repro.core.packing import (
    ROW_SEPARATOR,
    SECTION_SEPARATOR,
    pack_vector,
    unpack_vector,
)
from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database
from repro.dbms.udf import AggregateUdf, RowCost
from repro.errors import PackingError, UdfArgumentError


class _BlockState:
    __slots__ = ("da", "db_", "n", "La", "Qab")

    def __init__(self) -> None:
        self.da: int | None = None
        self.db_: int | None = None
        self.n = 0.0
        self.La: np.ndarray | None = None
        self.Qab: np.ndarray | None = None

    def shape_for(self, da: int, db_: int) -> None:
        if self.da is None:
            self.da = da
            self.db_ = db_
            self.La = np.zeros(da)
            self.Qab = np.zeros((da, db_))
        elif (self.da, self.db_) != (da, db_):
            raise UdfArgumentError(
                f"block shape changed mid-scan: ({self.da},{self.db_}) -> "
                f"({da},{db_})"
            )


class NlqBlockUdf(AggregateUdf):
    """``nlq_block(da, db, xa1..xada, xb1..xbdb)`` — one Q block.

    Each of ``da`` and ``db`` must be at most ``max_d`` so the state
    struct (n, L[max_d], Q[max_d][max_d]) respects the heap segment.
    """

    supports_block = True

    def __init__(self, name: str = "nlq_block", max_d: int = DEFAULT_MAX_D) -> None:
        super().__init__(name)
        self.max_d = max_d
        self._observed: tuple[int, int] = (max_d, max_d)

    def initialize(self) -> _BlockState:
        self.ensure_state_fits(self.state_value_count())
        return _BlockState()

    def _shape_from_args(self, args: Sequence[Any]) -> tuple[int, int]:
        if len(args) < 4:
            raise UdfArgumentError(
                f"UDF {self.name!r} needs (da, db, a-values..., b-values...)"
            )
        da, db_ = int(args[0]), int(args[1])
        if da < 1 or db_ < 1:
            raise UdfArgumentError(f"UDF {self.name!r}: block sizes must be >= 1")
        if da > self.max_d or db_ > self.max_d:
            raise UdfArgumentError(
                f"UDF {self.name!r}: block sizes ({da},{db_}) exceed "
                f"MAX_d={self.max_d}"
            )
        if len(args) != 2 + da + db_:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared block ({da},{db_}) but received "
                f"{len(args) - 2} values"
            )
        return da, db_

    def accumulate(self, state: _BlockState, args: Sequence[Any]) -> _BlockState:
        da, db_ = self._shape_from_args(args)
        state.shape_for(da, db_)
        self._observed = (da, db_)
        xa = np.asarray([float(v) for v in args[2 : 2 + da]])
        xb = np.asarray([float(v) for v in args[2 + da :]])
        state.n += 1.0
        state.La += xa
        state.Qab += np.outer(xa, xb)
        return state

    def accumulate_block(self, state: _BlockState, block: np.ndarray) -> _BlockState:
        if block.shape[0] == 0:
            return state
        da, db_ = int(block[0, 0]), int(block[0, 1])
        if block.shape[1] != 2 + da + db_:
            raise UdfArgumentError(
                f"UDF {self.name!r}: declared block ({da},{db_}) but received "
                f"{block.shape[1] - 2} values"
            )
        state.shape_for(da, db_)
        self._observed = (da, db_)
        Xa = block[:, 2 : 2 + da]
        Xb = block[:, 2 + da :]
        state.n += float(block.shape[0])
        state.La += Xa.sum(axis=0)
        state.Qab += Xa.T @ Xb
        return state

    def merge(self, state: _BlockState, other: _BlockState) -> _BlockState:
        if other.da is None:
            return state
        if state.da is None:
            return other
        state.shape_for(other.da, other.db_)
        state.n += other.n
        state.La += other.La
        state.Qab += other.Qab
        return state

    def finalize(self, state: _BlockState) -> str | None:
        if state.da is None:
            return None
        rows = ROW_SEPARATOR.join(pack_vector(row) for row in state.Qab)
        return SECTION_SEPARATOR.join(
            [
                str(state.da),
                str(state.db_),
                repr(float(state.n)),
                pack_vector(state.La),
                rows,
            ]
        )

    def state_value_count(self) -> int:
        return 3 + self.max_d + self.max_d * self.max_d

    def cost_per_row(self, arg_count: int) -> RowCost:
        da, db_ = self._observed
        return RowCost(list_params=arg_count, arith_ops=da * db_ + da)


def _unpack_block(payload: str) -> tuple[float, np.ndarray, np.ndarray]:
    sections = payload.split(SECTION_SEPARATOR)
    if len(sections) != 5:
        raise PackingError(f"block payload has {len(sections)} sections, expected 5")
    da, db_ = int(sections[0]), int(sections[1])
    n = float(sections[2])
    La = unpack_vector(sections[3], da)
    rows = sections[4].split(ROW_SEPARATOR)
    if len(rows) != da:
        raise PackingError(f"block payload has {len(rows)} Q rows, expected {da}")
    Qab = np.vstack([unpack_vector(row, db_) for row in rows])
    return n, La, Qab


def dimension_blocks(d: int, block: int = DEFAULT_MAX_D) -> list[range]:
    """Partition dimension indices 0..d-1 into ranges of at most *block*."""
    if d < 1:
        raise UdfArgumentError(f"d must be >= 1, got {d}")
    return [range(start, min(start + block, d)) for start in range(0, d, block)]


def blockwise_call_count(d: int, block: int = DEFAULT_MAX_D) -> int:
    """The ⌈d/block⌉² calls one statement carries (paper, Table 6)."""
    blocks = len(dimension_blocks(d, block))
    return blocks * blocks


def blockwise_sql(
    table: str, dimensions: Sequence[str], block: int = DEFAULT_MAX_D
) -> str:
    """The single SELECT invoking ``nlq_block`` once per block pair —
    submitted as one request so the table is scanned once."""
    ranges = dimension_blocks(len(dimensions), block)
    calls: list[str] = []
    for range_a in ranges:
        names_a = [dimensions[index] for index in range_a]
        for range_b in ranges:
            names_b = [dimensions[index] for index in range_b]
            args = ", ".join(
                [str(len(names_a)), str(len(names_b)), *names_a, *names_b]
            )
            calls.append(f"nlq_block({args})")
    return f"SELECT {', '.join(calls)} FROM {table}"


def compute_nlq_blockwise(
    db: Database,
    table: str,
    dimensions: Sequence[str],
    block: int = DEFAULT_MAX_D,
) -> SummaryStatistics:
    """Compute a FULL-type summary for arbitrary d via block partitioning.

    Requires :class:`NlqBlockUdf` registered as ``nlq_block``.
    """
    d = len(dimensions)
    ranges = dimension_blocks(d, block)
    result = db.execute(blockwise_sql(table, dimensions, block))
    row = result.first()
    n = 0.0
    L = np.zeros(d)
    Q = np.zeros((d, d))
    position = 0
    for range_a in ranges:
        for range_b in ranges:
            payload = row[position]
            position += 1
            if payload is None:
                continue
            block_n, La, Qab = _unpack_block(payload)
            n = block_n  # every block sees the same rows
            L[list(range_a)] = La
            Q[np.ix_(list(range_a), list(range_b))] = Qab
    return SummaryStatistics(n, L, Q, MatrixType.FULL)
