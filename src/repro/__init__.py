"""repro — reproduction of "Building Statistical Models and Scoring with
UDFs" (Carlos Ordonez, SIGMOD 2007).

The package computes multidimensional statistical models *inside* a
relational DBMS in a single table scan, by reducing correlation, linear
regression, PCA / factor analysis and clustering to two summary matrices
— the linear sum of points L and the quadratic sum of cross-products Q —
maintained by SQL queries or by an aggregate UDF, and scores data sets
with scalar UDFs.  Everything the paper's system needs is built from
scratch: the relational engine (:mod:`repro.dbms`), the UDF framework,
the statistical models (:mod:`repro.core`), the ODBC-export / external
C++ comparison points (:mod:`repro.odbc`, :mod:`repro.external`), the
synthetic workloads (:mod:`repro.workloads`) and the high-level client
(:mod:`repro.twm`).

Quick start::

    from repro import WarehouseMiner

    miner = WarehouseMiner()
    miner.load_synthetic("x", n=10_000, d=8, with_y=True)
    stats = miner.summarize("x")          # one-scan (n, L, Q) via the UDF
    model = miner.linear_regression("x")  # solved from the summary
    print(model.r_squared())
"""

from repro.core.summary import MatrixType, SummaryStatistics
from repro.dbms.database import Database, QueryResult
from repro.twm.miner import WarehouseMiner

__version__ = "1.0.0"

__all__ = [
    "Database",
    "MatrixType",
    "QueryResult",
    "SummaryStatistics",
    "WarehouseMiner",
    "__version__",
]
