"""Saving and restoring a database to/from disk.

A :class:`~repro.dbms.Database` is in-process; this module gives it
durability so built data sets and stored models survive across sessions:

* ``<dir>/catalog.json`` — table schemas (columns, types, nullability,
  primary key, partition count, row scale) and view definitions
  (rendered back to SQL text);
* ``<dir>/tables/<name>.csv`` — one CSV per table, with NULL encoded as
  the PostgreSQL-style ``\\N`` sentinel so empty strings stay distinct,
  and (format version 2) backslashes in string values doubled so a
  *literal* ``\\N`` string survives the round trip.

Every file is written to a temp name and atomically renamed into place
(``os.replace``), and a save deletes ``tables/*.csv`` orphans left by
tables dropped since the previous save — a snapshot directory never
accumulates resurrected tables.  A *mid-save* crash can still leave a
directory mixing old and new CSVs; the fully atomic path is the
manifest-guarded checkpoint of :mod:`repro.dbms.wal`, which builds a
fresh directory with ``save_database(..., fsync=True)`` and swaps one
manifest pointer.

UDFs are code, not data — they are not persisted; re-register them after
loading (``register_nlq_udfs`` / ``register_scoring_udfs``).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any

from repro.dbms.columnar import atomic_write_bytes
from repro.dbms.database import Database
from repro.dbms.schema import Column, TableSchema
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.dbms.types import SqlType
from repro.errors import ExportError

_NULL_SENTINEL = "\\N"
#: current format: version 2 doubles backslashes in string values so a
#: literal ``\N`` string is distinguishable from the NULL sentinel;
#: version-1 snapshots (no escaping) still load.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _encode_field(value: Any) -> Any:
    """One cell for the CSV writer: NULL sentinel + backslash escaping."""
    if value is None:
        return _NULL_SENTINEL
    if isinstance(value, str):
        return value.replace("\\", "\\\\")
    return value


def _decode_field(value: str, escaped: bool) -> "str | None":
    """Inverse of :func:`_encode_field` (*escaped* = format version 2)."""
    if value == _NULL_SENTINEL:
        return None
    if escaped and "\\" in value:
        return value.replace("\\\\", "\\")
    return value


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (directory fsync makes renames
    durable on POSIX; silently skipped where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str, fsync: bool) -> None:
    """Write *text* to a temp sibling, optionally fsync, atomically
    rename over *path* — delegates to the shared columnar write
    discipline so every durable artifact uses one code path."""
    atomic_write_bytes(path, text.encode("utf-8"), fsync)


def save_database(
    db: Database, directory: "str | Path", fsync: bool = False
) -> Path:
    """Serialize every table and view of *db* under *directory*.

    Each CSV and the catalog are written to a temp file and atomically
    renamed into place, then CSVs of tables dropped since the previous
    save are deleted — a stale ``tables/*.csv`` can no longer resurrect
    on inspection or bloat the directory.  With ``fsync=True`` every
    file and both directories are fsynced (the checkpoint path).
    """
    root = Path(directory)
    tables_dir = root / "tables"
    try:
        tables_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ExportError(f"cannot create {tables_dir}: {exc}") from exc

    catalog: dict = {"version": _FORMAT_VERSION, "tables": [], "views": []}
    for name in db.catalog.table_names():
        table = db.table(name)
        catalog["tables"].append(
            {
                "name": table.name,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
                "primary_key": table.schema.primary_key,
                "partitions": table.partition_count,
                "row_scale": table.row_scale,
            }
        )
        _write_table_csv(table, tables_dir / f"{table.name.lower()}.csv", fsync)
    for view_name in db.catalog.view_names():
        catalog["views"].append(
            {
                "name": view_name,
                "sql": ast.render(db.catalog.view(view_name)),
            }
        )
    _atomic_write_text(root / "catalog.json", json.dumps(catalog, indent=2), fsync)
    # Orphan cleanup after the catalog swap: anything in tables/ that the
    # just-written catalog does not reference (dropped tables' CSVs,
    # temp leftovers of an interrupted earlier save) is deleted.
    keep = {f"{name.lower()}.csv" for name in db.catalog.table_names()}
    for stale in tables_dir.iterdir():
        if stale.name not in keep:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - races with inspection
                pass
    if fsync:
        _fsync_path(tables_dir)
        _fsync_path(root)
    return root


def load_database(
    directory: "str | Path", amps: int | None = None
) -> Database:
    """Rebuild a database saved by :func:`save_database`.

    *amps* overrides the engine parallelism; per-table partition counts
    are restored from the catalog regardless.
    """
    db = Database(amps=amps or 20)
    restore_database_into(db, directory)
    return db


def restore_database_into(db: Database, directory: "str | Path") -> None:
    """Load a :func:`save_database` snapshot into an *empty* database.

    Factored out of :func:`load_database` so crash recovery
    (:func:`repro.dbms.wal.open_durable`) can restore a checkpoint into
    an already-constructed :class:`~repro.dbms.wal.DurableDatabase`
    before replaying the WAL suffix on top.
    """
    root = Path(directory)
    catalog_path = root / "catalog.json"
    try:
        catalog = json.loads(catalog_path.read_text())
    except OSError as exc:
        raise ExportError(f"cannot read {catalog_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExportError(f"malformed catalog at {catalog_path}: {exc}") from exc
    version = catalog.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ExportError(f"unsupported catalog version {version!r}")
    escaped = version >= 2

    for spec in catalog.get("tables", []):
        columns = tuple(
            Column(c["name"], SqlType(c["type"]), c["nullable"])
            for c in spec["columns"]
        )
        schema = TableSchema(columns, spec.get("primary_key"))
        table = db.catalog.create_table(
            spec["name"],
            schema,
            partitions=spec.get("partitions"),
            row_scale=spec.get("row_scale", 1.0),
        )
        _read_table_csv(
            table, root / "tables" / f"{spec['name'].lower()}.csv", escaped
        )
    for view_spec in catalog.get("views", []):
        statement = parse_statement(view_spec["sql"])
        if not isinstance(statement, ast.Select):
            raise ExportError(
                f"view {view_spec['name']!r} does not deserialize to a SELECT"
            )
        db.catalog.create_view(view_spec["name"], statement)


def database_fingerprint(db: Database) -> dict:
    """A canonical, comparison-ready digest of a database's entire
    durable state: schemas, primary keys, row scales, every table's
    rows (``repr``-exact, so float bit patterns and ``1`` vs ``1.0`` vs
    ``'1'`` all distinguish), and view SQL.

    Rows are sorted, so two databases whose partition layouts differ —
    recovery replays round-robin tables into a different striping than
    the crashed original — still compare equal exactly when they hold
    identical committed content.  The crash-recovery chaos suite
    asserts a recovered fingerprint equals the fingerprint of *some
    committed prefix* of the write history.
    """
    tables: dict[str, dict] = {}
    for name in db.catalog.table_names():
        table = db.table(name)
        tables[name.lower()] = {
            "columns": [
                (c.name, c.sql_type.value, c.nullable)
                for c in table.schema.columns
            ],
            "primary_key": table.schema.primary_key,
            "row_scale": table.row_scale,
            "rows": sorted(
                tuple(repr(value) for value in row) for row in table.scan()
            ),
        }
    views = {
        name.lower(): ast.render(db.catalog.view(name))
        for name in db.catalog.view_names()
    }
    return {"tables": tables, "views": views}


def _write_table_csv(table, path: Path, fsync: bool = False) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.column_names)
            for row in table.scan():
                writer.writerow([_encode_field(value) for value in row])
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise ExportError(f"cannot write {path}: {exc}") from exc


def _read_table_csv(table, path: Path, escaped: bool = True) -> None:
    try:
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise ExportError(f"{path} is empty")
            expected = list(table.schema.column_names)
            if header != expected:
                raise ExportError(
                    f"{path} header {header} does not match schema {expected}"
                )
            rows = [
                tuple(_decode_field(value, escaped) for value in row)
                for row in reader
            ]
    except OSError as exc:
        raise ExportError(f"cannot read {path}: {exc}") from exc
    table.insert_many(rows)
