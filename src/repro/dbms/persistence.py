"""Saving and restoring a database to/from disk.

A :class:`~repro.dbms.Database` is in-process; this module gives it
durability so built data sets and stored models survive across sessions:

* ``<dir>/catalog.json`` — table schemas (columns, types, nullability,
  primary key, partition count, row scale) and view definitions
  (rendered back to SQL text);
* ``<dir>/tables/<name>.csv`` — one CSV per table, with NULL encoded as
  the PostgreSQL-style ``\\N`` sentinel so empty strings stay distinct.

UDFs are code, not data — they are not persisted; re-register them after
loading (``register_nlq_udfs`` / ``register_scoring_udfs``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.dbms.database import Database
from repro.dbms.schema import Column, TableSchema
from repro.dbms.sql import ast
from repro.dbms.sql.parser import parse_statement
from repro.dbms.types import SqlType
from repro.errors import ExportError

_NULL_SENTINEL = "\\N"
_FORMAT_VERSION = 1


def save_database(db: Database, directory: "str | Path") -> Path:
    """Serialize every table and view of *db* under *directory*."""
    root = Path(directory)
    tables_dir = root / "tables"
    try:
        tables_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ExportError(f"cannot create {tables_dir}: {exc}") from exc

    catalog: dict = {"version": _FORMAT_VERSION, "tables": [], "views": []}
    for name in db.catalog.table_names():
        table = db.table(name)
        catalog["tables"].append(
            {
                "name": table.name,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.value,
                        "nullable": column.nullable,
                    }
                    for column in table.schema.columns
                ],
                "primary_key": table.schema.primary_key,
                "partitions": table.partition_count,
                "row_scale": table.row_scale,
            }
        )
        _write_table_csv(table, tables_dir / f"{table.name.lower()}.csv")
    for view_name in db.catalog.view_names():
        catalog["views"].append(
            {
                "name": view_name,
                "sql": ast.render(db.catalog.view(view_name)),
            }
        )
    (root / "catalog.json").write_text(json.dumps(catalog, indent=2))
    return root


def load_database(
    directory: "str | Path", amps: int | None = None
) -> Database:
    """Rebuild a database saved by :func:`save_database`.

    *amps* overrides the engine parallelism; per-table partition counts
    are restored from the catalog regardless.
    """
    root = Path(directory)
    catalog_path = root / "catalog.json"
    try:
        catalog = json.loads(catalog_path.read_text())
    except OSError as exc:
        raise ExportError(f"cannot read {catalog_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExportError(f"malformed catalog at {catalog_path}: {exc}") from exc
    if catalog.get("version") != _FORMAT_VERSION:
        raise ExportError(
            f"unsupported catalog version {catalog.get('version')!r}"
        )

    db = Database(amps=amps or 20)
    for spec in catalog.get("tables", []):
        columns = tuple(
            Column(c["name"], SqlType(c["type"]), c["nullable"])
            for c in spec["columns"]
        )
        schema = TableSchema(columns, spec.get("primary_key"))
        table = db.catalog.create_table(
            spec["name"],
            schema,
            partitions=spec.get("partitions"),
            row_scale=spec.get("row_scale", 1.0),
        )
        _read_table_csv(table, root / "tables" / f"{spec['name'].lower()}.csv")
    for view_spec in catalog.get("views", []):
        statement = parse_statement(view_spec["sql"])
        if not isinstance(statement, ast.Select):
            raise ExportError(
                f"view {view_spec['name']!r} does not deserialize to a SELECT"
            )
        db.catalog.create_view(view_spec["name"], statement)
    return db


def _write_table_csv(table, path: Path) -> None:
    try:
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.schema.column_names)
            for row in table.scan():
                writer.writerow(
                    [_NULL_SENTINEL if value is None else value for value in row]
                )
    except OSError as exc:
        raise ExportError(f"cannot write {path}: {exc}") from exc


def _read_table_csv(table, path: Path) -> None:
    try:
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise ExportError(f"{path} is empty")
            expected = list(table.schema.column_names)
            if header != expected:
                raise ExportError(
                    f"{path} header {header} does not match schema {expected}"
                )
            rows = [
                tuple(None if value == _NULL_SENTINEL else value for value in row)
                for row in reader
            ]
    except OSError as exc:
        raise ExportError(f"cannot read {path}: {exc}") from exc
    table.insert_many(rows)
