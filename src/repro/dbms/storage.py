"""Horizontally partitioned table storage.

Tables are split into partitions the way Teradata hashes rows across
AMPs: each partition is owned by one (simulated) parallel worker, scans
process partitions independently, and aggregate UDFs accumulate one
partial state per partition before a final merge (the paper's step 3,
"partial result aggregation").

Row-to-partition routing is **deterministic across processes**: primary
keys are hashed with CRC-32 over a canonical byte encoding (never
Python's builtin ``hash``, which is randomized per process for strings),
so a table loads into the same layout under any ``PYTHONHASHSEED`` and
after a persistence round-trip.

Data is stored column-wise inside each partition so the vectorized
execution paths (aggregate accumulation and block-wise SELECT) can hand
numpy blocks to dense kernels without changing the per-row semantics.
Each partition caches the float block for a given column selection
until the partition is mutated: repeated scans (iterative algorithms,
scoring sweeps) then skip the Python-level list→array conversion,
leaving pure GIL-releasing numpy work for the parallel engine's
threads.  The cache is an LRU governed by a :class:`BlockCacheConfig`
(entry capacity, default :data:`BLOCK_CACHE_CAPACITY`; optional byte
budget shared across every partition of a database; optional spill
directory) so mixed workloads cannot grow it without bound, and each
partition counts its lifetime cache hits, misses, evictions and spills
— the executor surfaces the per-statement delta in
:class:`~repro.dbms.metrics.QueryMetrics`.

When a byte budget is configured, evicted float blocks can **spill to
disk** instead of being discarded: the block is written to the spill
directory in ``.npy`` form and later reloads come back as read-only
``np.load(..., mmap_mode="r")`` maps whose pages the OS reclaims under
memory pressure.  A scan over float blocks much larger than the budget
then streams — the working set in RAM stays near the budget while the
overflow lives in spill files — which is the out-of-core mode the
``beyond_gil`` benchmark exercises.  Spill files are invalidated (and
unlinked) whenever their partition mutates, exactly like the in-memory
entries they shadow.

A table may carry a *row scale*: benchmarks store ``n / scale`` physical
rows but the cost model charges for ``n`` (every per-row charge is
linear, so the accounting is exact).  Numeric results always describe the
physical rows.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.dbms.faults import NULL_FAULTS, FaultPlan, NullFaults
from repro.dbms.schema import TableSchema
from repro.dbms.types import coerce_value
from repro.errors import ConstraintViolation, SchemaError

#: default distinct column selections each partition keeps cached as
#: float blocks; the least recently used entry is evicted beyond this
#: (override per database via :class:`BlockCacheConfig`)
BLOCK_CACHE_CAPACITY = 8

#: unique ids for partition spill files (module-lifetime, never reused)
_SPILL_IDS = itertools.count()


class BlockCacheConfig:
    """Shared block-cache policy for every partition of a database.

    * ``max_entries`` — per-partition LRU entry capacity (the historic
      hard-coded 8).
    * ``max_bytes`` — optional byte budget for cached float blocks,
      accounted **across all partitions sharing this config** (one
      config per ``Database``): when the shared total exceeds it, each
      partition that inserts a block evicts its own LRU entries until
      the total fits or its cache is empty.
    * ``spill_dir`` — optional directory; when set, evicted blocks are
      spilled there instead of discarded, and reloads come back as
      read-only mmaps (see the module docs).

    The byte accounting is a single lock-guarded counter; the lock is
    only ever touched when ``max_bytes`` is configured, so the default
    configuration costs the hot path nothing new.
    """

    def __init__(
        self,
        max_entries: int = BLOCK_CACHE_CAPACITY,
        max_bytes: int | None = None,
        spill_dir: "str | Path | None" = None,
    ) -> None:
        if max_entries < 1:
            raise SchemaError(
                f"block cache needs >= 1 entry, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise SchemaError(
                f"block cache byte budget must be >= 1, got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._lock = threading.Lock()
        self._current_bytes = 0

    @property
    def current_bytes(self) -> int:
        """Float-block bytes currently charged against the budget."""
        return self._current_bytes

    def charge(self, nbytes: int) -> None:
        with self._lock:
            self._current_bytes += nbytes

    def discharge(self, nbytes: int) -> None:
        with self._lock:
            self._current_bytes -= nbytes

    def over_budget(self) -> bool:
        return (
            self.max_bytes is not None
            and self._current_bytes > self.max_bytes
        )

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: the config used when no database installed one (module-level tables)
DEFAULT_BLOCK_CACHE = BlockCacheConfig()


@dataclass
class BlockCacheStats:
    """Per-call cache outcome of one ``numeric_matrix`` request.

    Engine tasks carry one of these back with their partial result so
    the coordinator can sum cache activity in partition order without
    ever reading the shared lifetime counters mid-run (the same
    straggler-safety argument as the hit/miss pair).
    """

    hit: bool = False
    evictions: int = 0
    spilled_blocks: int = 0
    spilled_bytes: int = 0


def stable_key_hash(key: Any) -> int:
    """A process-independent hash of a primary-key value.

    CRC-32 over a canonical ``type-tag:payload`` byte string.  Unlike
    builtin ``hash``, the result never depends on ``PYTHONHASHSEED``, so
    partition layouts are reproducible run-to-run and survive
    persistence reloads.  Numeric values that compare equal hash equal
    (``3``, ``3.0`` and ``True``→``1`` collapse to one encoding), which
    mirrors Python's own cross-type hash contract.
    """
    if key is None:
        encoded = b"n:"
    elif isinstance(key, (bool, int, float)):
        value = float(key)
        if value.is_integer():
            encoded = b"i:%d" % int(value)
        else:
            encoded = b"f:" + repr(value).encode("ascii")
    elif isinstance(key, str):
        encoded = b"s:" + key.encode("utf-8")
    elif isinstance(key, bytes):
        encoded = b"b:" + key
    else:
        encoded = b"r:" + repr(key).encode("utf-8", "backslashreplace")
    return zlib.crc32(encoded)


class Partition:
    """One horizontal partition: parallel per-column value lists."""

    def __init__(
        self, width: int, cache_config: BlockCacheConfig | None = None
    ) -> None:
        self._columns: list[list[Any]] = [[] for _ in range(width)]
        self._rows = 0
        self._block_cache: "OrderedDict[tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )
        self.cache_config = cache_config or DEFAULT_BLOCK_CACHE
        #: bytes each cached entry is charged against the shared budget
        self._cache_bytes: dict[tuple[int, ...], int] = {}
        #: spill files shadowing evicted entries (cleared on mutation)
        self._spilled: dict[tuple[int, ...], Path] = {}
        self._spill_id = next(_SPILL_IDS)
        #: lifetime block-cache counters; only this partition's engine
        #: task touches them during a scan, and the coordinator reads
        #: them after the task completes (the future's result is the
        #: happens-before edge), so no locking is needed
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.blocks_spilled = 0
        self.bytes_spilled = 0

    @property
    def row_count(self) -> int:
        return self._rows

    @property
    def width(self) -> int:
        return len(self._columns)

    def append(self, row: Sequence[Any]) -> None:
        for column, value in zip(self._columns, row):
            column.append(value)
        self._rows += 1
        if self._block_cache or self._spilled:
            self._invalidate_cache()

    def extend_columns(self, columns: Sequence[Sequence[Any]]) -> None:
        """Bulk-append column-oriented data (all columns same length).

        *columns* must supply every partition column; lengths are
        validated up front so a short column list can never silently
        desynchronize the per-column value lists.  A zero-width
        partition accepts only an empty sequence (there is nothing to
        extend).
        """
        if len(columns) != len(self._columns):
            raise SchemaError(
                f"extend_columns got {len(columns)} columns for a "
                f"{len(self._columns)}-column partition"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(
                f"extend_columns lengths differ: {sorted(lengths)}"
            )
        added = lengths.pop() if lengths else 0
        if added == 0:
            return
        for target, source in zip(self._columns, columns):
            target.extend(source)
        self._rows += added
        if self._block_cache or self._spilled:
            self._invalidate_cache()

    def rollback_rows(self, count: int) -> None:
        """Remove the last *count* rows (batch-flush failure recovery).

        Appends are strictly at the tail and DML is single-threaded, so
        dropping the tail undoes exactly one earlier ``append`` /
        ``extend_columns`` of the same size.
        """
        if count <= 0:
            return
        if count > self._rows:
            raise SchemaError(
                f"cannot roll back {count} rows from a "
                f"{self._rows}-row partition"
            )
        for column in self._columns:
            del column[-count:]
        self._rows -= count
        if self._block_cache or self._spilled:
            self._invalidate_cache()

    def column(self, position: int) -> list[Any]:
        return self._columns[position]

    def has_cached_block(self, positions: Sequence[int]) -> bool:
        """Whether :meth:`numeric_matrix` for this column selection would
        be served from the block cache (EXPLAIN ANALYZE reports this per
        partition task, making repeated-scan speedups visible)."""
        return tuple(positions) in self._block_cache

    def rows(self) -> Iterator[tuple[Any, ...]]:
        return zip(*self._columns) if self._rows else iter(())

    def numeric_matrix(self, positions: Sequence[int]) -> np.ndarray:
        """The selected columns as a float matrix (NULL becomes NaN).

        Shape is ``(rows, len(positions))``; used by the vectorized
        execution paths, which must produce bit-identical results to
        the per-row reference path.  Blocks are cached per column
        selection in an LRU governed by this partition's
        :class:`BlockCacheConfig` (entry capacity, shared byte budget,
        spill-on-evict; cleared when the partition is mutated); callers
        must treat a returned block as read-only.
        """
        return self.numeric_matrix_with_cache_stats(positions)[0]

    def numeric_matrix_with_stats(
        self, positions: Sequence[int]
    ) -> tuple[np.ndarray, bool]:
        """:meth:`numeric_matrix` plus whether it was a cache hit.

        Engine tasks use this variant so each task counts its own hits
        and misses locally and returns them with its partial result; the
        coordinator sums the per-task counts in partition order.  The
        statement's :class:`~repro.dbms.metrics.QueryMetrics` therefore
        never reads the shared lifetime counters while workers are
        running — a straggler task abandoned by an earlier statement's
        timeout cannot tear the accounting.
        """
        block, stats = self.numeric_matrix_with_cache_stats(positions)
        return block, stats.hit

    def numeric_matrix_with_cache_stats(
        self, positions: Sequence[int]
    ) -> tuple[np.ndarray, BlockCacheStats]:
        """:meth:`numeric_matrix` plus the full per-call cache outcome
        (hit, evictions performed, blocks/bytes spilled) — the
        straggler-safe accounting variant the executor sums into
        :class:`~repro.dbms.metrics.QueryMetrics`.

        A spill-file reload counts as a *hit*: the block is served from
        the cache's disk tier as a read-only mmap without redoing the
        list→float conversion.
        """
        key = tuple(positions)
        stats = BlockCacheStats()
        if self._rows == 0 or not key:
            # Zero rows or a zero-column projection: nothing to cache.
            return np.empty((self._rows, len(key))), stats
        cached = self._block_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            stats.hit = True
            self._block_cache.move_to_end(key)
            return cached, stats
        spill_path = self._spilled.get(key)
        if spill_path is not None:
            try:
                reloaded = np.load(spill_path, mmap_mode="r")
            except (OSError, ValueError):
                # Spill file raced away (directory cleanup): rebuild.
                self._spilled.pop(key, None)
            else:
                self.cache_hits += 1
                stats.hit = True
                self._cache_insert(key, reloaded, stats)
                return reloaded, stats
        self.cache_misses += 1
        stacked = np.empty((self._rows, len(key)))
        for out_index, position in enumerate(key):
            stacked[:, out_index] = self._column_as_floats(position)
        self._cache_insert(key, stacked, stats)
        return stacked, stats

    def _cache_insert(
        self,
        key: tuple[int, ...],
        block: np.ndarray,
        stats: BlockCacheStats,
    ) -> None:
        """Insert a block and enforce the cache policy (evict + spill).

        Spill-backed mmaps are charged zero bytes — the budget tracks
        RAM-resident float blocks, and a mapped spill file's pages are
        the OS's to reclaim.  Eviction is strictly local: under shared
        byte pressure a partition evicts its **own** LRU entries until
        the shared total fits or its cache is empty (which can evict the
        block just inserted — the caller still holds the reference, and
        the next scan streams it back from its spill file).
        """
        config = self.cache_config
        charged = 0 if isinstance(block, np.memmap) else int(block.nbytes)
        self._block_cache[key] = block
        self._cache_bytes[key] = charged
        if config.max_bytes is not None and charged:
            config.charge(charged)
        while self._block_cache and (
            len(self._block_cache) > config.max_entries
            or config.over_budget()
        ):
            old_key, old_block = self._block_cache.popitem(last=False)
            old_charged = self._cache_bytes.pop(old_key, 0)
            if config.max_bytes is not None and old_charged:
                config.discharge(old_charged)
            self.cache_evictions += 1
            stats.evictions += 1
            if config.spill_dir is None or old_key in self._spilled:
                continue
            self._spill(old_key, old_block, stats)

    def _spill(
        self,
        key: tuple[int, ...],
        block: np.ndarray,
        stats: BlockCacheStats,
    ) -> None:
        """Write one evicted block to the spill directory (best effort:
        a full disk degrades to plain eviction, never an error)."""
        spill_dir = self.cache_config.spill_dir
        assert spill_dir is not None
        name = f"p{self._spill_id}-" + "_".join(map(str, key)) + ".npy"
        path = spill_dir / name
        try:
            spill_dir.mkdir(parents=True, exist_ok=True)
            with path.open("wb") as handle:
                np.save(handle, np.ascontiguousarray(block))
        except OSError:  # pragma: no cover - disk full / permissions
            return
        self._spilled[key] = path
        nbytes = int(block.nbytes)
        self.blocks_spilled += 1
        self.bytes_spilled += nbytes
        stats.spilled_blocks += 1
        stats.spilled_bytes += nbytes

    def _invalidate_cache(self) -> None:
        """Drop every cached and spilled block (the partition mutated)."""
        config = self.cache_config
        if config.max_bytes is not None:
            total = sum(self._cache_bytes.values())
            if total:
                config.discharge(total)
        self._block_cache.clear()
        self._cache_bytes.clear()
        if self._spilled:
            for path in self._spilled.values():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            self._spilled.clear()

    def _column_as_floats(self, position: int) -> np.ndarray:
        column = self._columns[position]
        try:
            # Fast path: no NULLs — C-level conversion of the whole list.
            return np.asarray(column, dtype=float)
        except (TypeError, ValueError):
            return np.asarray(
                [np.nan if v is None else v for v in column], dtype=float
            )


class Table:
    """A partitioned, typed relation."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        partitions: int = 20,
        row_scale: float = 1.0,
        cache_config: BlockCacheConfig | None = None,
    ) -> None:
        if partitions < 1:
            raise SchemaError(f"partition count must be >= 1, got {partitions}")
        if row_scale < 1.0:
            raise SchemaError(f"row scale must be >= 1, got {row_scale}")
        self.name = name
        self.schema = schema
        self.row_scale = row_scale
        #: fault-injection plan for the ``insert.flush`` site; the
        #: catalog installs the database's plan here (NULL_FAULTS =
        #: one attribute check on the hot path)
        self.faults: FaultPlan | NullFaults = NULL_FAULTS
        #: mutation listeners invoked as ``listener(op, table_name,
        #: payload)`` after every *committed* data change — a flushed
        #: insert batch, a bulk load, a truncate.  The catalog points
        #: this at its shared listener list so one subscription (the
        #: write-ahead log) observes every table; a rolled-back flush
        #: never notifies.  Empty by default: the un-durable hot path
        #: pays one truthiness check.
        self.mutation_listeners: "list[Any]" = []
        #: block-cache policy shared by every partition; the catalog
        #: installs the database's config here (same pattern as faults)
        self.cache_config = cache_config or DEFAULT_BLOCK_CACHE
        self._partitions = [
            Partition(len(schema), self.cache_config)
            for _ in range(partitions)
        ]
        self._pk_position = (
            schema.position_of(schema.primary_key)
            if schema.primary_key is not None
            else None
        )
        self._pk_values: set[Any] = set()
        self._next_partition = 0
        #: monotonically increasing mutation counter: bumped once per
        #: successful insert / batch flush / bulk load / truncate.  The
        #: database's summary-matrix cache keys freshness on it.
        self.version = 0
        #: ``version`` as of the last *destructive* mutation (truncate).
        #: While a cache entry's version is >= this, only appends have
        #: happened since it was built, so incremental watermark
        #: refresh is sound; otherwise the entry must rebuild.
        self.data_version = 0

    # ------------------------------------------------------------- properties
    @property
    def partitions(self) -> list[Partition]:
        return self._partitions

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def non_empty_partition_count(self) -> int:
        """Partitions currently holding rows — the real task fan-out an
        aggregate over this table produces (plan/trace annotation)."""
        return sum(1 for p in self._partitions if p.row_count)

    @property
    def row_count(self) -> int:
        """Physical rows actually stored."""
        return sum(partition.row_count for partition in self._partitions)

    @property
    def nominal_rows(self) -> float:
        """Rows the cost model charges for (physical × row scale)."""
        return self.row_count * self.row_scale

    @property
    def width(self) -> int:
        return len(self.schema)

    # ---------------------------------------------------------------- inserts
    def _partition_index_for(self, row: Sequence[Any]) -> int:
        """Pick the owning partition: stable-hash the primary key when
        there is one (Teradata's hash distribution), round-robin
        otherwise.  The hash is ``PYTHONHASHSEED``-independent, so the
        layout is identical across processes and after reload."""
        if self._pk_position is not None:
            key = row[self._pk_position]
            return stable_key_hash(key) % len(self._partitions)
        index = self._next_partition
        self._next_partition = (self._next_partition + 1) % len(self._partitions)
        return index

    def _partition_for(self, row: Sequence[Any]) -> Partition:
        return self._partitions[self._partition_index_for(row)]

    def _check_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.schema)} columns"
            )
        coerced = tuple(
            coerce_value(value, column.sql_type)
            for value, column in zip(row, self.schema.columns)
        )
        for value, column in zip(coerced, self.schema.columns):
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"NULL in NOT NULL column {column.name!r} of {self.name!r}"
                )
        if self._pk_position is not None:
            key = coerced[self._pk_position]
            if key in self._pk_values:
                raise ConstraintViolation(
                    f"duplicate primary key {key!r} in {self.name!r}"
                )
            self._pk_values.add(key)
        return coerced

    def _notify(self, op: str, payload: "dict[str, Any]") -> None:
        """Tell every mutation listener about one committed change."""
        for listener in self.mutation_listeners:
            listener(op, self.name, payload)

    def insert(self, row: Sequence[Any]) -> None:
        coerced = self._check_row(row)
        self._partition_for(coerced).append(coerced)
        self.version += 1
        if self.mutation_listeners:
            self._notify("insert", {"rows": [coerced]})

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert rows, batching the per-partition appends.

        Rows are validated and routed in input order (so round-robin
        routing and PK bookkeeping match a loop of :meth:`insert`
        exactly), staged per target partition, then flushed with one
        :meth:`Partition.extend_columns` per partition — each partition's
        block cache is cleared once per batch instead of once per row.

        Failure semantics (see ``docs/fault_tolerance.md``):

        * **Validation failure** (constraint violation, bad type) at row
          *j*: the validated prefix — rows ``0..j-1`` — is still
          inserted, matching the per-row loop's behaviour exactly, and
          the error propagates.  The prefix is deterministic: validation
          runs in input order.
        * **Flush failure** (storage error, or the ``insert.flush``
          fault site): partitions already flushed in this batch are
          rolled back and the batch's primary keys are released, so the
          table is bit-identical to its pre-batch state — a flush can
          never leave a *partially* mutated table.
        """
        if len(self.schema) == 0:
            # Zero-width partitions cannot be extended column-wise.
            count = 0
            for row in rows:
                self.insert(row)
                count += 1
            return count
        staged: list[list[tuple[Any, ...]]] = [[] for _ in self._partitions]
        staged_keys: set[Any] = set()
        #: validated rows in input order — what a mutation listener (the
        #: write-ahead log) must replay to reproduce the routing exactly
        ordered: list[tuple[Any, ...]] = []
        try:
            for row in rows:
                coerced = self._check_row(row)
                staged[self._partition_index_for(coerced)].append(coerced)
                if self._pk_position is not None:
                    staged_keys.add(coerced[self._pk_position])
                ordered.append(coerced)
        except Exception:
            # The validated prefix commits (matching the per-row loop);
            # a flush failure below rolls back and skips the notify.
            self._flush_staged(staged, staged_keys)
            if ordered and self.mutation_listeners:
                self._notify("insert", {"rows": ordered})
            raise
        self._flush_staged(staged, staged_keys)
        if ordered and self.mutation_listeners:
            self._notify("insert", {"rows": ordered})
        return len(ordered)

    def _flush_staged(
        self,
        staged: Sequence[Sequence[tuple[Any, ...]]],
        staged_keys: set[Any],
    ) -> None:
        """Flush staged rows partition by partition, atomically.

        If any per-partition flush raises (including the ``insert.flush``
        fault site), every partition already extended by this batch is
        rolled back and the batch's primary keys are removed from the PK
        set before the error propagates — all-or-nothing at the flush
        stage, so a retry of the same batch cannot hit phantom duplicate
        keys.
        """
        faults = self.faults
        flushed: list[tuple[Partition, int]] = []
        try:
            for index, (partition, rows) in enumerate(
                zip(self._partitions, staged)
            ):
                if not rows:
                    continue
                if faults.enabled:
                    faults.fire(
                        "insert.flush", partition=index, table=self.name
                    )
                partition.extend_columns(list(zip(*rows)))
                flushed.append((partition, len(rows)))
        except BaseException:
            for partition, added in flushed:
                partition.rollback_rows(added)
            self._pk_values -= staged_keys
            raise
        if flushed:
            self.version += 1

    def bulk_load_arrays(self, columns: dict[str, np.ndarray | Sequence[Any]]) -> int:
        """Fast bulk load from column arrays (the workload-generator path).

        All schema columns must be supplied and be the same length
        (loading zero rows is a clean no-op).  Rows are striped across
        partitions in contiguous blocks — equivalent, for scan and
        aggregation purposes, to hash distribution of a uniformly random
        key.
        """
        missing = [c.name for c in self.schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"bulk load missing columns: {missing}")
        ordered = [np.asarray(columns[c.name]) for c in self.schema.columns]
        lengths = {len(col) for col in ordered}
        if len(lengths) > 1:
            raise SchemaError(f"bulk load columns differ in length: {lengths}")
        total = lengths.pop() if lengths else 0
        if total == 0:
            return 0
        if self._pk_position is not None:
            keys = ordered[self._pk_position].tolist()
            key_set = set(keys)
            if len(key_set) != len(keys) or key_set & self._pk_values:
                raise ConstraintViolation(
                    f"duplicate primary key values in bulk load into {self.name!r}"
                )
            self._pk_values.update(key_set)
        bounds = np.linspace(0, total, len(self._partitions) + 1).astype(int)
        for index, partition in enumerate(self._partitions):
            start, stop = bounds[index], bounds[index + 1]
            if start == stop:
                continue
            partition.extend_columns(
                [col[start:stop].tolist() for col in ordered]
            )
        self.version += 1
        if self.mutation_listeners:
            # Logged row-wise (schema column order) so replay can
            # rebuild the column dict; bulk loads must replay through
            # bulk_load_arrays to reproduce the striped layout.
            self._notify(
                "bulk_load",
                {"rows": list(zip(*(col.tolist() for col in ordered)))},
            )
        return total

    # ------------------------------------------------------------------ scans
    def scan(self) -> Iterator[tuple[Any, ...]]:
        """All rows, partition by partition."""
        for partition in self._partitions:
            yield from partition.rows()

    def rows(self) -> list[tuple[Any, ...]]:
        return list(self.scan())

    def column_values(self, name: str) -> list[Any]:
        position = self.schema.position_of(name)
        values: list[Any] = []
        for partition in self._partitions:
            values.extend(partition.column(position))
        return values

    def numeric_matrix(self, columns: Sequence[str]) -> np.ndarray:
        """All physical rows of the named numeric columns as a matrix."""
        positions = [self.schema.position_of(name) for name in columns]
        blocks = [
            partition.numeric_matrix(positions)
            for partition in self._partitions
            if partition.row_count
        ]
        if not blocks:
            return np.empty((0, len(columns)))
        return np.vstack(blocks)

    def install_cache_config(self, config: BlockCacheConfig) -> None:
        """Swap the block-cache policy on this table and every partition.

        Existing cached/spilled blocks are invalidated first so byte
        accounting never straddles two configs.
        """
        self.cache_config = config
        for partition in self._partitions:
            partition._invalidate_cache()
            partition.cache_config = config

    def truncate(self) -> None:
        """Remove all rows, keeping the schema and partition layout."""
        for partition in self._partitions:
            partition._invalidate_cache()
        self._partitions = [
            Partition(len(self.schema), self.cache_config)
            for _ in self._partitions
        ]
        self._pk_values.clear()
        self._next_partition = 0
        self.version += 1
        self.data_version = self.version
        if self.mutation_listeners:
            self._notify("truncate", {})
