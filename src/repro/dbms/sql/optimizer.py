"""Query optimization rewrites (paper, Section 3.6).

The paper names three rewrites that matter when X is derived from
normalized tables rather than materialized:

1. **Join elimination** — after feature selection or a step-wise
   procedure drops dimensions, the joins that only produced those
   dimensions can be removed.  A join is removable when (a) none of its
   columns are referenced anywhere else in the query and (b) it cannot
   change the row count — here, an inner join whose condition equates a
   column with the joined table's primary key (at most one match) and is
   known not to drop rows, or a cross join against a one-row model
   table.  We implement the conservative PK-equality form for model
   tables (the scoring case the paper highlights) and the unused cross
   join against single-row tables.

2. **Group-by before join** — when an aggregate groups by the join key
   of a large fact table, aggregating first shrinks the join input.
   Implemented for the canonical shape
   ``SELECT g.key, agg(f.value) FROM dim g JOIN fact f ON f.key = g.key
   GROUP BY g.key`` → aggregate the fact table by key in a derived
   table, then join.

3. **Predicate pushdown into derived tables** — a conjunct of the outer
   WHERE that only touches one derived table's columns filters *inside*
   the subquery, shrinking the spool it materializes.  Safe when the
   inner select has no GROUP BY/aggregates/LIMIT (pushing past those
   would change semantics); the referenced columns are substituted by
   the inner select items they alias.

4. **Projection pruning** — only scan the columns a query actually
   references (reflected in the cost model's scan width).

The optimizer is *advisory and semantics-preserving*: every rewrite is
validated by tests asserting identical results with and without it.
:func:`explain` renders the decisions, with estimated costs from the
cost model, without executing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dbms.catalog import Catalog
from repro.dbms.functions import SCALAR_BUILTINS
from repro.dbms.sql import ast
from repro.dbms.sql.planner import find_aggregates

SCALAR_BUILTINS_NAMES = frozenset(SCALAR_BUILTINS)


@dataclass
class OptimizationReport:
    """What the optimizer did to one statement."""

    original: ast.Select
    optimized: ast.Select
    eliminated_joins: list[str] = field(default_factory=list)
    pushed_group_by: bool = False
    pushed_predicates: list[str] = field(default_factory=list)
    referenced_columns: dict[str, list[str]] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return (
            bool(self.eliminated_joins)
            or self.pushed_group_by
            or bool(self.pushed_predicates)
        )


class QueryOptimizer:
    """AST-level rewrites against a catalog (for schema/PK knowledge)."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # ------------------------------------------------------------ entry point
    def optimize(self, select: ast.Select) -> OptimizationReport:
        report = OptimizationReport(original=select, optimized=select)
        report.referenced_columns = self._referenced_by_binding(select)
        current = self._eliminate_joins(select, report)
        current = self._push_group_by_before_join(current, report)
        current = self._push_predicates_into_derived(current, report)
        report.optimized = current
        return report

    # ------------------------------------------------------- column analysis
    def _referenced_by_binding(self, select: ast.Select) -> dict[str, list[str]]:
        """Qualified column references per binding name, across the whole
        statement (select list, joins, WHERE, GROUP BY, HAVING, ORDER)."""
        expressions: list[ast.Expression] = [
            item.expression for item in select.items
        ]
        for join in select.joins:
            if join.condition is not None:
                expressions.append(join.condition)
        if select.where is not None:
            expressions.append(select.where)
        expressions.extend(select.group_by)
        if select.having is not None:
            expressions.append(select.having)
        expressions.extend(expr for expr, _ in select.order_by)

        by_binding: dict[str, list[str]] = {}
        for expression in expressions:
            for node in ast.walk(expression):
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    bucket = by_binding.setdefault(node.table.lower(), [])
                    if node.name.lower() not in bucket:
                        bucket.append(node.name.lower())
                if isinstance(node, ast.Star) and node.table is not None:
                    by_binding.setdefault(node.table.lower(), []).append("*")
        return by_binding

    # --------------------------------------------------------- rule 1: joins
    def _eliminate_joins(
        self, select: ast.Select, report: OptimizationReport
    ) -> ast.Select:
        if not select.joins:
            return select
        has_unqualified = self._has_unqualified_refs(select)
        if has_unqualified:
            # Unqualified columns could bind to any source; be conservative.
            return select
        referenced = report.referenced_columns
        kept_joins: list[ast.JoinClause] = []
        for join in select.joins:
            binding = self._binding_of(join.source)
            if binding is None:
                kept_joins.append(join)
                continue
            used = referenced.get(binding.lower(), [])
            used_outside_condition = self._used_outside_condition(
                select, join, binding
            )
            removable = (
                not used_outside_condition
                and self._join_cannot_change_cardinality(join, binding)
            )
            if removable:
                report.eliminated_joins.append(binding)
            else:
                kept_joins.append(join)
            del used
        if len(kept_joins) == len(select.joins):
            return select
        return ast.Select(
            items=select.items,
            from_sources=select.from_sources,
            joins=tuple(kept_joins),
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=select.limit,
        )

    def _has_unqualified_refs(self, select: ast.Select) -> bool:
        expressions: list[ast.Expression] = [
            item.expression for item in select.items
        ]
        if select.where is not None:
            expressions.append(select.where)
        expressions.extend(select.group_by)
        if select.having is not None:
            expressions.append(select.having)
        expressions.extend(expr for expr, _ in select.order_by)
        for expression in expressions:
            for node in ast.walk(expression):
                if isinstance(node, ast.ColumnRef) and node.table is None:
                    return True
                if isinstance(node, ast.Star) and node.table is None:
                    return True
        return False

    def _binding_of(self, source: ast.FromSource) -> str | None:
        if isinstance(source, ast.TableName):
            return source.binding_name
        return source.alias

    def _used_outside_condition(
        self, select: ast.Select, join: ast.JoinClause, binding: str
    ) -> bool:
        """Is the joined binding referenced anywhere besides its own ON?"""
        expressions: list[ast.Expression] = [
            item.expression for item in select.items
        ]
        for other in select.joins:
            if other is join:
                continue
            if other.condition is not None:
                expressions.append(other.condition)
        if select.where is not None:
            expressions.append(select.where)
        expressions.extend(select.group_by)
        if select.having is not None:
            expressions.append(select.having)
        expressions.extend(expr for expr, _ in select.order_by)
        lowered = binding.lower()
        for expression in expressions:
            for node in ast.walk(expression):
                if isinstance(node, ast.ColumnRef) and node.table is not None:
                    if node.table.lower() == lowered:
                        return True
                if isinstance(node, ast.Star):
                    if node.table is None or node.table.lower() == lowered:
                        return True
        return False

    def _join_cannot_change_cardinality(
        self, join: ast.JoinClause, binding: str
    ) -> bool:
        """True when removing the join provably keeps the same rows.

        Two safe cases:
        * a CROSS JOIN against a table that currently holds exactly one
          row (the BETA/MU model-table pattern), or
        * an inner join whose condition is ``<binding>.pk = <literal>``
          against a table where that literal key exists — at most and at
          least one match (the LAMBDA/C per-component join pattern).
        """
        source = join.source
        if not isinstance(source, ast.TableName):
            return False
        if not self._catalog.has_table(source.name):
            return False
        table = self._catalog.table(source.name)
        if join.condition is None:
            return table.row_count == 1
        condition = join.condition
        if not (isinstance(condition, ast.Binary) and condition.op == "="):
            return False
        sides = [condition.left, condition.right]
        column = next(
            (
                s for s in sides
                if isinstance(s, ast.ColumnRef)
                and s.table is not None
                and s.table.lower() == binding.lower()
            ),
            None,
        )
        if column is None:
            return False
        pk = table.schema.primary_key
        if pk is None or pk.lower() != column.name.lower():
            return False
        if join.outer:
            # LEFT JOIN on the PK: at most one match, unmatched rows are
            # padded — every left row survives exactly once, so an
            # unused outer join is always removable.
            return True
        literal = next((s for s in sides if isinstance(s, ast.Literal)), None)
        if literal is None:
            return False
        position = table.schema.position_of(pk)
        matches = sum(
            1 for row in table.scan() if row[position] == literal.value
        )
        return matches == 1

    # --------------------------------------------- rule 2: group-by pushdown
    def _push_group_by_before_join(
        self, select: ast.Select, report: OptimizationReport
    ) -> ast.Select:
        """Rewrite ``SELECT k, agg(f.v) FROM dim d JOIN fact f ON f.k = d.k
        GROUP BY k`` so the fact table is pre-aggregated by k.

        Conditions (all checked): exactly one join; the join condition
        equates one column from each side; the GROUP BY is exactly the
        dimension side's join column; every aggregate argument touches
        only the fact binding; no HAVING/WHERE touching the fact side
        beyond the aggregates; aggregates are SUM or COUNT (decomposable
        through the pre-aggregation without finalizer changes).
        """
        if len(select.joins) != 1 or len(select.from_sources) != 1:
            return select
        if select.where is not None or select.having is not None:
            return select
        if len(select.group_by) != 1:
            return select
        join = select.joins[0]
        if join.condition is None or join.outer:
            return select
        if not isinstance(join.source, ast.TableName):
            return select
        condition = join.condition
        if not (isinstance(condition, ast.Binary) and condition.op == "="):
            return select
        if not (
            isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return select
        fact_binding = join.source.binding_name.lower()
        dim_source = select.from_sources[0]
        dim_binding = (self._binding_of(dim_source) or "").lower()
        refs = {condition.left, condition.right}
        fact_key = next(
            (r for r in refs if r.table and r.table.lower() == fact_binding), None
        )
        dim_key = next(
            (r for r in refs if r.table and r.table.lower() == dim_binding), None
        )
        if fact_key is None or dim_key is None:
            return select
        group_expr = select.group_by[0]
        if not (
            isinstance(group_expr, ast.ColumnRef)
            and group_expr.table is not None
            and group_expr.table.lower() == dim_binding
            and group_expr.name.lower() == dim_key.name.lower()
        ):
            return select

        aggregates = find_aggregates(
            [item.expression for item in select.items], self._catalog.is_aggregate
        )
        if not aggregates:
            return select
        inner_items: list[ast.SelectItem] = [
            ast.SelectItem(
                ast.ColumnRef(fact_key.name, fact_key.table), alias="__k"
            )
        ]
        replacements: dict[str, ast.Expression] = {}
        for index, aggregate in enumerate(aggregates):
            call = aggregate.call
            if call.distinct:
                return select
            if call.name == "sum":
                pass
            elif call.name == "count":
                # count pre-aggregates to a sum of partial counts.
                pass
            else:
                return select
            for arg in call.args:
                for node in ast.walk(arg):
                    if isinstance(node, ast.ColumnRef):
                        if node.table is None or node.table.lower() != fact_binding:
                            return select
            alias = f"__a{index}"
            inner_items.append(ast.SelectItem(call, alias=alias))
            outer_call = ast.FuncCall("sum", (ast.ColumnRef(alias, "__f"),))
            replacements[ast.render(call)] = outer_call

        inner = ast.Select(
            items=tuple(inner_items),
            from_sources=(ast.TableName(join.source.name, join.source.alias),),
            group_by=(ast.ColumnRef(fact_key.name, fact_key.table),),
        )
        new_condition = ast.Binary(
            "=",
            ast.ColumnRef("__k", "__f"),
            ast.ColumnRef(dim_key.name, dim_key.table),
        )
        new_items = tuple(
            ast.SelectItem(
                _substitute_rendered(item.expression, replacements), item.alias
            )
            for item in select.items
        )
        rewritten = ast.Select(
            items=new_items,
            from_sources=select.from_sources,
            joins=(ast.JoinClause(ast.DerivedTable(inner, "__f"), new_condition),),
            group_by=select.group_by,
            order_by=select.order_by,
            limit=select.limit,
        )
        report.pushed_group_by = True
        return rewritten


    # ------------------------------------------- rule 3: predicate pushdown
    def _push_predicates_into_derived(
        self, select: ast.Select, report: OptimizationReport
    ) -> ast.Select:
        """Move outer WHERE conjuncts that touch only one derived table
        inside that subquery."""
        if select.where is None:
            return select
        derived_aliases = {
            source.alias.lower(): index
            for index, source in enumerate(select.from_sources)
            if isinstance(source, ast.DerivedTable)
        }
        derived_joins = {
            join.source.alias.lower(): index
            for index, join in enumerate(select.joins)
            if isinstance(join.source, ast.DerivedTable) and not join.outer
        }
        if not derived_aliases and not derived_joins:
            return select

        conjuncts = _split_conjuncts(select.where)
        remaining: list[ast.Expression] = []
        pushes: dict[str, list[ast.Expression]] = {}
        for conjunct in conjuncts:
            target = self._single_derived_target(
                conjunct, set(derived_aliases) | set(derived_joins)
            )
            if target is None:
                remaining.append(conjunct)
                continue
            inner = self._derived_select(select, target, derived_aliases, derived_joins)
            rewritten = self._rewrite_for_inner(conjunct, target, inner)
            if rewritten is None:
                remaining.append(conjunct)
                continue
            pushes.setdefault(target, []).append(rewritten)
            report.pushed_predicates.append(ast.render(conjunct))
        if not pushes:
            return select

        new_sources = list(select.from_sources)
        new_joins = list(select.joins)
        for alias, predicates in pushes.items():
            if alias in derived_aliases:
                index = derived_aliases[alias]
                source = new_sources[index]
                new_sources[index] = ast.DerivedTable(
                    _with_extra_where(source.select, predicates), source.alias
                )
            else:
                index = derived_joins[alias]
                join = new_joins[index]
                assert isinstance(join.source, ast.DerivedTable)
                new_joins[index] = ast.JoinClause(
                    ast.DerivedTable(
                        _with_extra_where(join.source.select, predicates),
                        join.source.alias,
                    ),
                    join.condition,
                    join.outer,
                )
        new_where: ast.Expression | None = None
        for conjunct in remaining:
            new_where = (
                conjunct if new_where is None
                else ast.Binary("AND", new_where, conjunct)
            )
        return ast.Select(
            items=select.items,
            from_sources=tuple(new_sources),
            joins=tuple(new_joins),
            where=new_where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=select.limit,
        )

    def _single_derived_target(
        self, conjunct: ast.Expression, aliases: set[str]
    ) -> str | None:
        """The sole derived alias the conjunct references, or None."""
        bindings: set[str] = set()
        for node in ast.walk(conjunct):
            if isinstance(node, ast.ColumnRef):
                if node.table is None:
                    return None  # ambiguous: stay conservative
                bindings.add(node.table.lower())
            if isinstance(node, ast.FuncCall) and not (
                node.name in SCALAR_BUILTINS_NAMES
            ):
                return None  # UDF predicates stay where they are
        if len(bindings) == 1:
            only = next(iter(bindings))
            if only in aliases:
                return only
        return None

    def _derived_select(
        self,
        select: ast.Select,
        alias: str,
        derived_aliases: dict[str, int],
        derived_joins: dict[str, int],
    ) -> ast.Select:
        if alias in derived_aliases:
            source = select.from_sources[derived_aliases[alias]]
        else:
            source = select.joins[derived_joins[alias]].source
        assert isinstance(source, ast.DerivedTable)
        return source.select

    def _rewrite_for_inner(
        self, conjunct: ast.Expression, alias: str, inner: ast.Select
    ) -> ast.Expression | None:
        """Map outer references ``alias.col`` to the inner expressions.

        Returns None when the push would be unsafe: the inner select
        aggregates, groups, limits, or a referenced output column cannot
        be traced to an inner expression.
        """
        if inner.group_by or inner.having is not None or inner.limit is not None:
            return None
        from repro.dbms.sql.planner import contains_aggregate, output_name

        if any(
            contains_aggregate(item.expression, self._catalog.is_aggregate)
            for item in inner.items
        ):
            return None
        outputs: dict[str, ast.Expression] = {}
        for position, item in enumerate(inner.items):
            if isinstance(item.expression, ast.Star):
                return None
            outputs[output_name(item, position).lower()] = item.expression

        def rewrite(node: ast.Expression) -> ast.Expression | None:
            if isinstance(node, ast.ColumnRef):
                replacement = outputs.get(node.name.lower())
                return replacement
            if isinstance(node, ast.Binary):
                left = rewrite(node.left)
                right = rewrite(node.right)
                if left is None or right is None:
                    return None
                return ast.Binary(node.op, left, right)
            if isinstance(node, ast.Unary):
                operand = rewrite(node.operand)
                return None if operand is None else ast.Unary(node.op, operand)
            if isinstance(node, ast.Literal):
                return node
            if isinstance(node, ast.IsNull):
                operand = rewrite(node.operand)
                return None if operand is None \
                    else ast.IsNull(operand, node.negated)
            if isinstance(node, ast.InList):
                operand = rewrite(node.operand)
                items = [rewrite(item) for item in node.items]
                if operand is None or any(item is None for item in items):
                    return None
                return ast.InList(operand, tuple(items), node.negated)
            if isinstance(node, ast.FuncCall):
                args = [rewrite(arg) for arg in node.args]
                if any(arg is None for arg in args):
                    return None
                return ast.FuncCall(node.name, tuple(args), node.distinct)
            return None

        return rewrite(conjunct)


def _split_conjuncts(expression: ast.Expression) -> list[ast.Expression]:
    if isinstance(expression, ast.Binary) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def _with_extra_where(
    select: ast.Select, predicates: "list[ast.Expression]"
) -> ast.Select:
    combined = select.where
    for predicate in predicates:
        combined = (
            predicate if combined is None
            else ast.Binary("AND", combined, predicate)
        )
    return ast.Select(
        items=select.items,
        from_sources=select.from_sources,
        joins=select.joins,
        where=combined,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
    )


def _substitute_rendered(
    expression: ast.Expression, replacements: dict[str, ast.Expression]
) -> ast.Expression:
    from repro.dbms.sql.planner import substitute

    return substitute(expression, replacements)


# ------------------------------------------------------------------- explain
def explain(catalog: Catalog, select: ast.Select) -> str:
    """A human-readable account of binding, rewrites and estimated cost.

    Purely analytical — nothing is executed; cost estimates use the same
    constants the executor charges, applied to catalog row counts.  The
    heavy lifting lives in :mod:`repro.dbms.sql.plan`; this wrapper is
    kept for callers that only want the text.
    """
    from repro.dbms.cost import CostParameters
    from repro.dbms.sql.plan import build_plan

    return build_plan(catalog, select, CostParameters()).text()
