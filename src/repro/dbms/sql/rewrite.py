"""Guarded batch rewrites over plan trees: scan consolidation.

Every technique in the paper consumes the same sufficient statistics
(n, L, Q), so a warehouse session that builds N models over one table
naturally issues N aggregate statements over the same scan target — and
pays N scans.  This module is the rewrite layer that removes the
structural redundancy: a small framework of **guarded rules** that
inspect a batch of statements, prove a rewrite changes no statement's
result, and annotate the resulting :class:`~repro.dbms.sql.plan.Plan`
with the decisions EXPLAIN renders.

Two rules ship today:

* :class:`ScanConsolidationRule` — N single-table aggregate statements
  over the same stored table share ONE partition-parallel scan feeding
  N accumulator states per task (the executor's ``execute_batch``).
  Identical statements additionally collapse to one accumulation
  (duplicate elimination) — three model builds over the same columns
  are the *same* summary statement.
* :class:`PredicatePushbackRule` — decides where statement-local WHERE
  predicates run: pushed into the shared scan when every statement
  filters identically, hoisted to per-statement late filters (applied
  row-by-row inside the shared scan, never across statements) when they
  differ.  Either way each statement sees exactly the rows its serial
  execution would.

A rule that cannot prove safety refuses, recording why; a refused batch
falls back to serial execution with every statement untouched.  The
bench harness adds the outer "gates before treatment" check
(:func:`repro.bench.harness.plan_shape_gate`): a rewrite that would
regress plan shape is rejected before it is ever trusted with a
benchmark number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dbms.catalog import Catalog
from repro.dbms.cost import CostParameters
from repro.dbms.sql import ast
from repro.dbms.sql.optimizer import QueryOptimizer
from repro.dbms.sql.plan import Plan, PlanNode, _PlanBuilder
from repro.dbms.sql.planner import find_aggregates


@dataclass
class BatchDecision:
    """What the rewrite pass decided for one batch of statements.

    ``distinct`` holds input indices of the first occurrence of each
    textually distinct statement; ``assignment`` maps every input index
    to its position in ``distinct`` (so duplicate statements share one
    accumulation and one result relation).
    """

    consolidated: bool
    #: the shared stored table (consolidated batches only)
    table: str | None = None
    #: why consolidation was refused (``None`` when consolidated)
    reason: str | None = None
    #: optimizer-decision annotations, rendered by EXPLAIN
    notes: list[str] = field(default_factory=list)
    #: input indices of the distinct statements, first-appearance order
    distinct: list[int] = field(default_factory=list)
    #: input index -> position in ``distinct``
    assignment: list[int] = field(default_factory=list)
    #: rendered WHERE shared by every statement, when identical
    shared_where: str | None = None
    #: names of the rules that applied
    applied_rules: list[str] = field(default_factory=list)


@dataclass
class BatchContext:
    """Mutable state the rewrite rules inspect and annotate."""

    catalog: Catalog
    selects: list[ast.Select]
    decision: BatchDecision


class RewriteRule:
    """One guarded rewrite: applies only when provably semantics-free."""

    name = "rewrite"

    def apply(self, context: BatchContext) -> None:  # pragma: no cover
        raise NotImplementedError


class ScanConsolidationRule(RewriteRule):
    """Prove N statements share one scan; dedupe identical statements.

    Guards (all-or-nothing — one ineligible statement refuses the whole
    batch, because a partially consolidated batch would report a plan
    shape no statement actually ran):

    * every statement is a SELECT over exactly one stored base table
      (no joins, views, or derived tables),
    * every statement aggregates (aggregate calls or GROUP BY — the
      executor's aggregate path, whose per-partition partial states are
      what the shared scan feeds),
    * all statements name the same table.

    GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT aggregates and
    statement-local WHERE clauses are all allowed: they run per
    statement, after (or during) the shared scan, exactly as their
    serial execution would.
    """

    name = "scan-consolidation"

    def apply(self, context: BatchContext) -> None:
        decision = context.decision
        selects = context.selects
        if len(selects) < 2:
            decision.reason = "batch of one statement (nothing to share)"
            return
        tables: list[str] = []
        for index, select in enumerate(selects):
            blocker = self._blocker(context.catalog, select, index)
            if blocker is not None:
                decision.reason = blocker
                return
            tables.append(select.from_sources[0].name.lower())
        if len(set(tables)) != 1:
            decision.reason = (
                f"statements scan different tables: {sorted(set(tables))}"
            )
            return

        decision.consolidated = True
        decision.table = tables[0]
        decision.applied_rules.append(self.name)
        seen: dict[str, int] = {}
        for index, select in enumerate(selects):
            key = ast.render(select)
            position = seen.get(key)
            if position is None:
                position = len(decision.distinct)
                seen[key] = position
                decision.distinct.append(index)
            decision.assignment.append(position)
        duplicates = len(selects) - len(decision.distinct)
        note = (
            f"scan consolidation: {len(selects)} statements share one "
            f"scan of {decision.table} "
            f"({len(decision.distinct)} accumulator passes per partition task)"
        )
        decision.notes.append(note)
        if duplicates:
            decision.notes.append(
                f"duplicate elimination: {duplicates} repeated "
                f"statement{'s' if duplicates > 1 else ''} fold into the "
                "first occurrence's accumulation"
            )

    @staticmethod
    def _blocker(
        catalog: Catalog, select: ast.Select, index: int
    ) -> str | None:
        """Why statement *index* cannot join a shared scan (or None)."""
        if not isinstance(select, ast.Select):
            return f"statement {index + 1} is not a SELECT"
        if select.joins or len(select.from_sources) != 1:
            return (
                f"statement {index + 1} reads more than one source "
                "(joins have their own scan structure)"
            )
        source = select.from_sources[0]
        if not isinstance(source, ast.TableName):
            return (
                f"statement {index + 1} reads a derived table "
                "(spooled, not a shareable base scan)"
            )
        if catalog.has_view(source.name):
            return (
                f"statement {index + 1} reads view {source.name!r} "
                "(expanded per statement, not a shareable base scan)"
            )
        if not catalog.has_table(source.name):
            return f"statement {index + 1} reads unknown table {source.name!r}"
        expressions = [item.expression for item in select.items]
        if select.having is not None:
            expressions.append(select.having)
        calls = find_aggregates(expressions, catalog.is_aggregate)
        if not calls and not select.group_by:
            return (
                f"statement {index + 1} is not an aggregate "
                "(projections stream rows out; only accumulator states "
                "can share a scan)"
            )
        return None


class PredicatePushbackRule(RewriteRule):
    """Decide where statement-local predicates run inside a shared scan.

    When every statement carries the identical WHERE, the predicate is
    effectively pushed into the shared scan (evaluated once per row per
    statement, but structurally one filter).  When they differ, each
    statement's predicate is hoisted to a late filter evaluated against
    the shared scan's rows for that statement only.  Both forms keep
    every statement's visible row set identical to serial execution —
    the rule only annotates which shape the plan has.
    """

    name = "predicate-pushback"

    def apply(self, context: BatchContext) -> None:
        decision = context.decision
        if not decision.consolidated:
            return
        wheres = [
            None
            if context.selects[index].where is None
            else ast.render(context.selects[index].where)
            for index in decision.distinct
        ]
        filtered = [text for text in wheres if text is not None]
        if not filtered:
            return
        decision.applied_rules.append(self.name)
        if len(set(filtered)) == 1 and len(filtered) == len(wheres):
            decision.shared_where = filtered[0]
            decision.notes.append(
                f"predicate pushed to the shared scan: {filtered[0]} "
                "(identical across all statements)"
            )
        else:
            decision.notes.append(
                f"late filters: {len(filtered)} statement-local "
                "predicate(s) evaluated inside the shared scan "
                "(no pushdown across statements)"
            )


#: the rewrite pipeline, applied in order
BATCH_RULES: "tuple[RewriteRule, ...]" = (
    ScanConsolidationRule(),
    PredicatePushbackRule(),
)


def plan_batch(
    catalog: Catalog, selects: Sequence[ast.Select]
) -> BatchDecision:
    """Run the guarded rewrite rules over *selects*.

    Returns the :class:`BatchDecision` the executor (and
    ``EXPLAIN``-style introspection) consumes.  A refusal is not an
    error: the decision simply records ``consolidated=False`` plus the
    first guard that failed, and the caller executes serially.
    """
    decision = BatchDecision(consolidated=False)
    context = BatchContext(catalog, list(selects), decision)
    for rule in BATCH_RULES:
        rule.apply(context)
    if decision.consolidated:
        # The rewrite layer's own internal gate, mirroring the bench
        # harness's "gates before treatment": consolidation must strictly
        # reduce scan count, never grow it.  One shared scan versus one
        # scan per statement always passes for len >= 2; the check is
        # kept explicit so a future rule that could regress shape fails
        # loudly here instead of shipping a worse plan.
        scans_before = len(selects)
        scans_after = 1
        if scans_after > scans_before:  # pragma: no cover - defensive
            decision.consolidated = False
            decision.reason = (
                f"plan-shape gate: rewrite would grow scans "
                f"{scans_before} -> {scans_after}"
            )
            decision.notes.clear()
        else:
            decision.notes.append(
                f"plan-shape gate: scans {scans_before} -> {scans_after} (pass)"
            )
    return decision


def build_batch_plan(
    catalog: Catalog,
    selects: Sequence[ast.Select],
    params: CostParameters,
    decision: BatchDecision,
    vectorized_select: bool = True,
) -> Plan:
    """The EXPLAIN plan for a statement batch.

    A consolidated batch renders one ``scan`` node — the first distinct
    statement keeps its scan; every later distinct statement's scan is
    rewritten to a ``shared-scan`` marker that estimates zero seconds
    and notes which scan serves it — so ``len(plan.scans) == 1`` is the
    structural claim tests assert.  A refused batch keeps all N scans
    and carries the refusal note.  Building the plan is analytical only
    and charges no simulated time.
    """
    if not selects:
        raise ValueError("empty statement batch")
    builder = _PlanBuilder(catalog, params, vectorized_select)
    optimizer = QueryOptimizer(catalog)
    report = optimizer.optimize(selects[0])
    root = PlanNode("batch", f"{len(selects)} statements")
    root.notes.extend(decision.notes)
    if decision.reason is not None:
        root.notes.append(f"scan consolidation refused: {decision.reason}")
    if decision.consolidated:
        for position, input_index in enumerate(decision.distinct):
            child_report = optimizer.optimize(selects[input_index])
            node = builder.select_node(child_report.optimized, child_report)
            if position > 0:
                for scan in node.find("scan"):
                    scan.operator = "shared-scan"
                    scan.notes.append(
                        "served by the consolidated scan of statement 1"
                    )
                    scan.estimated_seconds = 0.0
            inputs = [
                index + 1
                for index, assigned in enumerate(decision.assignment)
                if assigned == position
            ]
            if len(inputs) > 1:
                node.notes.append(
                    f"shared by input statements {inputs} "
                    "(duplicate elimination)"
                )
            root.children.append(node)
    else:
        for select in selects:
            child_report = optimizer.optimize(select)
            root.children.append(
                builder.select_node(child_report.optimized, child_report)
            )
    return Plan(statement=selects[0], root=root, report=report)
